//! A minimal JSON value type (the workspace has no serde): exact integers,
//! stable insertion-order rendering, and a strict parser. Shared by the
//! profile/trace exporters here and by `bench`'s `--json` reports (which
//! re-export it), so every machine-readable artifact in the workspace
//! renders byte-identically from the same code.

use std::fmt::Write as _;

/// A JSON value. Integers are kept exact (`Int`) — virtual times must
/// round-trip bit-exactly through baseline and golden files.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize with two-space indentation and stable (insertion) key
    /// order, so committed baselines diff cleanly.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Serialize on a single line with no whitespace — the JSONL form used
    /// by the run-history ledger, where one record must stay one line.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(n) => {
                if n.fract() == 0.0 && n.is_finite() {
                    let _ = write!(out, "{n:.1}");
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(n) => {
                // Always include a decimal point so ints/floats round-trip
                // into the same variant they were written from.
                if n.fract() == 0.0 && n.is_finite() {
                    let _ = write!(out, "{n:.1}");
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Scalar-only arrays stay on one line.
                if items
                    .iter()
                    .all(|i| !matches!(i, Json::Arr(_) | Json::Obj(_)))
                {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        item.write(out, indent);
                    }
                    out.push(']');
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    pad(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (strict enough for our own output plus
    /// hand-edited baselines).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

pub(crate) fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut s = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(s),
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => s.push('"'),
                    b'\\' => s.push('\\'),
                    b'/' => s.push('/'),
                    b'n' => s.push('\n'),
                    b't' => s.push('\t'),
                    b'r' => s.push('\r'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))
                            .map_err(String::from)?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        *pos += 4;
                        s.push(char::from_u32(code).ok_or("surrogate \\u escape unsupported")?);
                    }
                    _ => return Err(format!("unknown escape at byte {}", *pos - 1)),
                }
            }
            c => {
                // Re-decode UTF-8 continuation bytes.
                let start = *pos - 1;
                let len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = b.get(start..start + len).ok_or("truncated UTF-8")?;
                s.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos = start + len;
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while let Some(&c) = b.get(*pos) {
        if matches!(c, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Json::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let j = Json::parse(r#"{"a": [1, -2.5, "x\nyA"], "b": {"c": null, "d": true}}"#).unwrap();
        assert_eq!(
            j.get("a").unwrap().as_arr().unwrap()[2].as_str(),
            Some("x\nyA")
        );
        assert_eq!(j.get("b").unwrap().get("c"), Some(&Json::Null));
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
    }

    #[test]
    fn large_integers_stay_exact() {
        let big = 4_611_686_018_427_387_903i64; // ~2^62, beyond f64 precision
        let text = Json::Arr(vec![Json::Int(big)]).render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.as_arr().unwrap()[0].as_i64(), Some(big));
    }

    #[test]
    fn render_is_stable() {
        let j = Json::Obj(vec![
            ("z".into(), Json::Int(1)),
            ("a".into(), Json::Arr(vec![Json::Int(1), Json::Int(2)])),
        ]);
        assert_eq!(j.render(), "{\n  \"z\": 1,\n  \"a\": [1, 2]\n}");
    }
}
