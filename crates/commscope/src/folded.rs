//! Flamegraph "folded stacks" exporter: one line per aggregated stack,
//! `frame;frame;frame <value>`, consumable by `flamegraph.pl` or speedscope.
//! Stacks are `rank N;<op>[;site S]` and values are virtual nanoseconds, so
//! the flame graph shows where virtual time went per rank, per operation,
//! per directive site. Output is sorted lexicographically — deterministic
//! for a deterministic trace.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use netsim::trace::{EventKind, TraceEvent};

use crate::analysis::kind_label;

/// Aggregate a time-sorted trace into folded stacks.
pub fn folded_stacks(events: &[TraceEvent]) -> String {
    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    for ev in events {
        // RecvDone spans shadow the wait spans they complete inside;
        // counting both would double-book the rank's time.
        if matches!(ev.kind, EventKind::RecvDone { .. }) {
            continue;
        }
        let span = ev.time.saturating_sub(ev.start).as_nanos();
        if span == 0 {
            continue;
        }
        let mut stack = format!("rank {};{}", ev.rank, kind_label(&ev.kind));
        if let Some(site) = ev.site {
            let _ = write!(stack, ";site {site}");
        }
        *agg.entry(stack).or_insert(0) += span;
    }
    let mut out = String::new();
    for (stack, ns) in agg {
        let _ = writeln!(out, "{stack} {ns}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Time;

    #[test]
    fn folds_by_rank_op_site() {
        let evs = vec![
            TraceEvent {
                rank: 0,
                time: Time(100),
                start: Time(0),
                site: None,
                kind: EventKind::Compute { ns: 100 },
            },
            TraceEvent {
                rank: 0,
                time: Time(130),
                start: Time(100),
                site: Some(4),
                kind: EventKind::Wait { horizon: Time(120) },
            },
            TraceEvent {
                rank: 0,
                time: Time(160),
                start: Time(130),
                site: Some(4),
                kind: EventKind::Wait { horizon: Time(150) },
            },
        ];
        let text = folded_stacks(&evs);
        assert_eq!(text, "rank 0;compute 100\nrank 0;wait;site 4 60\n");
    }
}
