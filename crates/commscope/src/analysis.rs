//! Wait-state analysis over the runtime's event trace.
//!
//! The trace schema makes exact decomposition possible: every blocking
//! operation carries its span (`start..time`) *and* the raw completion
//! `horizon` it resolved to. A wait of duration `time - start` therefore
//! splits exactly into
//!
//! * a **blocked** part `min(time - start, horizon - start)` — virtual time
//!   the rank spent waiting on a remote event, blamed on a *culprit* rank
//!   (the late sender for a receive wait, the last-entering rank for a
//!   barrier, the rank itself for a quiet/drain), and
//! * an **overhead** part (the remainder) — software cost of the call
//!   itself, always blamed on the waiting rank.
//!
//! The two parts sum to the measured span by construction, so per-rank
//! blame totals sum exactly to total measured wait time — an invariant the
//! property tests enforce.
//!
//! The same trace supports exact **critical-path extraction**: walking
//! backward from the rank that finishes last, each blocked wait hops to the
//! event that released it (the matched `SendPost` for a late-sender wait,
//! the last-entering rank for a barrier), and everything else walks back
//! locally. Message pairing uses the fabric's per-channel FIFO guarantee:
//! the k-th receive completed on channel `(src, dst, tag)` matches the k-th
//! send posted on it.

use std::collections::HashMap;

use netsim::trace::{EventKind, SiteId, TraceEvent};
use netsim::Time;

/// Why a rank was blocked in a wait interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum WaitKind {
    /// Blocked in wait/waitall for a receive whose sender posted late (or
    /// whose data was still in flight).
    LateSender,
    /// Blocked in wait for a send still draining toward its destination.
    LateReceiver,
    /// Blocked in a barrier for the last-entering rank.
    Barrier,
    /// Blocked in quiet/fence draining this rank's own outstanding puts.
    Quiet,
    /// Not blocked at all: pure software overhead of a completion call.
    Overhead,
}

impl WaitKind {
    /// Stable lowercase label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            WaitKind::LateSender => "late_sender",
            WaitKind::LateReceiver => "late_receiver",
            WaitKind::Barrier => "barrier",
            WaitKind::Quiet => "quiet",
            WaitKind::Overhead => "overhead",
        }
    }
}

/// One analyzed wait interval on one rank.
#[derive(Clone, Debug)]
pub struct WaitInterval {
    /// The waiting rank.
    pub rank: usize,
    /// Span of the completion call, virtual ns.
    pub start: Time,
    pub end: Time,
    /// Dominant classification of the interval.
    pub kind: WaitKind,
    /// Directive site of the completion call, when known.
    pub site: Option<SiteId>,
    /// Virtual ns blocked on the culprit.
    pub blocked_ns: u64,
    /// Virtual ns of call overhead (blamed on `rank` itself).
    pub overhead_ns: u64,
    /// Rank blamed for the blocked part.
    pub culprit: usize,
}

/// Per-rank wait-state summary. `blame[r]` is the virtual ns of this rank's
/// wait time attributable to rank `r`; the vector sums to `total_wait_ns`.
#[derive(Clone, Debug)]
pub struct RankWaitProfile {
    pub rank: usize,
    /// Total measured wait (sum of completion-call spans), virtual ns.
    pub total_wait_ns: u64,
    /// Blocked ns by classification.
    pub late_sender_ns: u64,
    pub late_receiver_ns: u64,
    pub barrier_ns: u64,
    pub quiet_ns: u64,
    /// Software overhead of completion calls, ns.
    pub overhead_ns: u64,
    /// Blame attribution, indexed by culprit rank. Sums to `total_wait_ns`.
    pub blame: Vec<u64>,
}

/// One segment of the critical path (in forward time order after
/// [`Analysis::critical_path`] is built).
#[derive(Clone, Debug)]
pub struct PathSegment {
    pub rank: usize,
    pub start: Time,
    pub end: Time,
    /// Stable label: an event-kind name (`"compute"`, `"waitall"`, ...) or
    /// `"local"` for untraced local progress between events.
    pub label: &'static str,
    pub site: Option<SiteId>,
}

/// The full analysis result.
#[derive(Clone, Debug)]
pub struct Analysis {
    pub nranks: usize,
    /// Job makespan: the latest final rank clock.
    pub makespan: Time,
    /// Every completion-call interval, in trace order.
    pub intervals: Vec<WaitInterval>,
    /// Per-rank summaries, indexed by rank.
    pub ranks: Vec<RankWaitProfile>,
    /// Exact critical path from t=0 to the makespan, forward time order.
    pub critical_path: Vec<PathSegment>,
}

/// Upper bound on critical-path segments; a correctly-formed trace of the
/// figure workloads stays far below this, and a malformed one must not spin.
const PATH_SEGMENT_CAP: usize = 100_000;

/// Stable lowercase label for an event kind (used in exports).
pub fn kind_label(kind: &EventKind) -> &'static str {
    match kind {
        EventKind::SendPost { .. } => "send",
        EventKind::RecvPost { .. } => "recv_post",
        EventKind::RecvDone { .. } => "recv",
        EventKind::Wait { .. } => "wait",
        EventKind::Waitall { .. } => "waitall",
        EventKind::Put { .. } => "put",
        EventKind::Get { .. } => "get",
        EventKind::Quiet { .. } => "quiet",
        EventKind::Barrier { .. } => "barrier",
        EventKind::Compute { .. } => "compute",
        EventKind::Pack { .. } => "pack",
        EventKind::DatatypeCommit => "datatype_commit",
        EventKind::Marker(_) => "marker",
    }
}

/// Pair every `RecvDone` event with the `SendPost` that produced it, using
/// the fabric's FIFO non-overtaking guarantee per `(src, dst, tag)` channel.
/// Returns a map from `RecvDone` event index to `SendPost` event index.
pub fn pair_messages(events: &[TraceEvent]) -> HashMap<usize, usize> {
    // Per-channel FIFO of unmatched send event indices, in trace order.
    // The trace is sorted by (time, rank) with per-rank program order
    // preserved, and sends depart in post order per channel, so walking the
    // whole trace front-to-back visits each channel's sends in match order.
    let mut sends: HashMap<(usize, usize, i32), std::collections::VecDeque<usize>> = HashMap::new();
    let mut pairs = HashMap::new();
    // Receives must also be matched in completion order per channel, which
    // trace order does not guarantee (a rank may wait on recvs out of
    // completion order). Collect and sort by completion instead.
    let mut recvs: Vec<(usize, usize, usize, i32, Time)> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        match &ev.kind {
            EventKind::SendPost { dst, tag, .. } => {
                sends.entry((ev.rank, *dst, *tag)).or_default().push_back(i);
            }
            EventKind::RecvDone {
                src,
                tag,
                completion,
                ..
            } => {
                recvs.push((i, *src, ev.rank, *tag, *completion));
            }
            _ => {}
        }
    }
    recvs.sort_by_key(|&(i, _, _, _, completion)| (completion, i));
    for (i, src, dst, tag, _) in recvs {
        if let Some(q) = sends.get_mut(&(src, dst, tag)) {
            if let Some(s) = q.pop_front() {
                pairs.insert(i, s);
            }
        }
    }
    pairs
}

/// Analyze a time-sorted trace (as returned by `TraceSink::take`).
///
/// `final_times[r]` is rank `r`'s final virtual clock (from
/// `SimResult::times`); `nranks` must cover every rank in the trace.
pub fn analyze(events: &[TraceEvent], nranks: usize, final_times: &[Time]) -> Analysis {
    assert_eq!(final_times.len(), nranks, "one final time per rank");

    // --- Index structures -------------------------------------------------
    // Per-rank event indices (trace order == per-rank program order).
    let mut per_rank: Vec<Vec<usize>> = vec![Vec::new(); nranks];
    // (rank, completion) -> RecvDone event index, first occurrence wins
    // (deterministic because trace order is deterministic).
    let mut recv_at: HashMap<(usize, u64), usize> = HashMap::new();
    // Barrier clusters keyed by (exit time, group_len): member event indices.
    let mut barrier_clusters: HashMap<(u64, usize), Vec<usize>> = HashMap::new();
    for (i, ev) in events.iter().enumerate() {
        assert!(ev.rank < nranks, "trace rank {} out of range", ev.rank);
        per_rank[ev.rank].push(i);
        match &ev.kind {
            EventKind::RecvDone { completion, .. } => {
                recv_at.entry((ev.rank, completion.as_nanos())).or_insert(i);
            }
            EventKind::Barrier { group_len } => {
                barrier_clusters
                    .entry((ev.time.as_nanos(), *group_len))
                    .or_default()
                    .push(i);
            }
            _ => {}
        }
    }
    let pairs = pair_messages(events);

    // The culprit of a barrier cluster: the last rank to enter (greatest
    // span start; ties broken by rank for determinism).
    let barrier_culprit: HashMap<(u64, usize), usize> = barrier_clusters
        .iter()
        .map(|(key, members)| {
            let culprit = members
                .iter()
                .map(|&i| (events[i].start, events[i].rank))
                .max()
                .map(|(_, r)| r)
                .unwrap_or(0);
            (*key, culprit)
        })
        .collect();

    // --- Wait intervals ---------------------------------------------------
    let mut intervals = Vec::new();
    let mut ranks: Vec<RankWaitProfile> = (0..nranks)
        .map(|r| RankWaitProfile {
            rank: r,
            total_wait_ns: 0,
            late_sender_ns: 0,
            late_receiver_ns: 0,
            barrier_ns: 0,
            quiet_ns: 0,
            overhead_ns: 0,
            blame: vec![0; nranks],
        })
        .collect();

    for ev in events {
        let span = ev.time.saturating_sub(ev.start).as_nanos();
        let (horizon, base_kind) = match &ev.kind {
            EventKind::Wait { horizon } | EventKind::Waitall { horizon, .. } => {
                (*horizon, WaitKind::LateSender)
            }
            EventKind::Quiet { horizon, .. } => (*horizon, WaitKind::Quiet),
            EventKind::Barrier { .. } => (ev.time, WaitKind::Barrier),
            _ => continue,
        };
        let blocked = horizon.saturating_sub(ev.start).as_nanos().min(span);
        let overhead = span - blocked;
        let (kind, culprit) = if blocked == 0 {
            (WaitKind::Overhead, ev.rank)
        } else {
            match base_kind {
                WaitKind::Barrier => {
                    let key = (ev.time.as_nanos(), barrier_group_len(&ev.kind));
                    (WaitKind::Barrier, barrier_culprit[&key])
                }
                WaitKind::Quiet => (WaitKind::Quiet, ev.rank),
                _ => {
                    // A wait horizon matching a receive completion on this
                    // rank means a late sender; otherwise the call resolved
                    // to a send departure still draining toward a receiver.
                    match recv_at.get(&(ev.rank, horizon.as_nanos())) {
                        Some(&ri) => {
                            let src = match &events[ri].kind {
                                EventKind::RecvDone { src, .. } => *src,
                                _ => unreachable!(),
                            };
                            (WaitKind::LateSender, src)
                        }
                        None => (WaitKind::LateReceiver, ev.rank),
                    }
                }
            }
        };

        let p = &mut ranks[ev.rank];
        p.total_wait_ns += span;
        p.overhead_ns += overhead;
        p.blame[ev.rank] += overhead;
        p.blame[culprit] += blocked;
        match kind {
            WaitKind::LateSender => p.late_sender_ns += blocked,
            WaitKind::LateReceiver => p.late_receiver_ns += blocked,
            WaitKind::Barrier => p.barrier_ns += blocked,
            WaitKind::Quiet => p.quiet_ns += blocked,
            WaitKind::Overhead => {}
        }
        intervals.push(WaitInterval {
            rank: ev.rank,
            start: ev.start,
            end: ev.time,
            kind,
            site: ev.site,
            blocked_ns: blocked,
            overhead_ns: overhead,
            culprit,
        });
    }

    // --- Critical path ----------------------------------------------------
    let makespan = final_times.iter().copied().max().unwrap_or(Time::ZERO);
    let critical_path = extract_critical_path(
        events,
        &per_rank,
        &recv_at,
        &pairs,
        &barrier_clusters,
        final_times,
    );

    Analysis {
        nranks,
        makespan,
        intervals,
        ranks,
        critical_path,
    }
}

fn barrier_group_len(kind: &EventKind) -> usize {
    match kind {
        EventKind::Barrier { group_len } => *group_len,
        _ => 0,
    }
}

/// Backward walk from the last-finishing rank to t=0, hopping across ranks
/// at blocked waits, then reversed into forward order.
fn extract_critical_path(
    events: &[TraceEvent],
    per_rank: &[Vec<usize>],
    recv_at: &HashMap<(usize, u64), usize>,
    pairs: &HashMap<usize, usize>,
    barrier_clusters: &HashMap<(u64, usize), Vec<usize>>,
    final_times: &[Time],
) -> Vec<PathSegment> {
    let nranks = final_times.len();
    if nranks == 0 {
        return Vec::new();
    }
    // Last-finishing rank; ties to the lowest rank for determinism.
    let mut end_rank = 0usize;
    for r in 1..nranks {
        if final_times[r] > final_times[end_rank] {
            end_rank = r;
        }
    }

    let mut segments: Vec<PathSegment> = Vec::new();
    let mut rank = end_rank;
    let mut t = final_times[end_rank];
    // Per-rank walk frontier: events at positions >= cursor[rank] are
    // already on the path. Zero-span events leave `t` unchanged, so time
    // alone cannot guarantee progress — consuming each event at most once
    // does (the walk terminates within |events| + nranks segments).
    let mut cursor: Vec<usize> = per_rank.iter().map(Vec::len).collect();

    while t > Time::ZERO && segments.len() < PATH_SEGMENT_CAP {
        // Last unconsumed event on `rank` with time <= t. Per-rank times
        // are nondecreasing, so partition_point gives the boundary.
        let evs = &per_rank[rank];
        let n_le = evs
            .partition_point(|&i| events[i].time <= t)
            .min(cursor[rank]);
        if n_le == 0 {
            // Untraced prologue on this rank.
            segments.push(PathSegment {
                rank,
                start: Time::ZERO,
                end: t,
                label: "local",
                site: None,
            });
            break;
        }
        let ei = evs[n_le - 1];
        let ev = &events[ei];
        if ev.time < t {
            cursor[rank] = n_le;
            // Untraced local progress between the event and t.
            segments.push(PathSegment {
                rank,
                start: ev.time,
                end: t,
                label: "local",
                site: None,
            });
            t = ev.time;
            continue;
        }

        cursor[rank] = n_le - 1;
        segments.push(PathSegment {
            rank,
            start: ev.start,
            end: ev.time,
            label: kind_label(&ev.kind),
            site: ev.site,
        });

        // Where did the path come from?
        match &ev.kind {
            EventKind::Wait { horizon } | EventKind::Waitall { horizon, .. }
                if *horizon > ev.start =>
            {
                // Blocked on a remote completion: hop to the matched send
                // when the horizon is a receive completion on this rank.
                if let Some(&ri) = recv_at.get(&(rank, horizon.as_nanos())) {
                    if let Some(&si) = pairs.get(&ri) {
                        rank = events[si].rank;
                        t = events[si].time;
                        continue;
                    }
                }
                t = ev.start;
            }
            EventKind::RecvDone { completion, .. } if *completion > ev.start => {
                if let Some(&si) = pairs.get(&ei) {
                    rank = events[si].rank;
                    t = events[si].time;
                    continue;
                }
                t = ev.start;
            }
            EventKind::Barrier { group_len } if ev.time > ev.start => {
                // Hop to the last-entering member of this barrier cluster.
                let key = (ev.time.as_nanos(), *group_len);
                let last = barrier_clusters
                    .get(&key)
                    .and_then(|m| m.iter().map(|&i| (events[i].start, events[i].rank)).max());
                if let Some((start, r)) = last {
                    if r != rank {
                        rank = r;
                        t = start;
                        continue;
                    }
                }
                t = ev.start;
            }
            _ => {
                t = ev.start;
            }
        }
    }

    segments.reverse();
    segments
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(rank: usize, start: u64, time: u64, site: Option<SiteId>, kind: EventKind) -> TraceEvent {
        TraceEvent {
            rank,
            time: Time(time),
            start: Time(start),
            site,
            kind,
        }
    }

    /// Rank 0 computes 100ns then sends; rank 1 posts early and waits,
    /// blocked ~from 10 to 150 on rank 0's late send.
    fn late_sender_trace() -> Vec<TraceEvent> {
        let mut evs = vec![
            ev(0, 0, 100, None, EventKind::Compute { ns: 100 }),
            ev(
                0,
                100,
                110,
                Some(3),
                EventKind::SendPost {
                    dst: 1,
                    tag: 7,
                    bytes: 64,
                },
            ),
            ev(
                1,
                0,
                10,
                Some(3),
                EventKind::RecvPost {
                    src: Some(0),
                    tag: Some(7),
                },
            ),
            ev(
                1,
                10,
                160,
                Some(3),
                EventKind::RecvDone {
                    src: 0,
                    tag: 7,
                    bytes: 64,
                    unexpected: false,
                    completion: Time(150),
                },
            ),
            ev(1, 10, 160, Some(3), EventKind::Wait { horizon: Time(150) }),
        ];
        evs.sort_by_key(|e| (e.time, e.rank));
        evs
    }

    #[test]
    fn blame_sums_to_total_wait() {
        let evs = late_sender_trace();
        let a = analyze(&evs, 2, &[Time(110), Time(160)]);
        for p in &a.ranks {
            let blamed: u64 = p.blame.iter().sum();
            assert_eq!(blamed, p.total_wait_ns, "rank {}", p.rank);
        }
        // Rank 1 waited 150ns total: 140 blocked on rank 0, 10 overhead.
        assert_eq!(a.ranks[1].total_wait_ns, 150);
        assert_eq!(a.ranks[1].late_sender_ns, 140);
        assert_eq!(a.ranks[1].overhead_ns, 10);
        assert_eq!(a.ranks[1].blame[0], 140);
        assert_eq!(a.ranks[1].blame[1], 10);
    }

    #[test]
    fn critical_path_hops_to_late_sender() {
        let evs = late_sender_trace();
        let a = analyze(&evs, 2, &[Time(110), Time(160)]);
        assert_eq!(a.makespan, Time(160));
        // Path must include rank 0's compute and end on rank 1.
        assert!(a
            .critical_path
            .iter()
            .any(|s| s.rank == 0 && s.label == "compute"));
        assert_eq!(a.critical_path.last().unwrap().rank, 1);
        // Forward order: times nondecreasing.
        for w in a.critical_path.windows(2) {
            assert!(w[0].end >= w[0].start);
        }
    }

    #[test]
    fn barrier_blames_last_entrant() {
        let evs = {
            let mut v = vec![
                ev(0, 5, 100, None, EventKind::Barrier { group_len: 2 }),
                ev(1, 90, 100, None, EventKind::Barrier { group_len: 2 }),
            ];
            v.sort_by_key(|e| (e.time, e.rank));
            v
        };
        let a = analyze(&evs, 2, &[Time(100), Time(100)]);
        assert_eq!(a.ranks[0].barrier_ns, 95);
        assert_eq!(a.ranks[0].blame[1], 95);
        assert_eq!(a.ranks[1].blame[1], 10);
        for p in &a.ranks {
            assert_eq!(p.blame.iter().sum::<u64>(), p.total_wait_ns);
        }
    }

    #[test]
    fn quiet_blamed_on_self() {
        let evs = vec![ev(
            0,
            10,
            50,
            Some(2),
            EventKind::Quiet {
                outstanding: 3,
                horizon: Time(45),
            },
        )];
        let a = analyze(&evs, 1, &[Time(50)]);
        assert_eq!(a.ranks[0].quiet_ns, 35);
        assert_eq!(a.ranks[0].overhead_ns, 5);
        assert_eq!(a.ranks[0].blame[0], 40);
        assert_eq!(a.intervals[0].kind, WaitKind::Quiet);
        assert_eq!(a.intervals[0].site, Some(2));
    }

    /// A zero-span event at the walk frontier leaves `t` unchanged; the
    /// per-rank cursor must still guarantee progress (regression: the walk
    /// used to re-select the same event until the segment cap).
    #[test]
    fn zero_span_events_do_not_stall_the_walk() {
        let evs = vec![
            ev(0, 0, 100, None, EventKind::Compute { ns: 100 }),
            ev(0, 100, 100, None, EventKind::DatatypeCommit),
            ev(0, 100, 100, None, EventKind::Pack { bytes: 8 }),
        ];
        let a = analyze(&evs, 1, &[Time(100)]);
        assert!(
            a.critical_path.len() <= evs.len() + 1,
            "walk stalled: {} segments",
            a.critical_path.len()
        );
        assert_eq!(a.critical_path.last().expect("non-empty").end, Time(100));
        assert_eq!(a.critical_path.first().expect("non-empty").start, Time(0));
    }
}
