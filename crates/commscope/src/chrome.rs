//! Chrome `trace_event` JSON exporter (Perfetto-loadable).
//!
//! One track (`tid`) per rank under a single process (`pid 0`). Spanning
//! operations become `"ph": "X"` complete events; instantaneous records
//! become `"ph": "i"` instants; every matched message adds a flow arrow
//! (`"ph": "s"` at the send, `"ph": "f"` at the receive completion).
//!
//! The output is built with raw string formatting, never `f64`: Chrome's
//! `ts`/`dur` fields are microseconds, rendered from integer virtual
//! nanoseconds as `{µs}.{ns%1000:03}`. That makes the file a pure function
//! of the virtual-time trace — byte-identical across execution engines and
//! sweep widths, which the golden tests and CI assert.

use std::fmt::Write as _;

use netsim::trace::{EventKind, TraceEvent};
use netsim::Time;

use crate::analysis::{kind_label, pair_messages};
use crate::json::write_escaped;

/// Render virtual nanoseconds as an exact microsecond literal.
fn us(t: Time) -> String {
    let ns = t.as_nanos();
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn push_common(line: &mut String, ph: &str, tid: usize, ts: Time) {
    let _ = write!(
        line,
        "{{\"ph\": \"{ph}\", \"pid\": 0, \"tid\": {tid}, \"ts\": {}",
        us(ts)
    );
}

/// Append `, "args": {...}` from integer key/value pairs.
fn push_args(line: &mut String, args: &[(&str, i64)]) {
    if args.is_empty() {
        return;
    }
    line.push_str(", \"args\": {");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            line.push_str(", ");
        }
        let _ = write!(line, "\"{k}\": {v}");
    }
    line.push('}');
}

/// Export a time-sorted trace (from `TraceSink::take`) as a Chrome
/// `trace_event` JSON document with one track per rank.
pub fn chrome_trace(events: &[TraceEvent], nranks: usize) -> String {
    let pairs = pair_messages(events);

    let mut out = String::from("{\"traceEvents\": [\n");
    let mut first = true;
    let mut emit = |out: &mut String, line: String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str("  ");
        out.push_str(&line);
    };

    // Track naming metadata first.
    emit(
        &mut out,
        "{\"ph\": \"M\", \"pid\": 0, \"name\": \"process_name\", \
         \"args\": {\"name\": \"virtual fabric\"}}"
            .to_string(),
    );
    for r in 0..nranks {
        emit(
            &mut out,
            format!(
                "{{\"ph\": \"M\", \"pid\": 0, \"tid\": {r}, \"name\": \"thread_name\", \
                 \"args\": {{\"name\": \"rank {r}\"}}}}"
            ),
        );
    }

    for (i, ev) in events.iter().enumerate() {
        let name = kind_label(&ev.kind);
        let mut args: Vec<(&str, i64)> = Vec::new();
        if let Some(site) = ev.site {
            args.push(("site", site as i64));
        }
        match &ev.kind {
            EventKind::SendPost { dst, tag, bytes } => {
                args.push(("dst", *dst as i64));
                args.push(("tag", *tag as i64));
                args.push(("bytes", *bytes as i64));
            }
            EventKind::RecvPost { src, tag } => {
                if let Some(s) = src {
                    args.push(("src", *s as i64));
                }
                if let Some(t) = tag {
                    args.push(("tag", *t as i64));
                }
            }
            EventKind::RecvDone {
                src,
                tag,
                bytes,
                unexpected,
                completion,
            } => {
                args.push(("src", *src as i64));
                args.push(("tag", *tag as i64));
                args.push(("bytes", *bytes as i64));
                args.push(("unexpected", *unexpected as i64));
                args.push(("completion_ns", completion.as_nanos() as i64));
            }
            EventKind::Wait { horizon } => {
                args.push(("horizon_ns", horizon.as_nanos() as i64));
            }
            EventKind::Waitall { n, horizon } => {
                args.push(("n", *n as i64));
                args.push(("horizon_ns", horizon.as_nanos() as i64));
            }
            EventKind::Put { dst, bytes } => {
                args.push(("dst", *dst as i64));
                args.push(("bytes", *bytes as i64));
            }
            EventKind::Get { src, bytes } => {
                args.push(("src", *src as i64));
                args.push(("bytes", *bytes as i64));
            }
            EventKind::Quiet {
                outstanding,
                horizon,
            } => {
                args.push(("outstanding", *outstanding as i64));
                args.push(("horizon_ns", horizon.as_nanos() as i64));
            }
            EventKind::Barrier { group_len } => {
                args.push(("group_len", *group_len as i64));
            }
            EventKind::Compute { ns } => args.push(("ns", *ns as i64)),
            EventKind::Pack { bytes } => args.push(("bytes", *bytes as i64)),
            EventKind::DatatypeCommit | EventKind::Marker(_) => {}
        }

        // RecvDone spans duplicate the wait span they complete inside, so
        // they render as instants at the data-arrival time plus a flow
        // arrow from the matched send; everything else renders by span.
        let line = match &ev.kind {
            EventKind::RecvDone { completion, .. } => {
                let mut line = String::new();
                push_common(&mut line, "i", ev.rank, *completion);
                let _ = write!(line, ", \"s\": \"t\", \"name\": \"{name}\"");
                push_args(&mut line, &args);
                line.push('}');
                line
            }
            EventKind::Marker(text) => {
                let mut line = String::new();
                push_common(&mut line, "i", ev.rank, ev.time);
                line.push_str(", \"s\": \"t\", \"name\": ");
                write_escaped(&mut line, text);
                push_args(&mut line, &args);
                line.push('}');
                line
            }
            _ if ev.time > ev.start => {
                let mut line = String::new();
                push_common(&mut line, "X", ev.rank, ev.start);
                let _ = write!(
                    line,
                    ", \"dur\": {}, \"name\": \"{name}\", \"cat\": \"comm\"",
                    us(ev.time.saturating_sub(ev.start))
                );
                push_args(&mut line, &args);
                line.push('}');
                line
            }
            _ => {
                let mut line = String::new();
                push_common(&mut line, "i", ev.rank, ev.time);
                let _ = write!(line, ", \"s\": \"t\", \"name\": \"{name}\"");
                push_args(&mut line, &args);
                line.push('}');
                line
            }
        };
        emit(&mut out, line);

        // Flow arrow from the matched send to this receive completion.
        if let EventKind::RecvDone { completion, .. } = &ev.kind {
            if let Some(&si) = pairs.get(&i) {
                let send = &events[si];
                let mut s = String::new();
                push_common(&mut s, "s", send.rank, send.time);
                let _ = write!(s, ", \"id\": {i}, \"name\": \"msg\", \"cat\": \"flow\"}}");
                emit(&mut out, s);
                let mut f = String::new();
                push_common(&mut f, "f", ev.rank, *completion);
                let _ = write!(
                    f,
                    ", \"bp\": \"e\", \"id\": {i}, \"name\": \"msg\", \"cat\": \"flow\"}}"
                );
                emit(&mut out, f);
            }
        }
    }

    out.push_str("\n], \"displayTimeUnit\": \"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use netsim::trace::TraceEvent;

    #[test]
    fn exact_microsecond_formatting() {
        assert_eq!(us(Time(0)), "0.000");
        assert_eq!(us(Time(1)), "0.001");
        assert_eq!(us(Time(1_234_567)), "1234.567");
    }

    #[test]
    fn output_is_valid_json_with_flows() {
        let mut evs = vec![
            TraceEvent {
                rank: 0,
                time: Time(110),
                start: Time(100),
                site: Some(3),
                kind: EventKind::SendPost {
                    dst: 1,
                    tag: 7,
                    bytes: 64,
                },
            },
            TraceEvent {
                rank: 1,
                time: Time(160),
                start: Time(10),
                site: Some(3),
                kind: EventKind::RecvDone {
                    src: 0,
                    tag: 7,
                    bytes: 64,
                    unexpected: false,
                    completion: Time(150),
                },
            },
            TraceEvent {
                rank: 1,
                time: Time(160),
                start: Time(10),
                site: Some(3),
                kind: EventKind::Wait { horizon: Time(150) },
            },
        ];
        evs.sort_by_key(|e| (e.time, e.rank));
        let text = chrome_trace(&evs, 2);
        let doc = Json::parse(&text).expect("valid JSON");
        let tev = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 process_name + 2 thread_name + 3 events + 2 flow halves
        assert_eq!(tev.len(), 8);
        let phases: Vec<&str> = tev
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert!(phases.contains(&"X"));
        assert!(phases.contains(&"s"));
        assert!(phases.contains(&"f"));
        // The wait slice carries its site and exact horizon.
        let wait = tev
            .iter()
            .find(|e| e.get("name").map(|n| n.as_str()) == Some(Some("wait")))
            .unwrap();
        let args = wait.get("args").unwrap();
        assert_eq!(args.get("site").unwrap().as_i64(), Some(3));
        assert_eq!(args.get("horizon_ns").unwrap().as_i64(), Some(150));
    }
}
