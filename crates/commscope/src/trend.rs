//! Run-history trend analysis over the bench ledger (`results/LEDGER.jsonl`).
//!
//! The ledger is written by `bench::ledger` (one compact JSON object per
//! line, one line per `--json` bench run); this module is the reader. It is
//! deliberately generic over the entry shape — `commscope` sits below
//! `bench` in the dependency order, so it parses the JSONL rather than
//! sharing a struct — and tolerates unknown fields, mirroring the lenient
//! old-version parse used everywhere else.

use crate::json::Json;

/// Schema version of one ledger entry (written by `bench::ledger`).
pub const LEDGER_SCHEMA: i64 = 1;

/// Parse a JSONL ledger: one entry per non-empty line. Malformed lines are
/// an error (the ledger is append-only machine output; a bad line means
/// corruption worth surfacing, not skipping).
pub fn parse_ledger(text: &str) -> Result<Vec<Json>, String> {
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let entry = Json::parse(line).map_err(|e| format!("ledger line {}: {e}", i + 1))?;
        entries.push(entry);
    }
    Ok(entries)
}

/// Trajectory of one benchmark series across ledger entries (file order =
/// chronological order, the ledger being append-only).
#[derive(Clone, Debug)]
pub struct SeriesTrend {
    pub bench: String,
    pub label: String,
    /// `time_ns` per run, oldest first.
    pub history: Vec<i64>,
    /// Git revision recorded with the newest run, if any.
    pub latest_rev: String,
    /// Mean of the up-to-`last_k` runs preceding the newest.
    pub reference_mean: f64,
    /// Latest-vs-reference change, percent (positive = slower).
    pub change_pct: f64,
    /// True when the newest run exceeds the reference mean by more than
    /// the configured tolerance.
    pub regressed: bool,
}

/// Group ledger entries by (bench, series label) and compare each series'
/// newest run against the mean of the `last_k` runs before it, flagging a
/// regression when it is more than `tolerance_pct` percent slower.
pub fn trend(entries: &[Json], last_k: usize, tolerance_pct: f64) -> Vec<SeriesTrend> {
    // (bench, label) -> (history, latest_rev), insertion-ordered so the
    // report is stable in ledger order.
    let mut order: Vec<(String, String)> = Vec::new();
    let mut series: std::collections::HashMap<(String, String), (Vec<i64>, String)> =
        std::collections::HashMap::new();
    for entry in entries {
        let bench = entry
            .get("bench")
            .and_then(|v| v.as_str())
            .unwrap_or("?")
            .to_string();
        let rev = entry
            .get("git_rev")
            .and_then(|v| v.as_str())
            .unwrap_or("unknown")
            .to_string();
        let Some(rows) = entry.get("series").and_then(|v| v.as_arr()) else {
            continue;
        };
        for row in rows {
            let label = row
                .get("label")
                .and_then(|v| v.as_str())
                .unwrap_or("?")
                .to_string();
            // The tracked scalar: `total_ns` (sum over the sweep) when the
            // entry provides it, else a scalar `time_ns`.
            let Some(t) = row
                .get("total_ns")
                .and_then(|v| v.as_i64())
                .or_else(|| row.get("time_ns").and_then(|v| v.as_i64()))
            else {
                continue;
            };
            let key = (bench.clone(), label);
            let slot = series.entry(key.clone()).or_insert_with(|| {
                order.push(key);
                (Vec::new(), String::new())
            });
            slot.0.push(t);
            slot.1 = rev.clone();
        }
    }

    order
        .into_iter()
        .map(|key| {
            let (history, latest_rev) = series.remove(&key).expect("keyed by order");
            let latest = *history.last().expect("non-empty history");
            let prior = &history[..history.len() - 1];
            let window = &prior[prior.len().saturating_sub(last_k)..];
            let reference_mean = if window.is_empty() {
                latest as f64
            } else {
                window.iter().sum::<i64>() as f64 / window.len() as f64
            };
            let change_pct = if reference_mean == 0.0 {
                0.0
            } else {
                100.0 * (latest as f64 - reference_mean) / reference_mean
            };
            SeriesTrend {
                bench: key.0,
                label: key.1,
                history,
                latest_rev,
                reference_mean,
                change_pct,
                regressed: change_pct > tolerance_pct,
            }
        })
        .collect()
}

/// Render the trend report. Each series gets one line: run count, the
/// trajectory endpoints, the latest-vs-reference change, and a regression
/// flag.
pub fn render_trend_text(trends: &[SeriesTrend], last_k: usize, tolerance_pct: f64) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trend: {} series (reference = mean of last {last_k} prior runs, tolerance {tolerance_pct}%)",
        trends.len()
    );
    for t in trends {
        let verdict = if t.history.len() < 2 {
            "baseline".to_string()
        } else if t.regressed {
            format!("REGRESSED {:+.1}%", t.change_pct)
        } else {
            format!("ok {:+.1}%", t.change_pct)
        };
        let _ = writeln!(
            out,
            "  {:<28} {:>3} runs  {:>14} -> {:>14} ns  [{}]  rev {}",
            format!("{}/{}", t.bench, t.label),
            t.history.len(),
            t.history.first().copied().unwrap_or(0),
            t.history.last().copied().unwrap_or(0),
            verdict,
            t.latest_rev,
        );
    }
    if trends.iter().any(|t| t.regressed) {
        let _ = writeln!(out, "  verdict: REGRESSION detected");
    } else {
        let _ = writeln!(out, "  verdict: no regression");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(bench: &str, rev: &str, times: &[(&str, i64)]) -> String {
        let series: Vec<Json> = times
            .iter()
            .map(|(l, t)| {
                Json::Obj(vec![
                    ("label".into(), Json::Str(l.to_string())),
                    ("time_ns".into(), Json::Int(*t)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Int(LEDGER_SCHEMA)),
            ("bench".into(), Json::Str(bench.into())),
            ("git_rev".into(), Json::Str(rev.into())),
            ("series".into(), Json::Arr(series)),
        ])
        .render_compact()
    }

    #[test]
    fn regression_flagged_against_window_mean() {
        let text = [
            entry("fig4", "aaa", &[("orig", 100)]),
            entry("fig4", "bbb", &[("orig", 102)]),
            entry("fig4", "ccc", &[("orig", 130)]),
        ]
        .join("\n");
        let entries = parse_ledger(&text).unwrap();
        let trends = trend(&entries, 5, 10.0);
        assert_eq!(trends.len(), 1);
        assert!(trends[0].regressed, "{:?}", trends[0]);
        assert_eq!(trends[0].latest_rev, "ccc");
        // Within tolerance: not a regression.
        let trends = trend(&entries[..2], 5, 10.0);
        assert!(!trends[0].regressed);
    }

    #[test]
    fn single_run_is_baseline_not_regression() {
        let entries = parse_ledger(&entry("fig3", "aaa", &[("run", 50)])).unwrap();
        let trends = trend(&entries, 3, 5.0);
        assert_eq!(trends[0].history, vec![50]);
        assert!(!trends[0].regressed);
        let text = render_trend_text(&trends, 3, 5.0);
        assert!(text.contains("baseline"), "{text}");
        assert!(text.contains("no regression"), "{text}");
    }

    #[test]
    fn malformed_line_is_an_error() {
        assert!(parse_ledger("{\"bench\":\"x\"}\nnot json\n").is_err());
    }
}
