//! # commscope — end-to-end communication observability
//!
//! The runtime's event trace records every communication operation with its
//! virtual-time span, completion horizon, and (when issued from a
//! directive) the [`netsim::trace::SiteId`] of the `comm_p2p` instance that
//! caused it. This crate turns those traces — plus the runtime's metrics
//! registry ([`netsim::RankMetrics`]) — into actionable observability:
//!
//! * [`analysis`] — wait-state classification (late sender / late receiver
//!   / barrier / quiet), per-rank blame attribution that sums exactly to
//!   measured wait time, and exact critical-path extraction over the event
//!   DAG.
//! * [`chrome`] — Chrome `trace_event` JSON (Perfetto-loadable), one track
//!   per rank, with message flow arrows.
//! * [`profile`] — a stable, integer-only profile JSON document.
//! * [`folded`] — flamegraph folded stacks of virtual time.
//! * [`diff`] — differential profiling: join two profiles on the SiteId
//!   namespace and emit per-site deltas with exact accounting.
//! * [`trend`] — run-history trajectory over the bench ledger
//!   (`results/LEDGER.jsonl`) with regression detection.
//! * [`json`] — the workspace's serde-free JSON value type (re-exported by
//!   `bench`).
//!
//! Everything here is a pure function of virtual quantities, so every
//! export is byte-identical across `ExecPolicy::threads()`,
//! `ExecPolicy::bounded(w)`, and sweep-pool widths.
//!
//! The `commscope` binary (see `src/main.rs`) runs a figure workload from
//! `wl-lsms` with tracing and metrics enabled and writes the report,
//! trace, profile, and folded outputs.

pub mod analysis;
pub mod chrome;
pub mod diff;
pub mod folded;
pub mod json;
pub mod profile;
pub mod trend;

pub use analysis::{
    analyze, kind_label, pair_messages, Analysis, PathSegment, RankWaitProfile, WaitInterval,
    WaitKind,
};
pub use chrome::chrome_trace;
pub use diff::{diff_is_zero, diff_profiles, render_diff_text, validate_diff, DIFF_SCHEMA};
pub use folded::folded_stacks;
pub use json::Json;
pub use profile::{
    profile_json, profile_json_tuned, validate_profile, PROFILE_SCHEMA, UNATTRIBUTED_SITE,
};
pub use trend::{parse_ledger, render_trend_text, trend, SeriesTrend, LEDGER_SCHEMA};
