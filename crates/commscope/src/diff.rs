//! Differential profiling: join two profile documents on the shared SiteId
//! namespace and emit per-site deltas of the wait-blame taxonomy, traffic,
//! and critical-path contribution.
//!
//! The load-bearing invariant is **exact accounting**: the per-site delta
//! rows partition the total delta, so for every reported quantity the sum
//! over site rows equals the whole-run delta — nothing is hidden by the
//! join. This holds by construction: every wait interval, path segment, and
//! counted byte lands in exactly one site row (unattributed activity lands
//! on the [`UNATTRIBUTED_SITE`] pseudo-site), sites present on only one
//! side are reported explicitly as `added`/`removed` with their full
//! contribution as the delta, and [`validate_diff`] re-derives the
//! invariant from the rendered document so `--check` and CI can enforce it
//! on the artifact itself.
//!
//! Both profile schemas are accepted: schema-1 documents (no
//! `wait.per_site` section) fold all wait onto the unattributed pseudo-site,
//! which keeps the accounting exact at coarser granularity.

use std::collections::BTreeMap;

use crate::json::Json;
use crate::profile::UNATTRIBUTED_SITE;

/// Schema version of the diff document.
pub const DIFF_SCHEMA: i64 = 1;

/// The per-site quantities the diff tracks, in render order. Wait-taxonomy
/// fields first (they partition `total_wait_ns`), then the independent
/// critical-path and traffic totals.
const FIELDS: [&str; 10] = [
    "total_wait_ns",
    "late_sender_ns",
    "late_receiver_ns",
    "barrier_ns",
    "quiet_ns",
    "overhead_ns",
    "critical_path_ns",
    "msgs",
    "bytes",
    "dwell_ns",
];

/// One side's per-site aggregate, extracted from a profile document.
#[derive(Clone, Copy, Default, PartialEq, Eq)]
struct SiteRow {
    vals: [i64; FIELDS.len()],
}

struct ProfSummary {
    workload: String,
    ranks: i64,
    makespan_ns: i64,
    sites: BTreeMap<i64, SiteRow>,
}

fn field_index(name: &str) -> usize {
    FIELDS.iter().position(|f| *f == name).expect("known field")
}

/// Extract the per-site aggregates from one profile document (schema 1 or
/// 2). Wait taxonomy comes from `wait.per_site` when present, else the
/// per-rank totals fold onto the unattributed pseudo-site; the critical
/// path is re-aggregated from the `critical_path` array; traffic comes from
/// `metrics.total` with the site-attributed share subtracted out so the
/// remainder lands on the pseudo-site and the column still sums exactly.
fn summarize(doc: &Json) -> Result<ProfSummary, String> {
    let schema = doc
        .get("schema")
        .and_then(|v| v.as_i64())
        .ok_or("profile has no schema field")?;
    if !(1..=crate::PROFILE_SCHEMA).contains(&schema) {
        return Err(format!(
            "unsupported profile schema {schema} (this build reads 1..={})",
            crate::PROFILE_SCHEMA
        ));
    }
    let workload = doc
        .get("workload")
        .and_then(|v| v.as_str())
        .unwrap_or("?")
        .to_string();
    let ranks = doc.get("ranks").and_then(|v| v.as_i64()).unwrap_or(0);
    let makespan_ns = doc.get("makespan_ns").and_then(|v| v.as_i64()).unwrap_or(0);

    let mut sites: BTreeMap<i64, SiteRow> = BTreeMap::new();
    let mut add = |site: i64, field: &str, v: i64| {
        sites.entry(site).or_default().vals[field_index(field)] += v;
    };

    // Wait taxonomy.
    let taxonomy = [
        "total_wait_ns",
        "late_sender_ns",
        "late_receiver_ns",
        "barrier_ns",
        "quiet_ns",
        "overhead_ns",
    ];
    let per_site = doc
        .get("wait")
        .and_then(|w| w.get("per_site"))
        .and_then(|v| v.as_arr());
    match per_site {
        Some(rows) => {
            for row in rows {
                let site = row
                    .get("site")
                    .and_then(|v| v.as_i64())
                    .unwrap_or(UNATTRIBUTED_SITE);
                for f in taxonomy {
                    add(site, f, row.get(f).and_then(|v| v.as_i64()).unwrap_or(0));
                }
            }
        }
        None => {
            // Schema 1: only per-rank rows exist; all wait is unattributed.
            let rows = doc
                .get("wait")
                .and_then(|w| w.get("per_rank"))
                .and_then(|v| v.as_arr())
                .ok_or("profile has no wait.per_rank section")?;
            for row in rows {
                for f in taxonomy {
                    add(
                        UNATTRIBUTED_SITE,
                        f,
                        row.get(f).and_then(|v| v.as_i64()).unwrap_or(0),
                    );
                }
            }
        }
    }

    // Critical-path contribution, re-aggregated from the path itself so
    // schema-1 and schema-2 documents go through the identical derivation.
    if let Some(path) = doc.get("critical_path").and_then(|v| v.as_arr()) {
        for seg in path {
            let site = match seg.get("site") {
                Some(Json::Int(s)) => *s,
                _ => UNATTRIBUTED_SITE,
            };
            let ns = seg.get("end_ns").and_then(|v| v.as_i64()).unwrap_or(0)
                - seg.get("start_ns").and_then(|v| v.as_i64()).unwrap_or(0);
            add(site, "critical_path_ns", ns);
        }
    }

    // Traffic: per-site rows from the merged totals, remainder (messages
    // sent outside any directive site) on the pseudo-site. Site rows count
    // puts as sends, so the whole-run reference is sends + puts.
    if let Some(total) = doc.get("metrics").and_then(|m| m.get("total")) {
        let geti = |k: &str| total.get(k).and_then(|v| v.as_i64()).unwrap_or(0);
        let mut msgs_rest = geti("msgs_sent") + geti("puts");
        let mut bytes_rest = geti("bytes_sent") + geti("bytes_put");
        let mut dwell_rest = total
            .get("recv_dwell")
            .and_then(|h| h.get("sum"))
            .and_then(|v| v.as_i64())
            .unwrap_or(0);
        if let Some(site_rows) = total.get("sites").and_then(|v| v.as_arr()) {
            for row in site_rows {
                let site = row
                    .get("site")
                    .and_then(|v| v.as_i64())
                    .unwrap_or(UNATTRIBUTED_SITE);
                let msgs = row.get("msgs_sent").and_then(|v| v.as_i64()).unwrap_or(0);
                let bytes = row.get("bytes_sent").and_then(|v| v.as_i64()).unwrap_or(0);
                let dwell = row.get("dwell_ns").and_then(|v| v.as_i64()).unwrap_or(0);
                add(site, "msgs", msgs);
                add(site, "bytes", bytes);
                add(site, "dwell_ns", dwell);
                msgs_rest -= msgs;
                bytes_rest -= bytes;
                dwell_rest -= dwell;
            }
        }
        if msgs_rest != 0 || bytes_rest != 0 || dwell_rest != 0 {
            add(UNATTRIBUTED_SITE, "msgs", msgs_rest);
            add(UNATTRIBUTED_SITE, "bytes", bytes_rest);
            add(UNATTRIBUTED_SITE, "dwell_ns", dwell_rest);
        }
    }

    Ok(ProfSummary {
        workload,
        ranks,
        makespan_ns,
        sites,
    })
}

fn side_json(s: &ProfSummary) -> Json {
    let total_wait: i64 = s
        .sites
        .values()
        .map(|r| r.vals[field_index("total_wait_ns")])
        .sum();
    Json::Obj(vec![
        ("workload".into(), Json::Str(s.workload.clone())),
        ("ranks".into(), Json::Int(s.ranks)),
        ("makespan_ns".into(), Json::Int(s.makespan_ns)),
        ("total_wait_ns".into(), Json::Int(total_wait)),
    ])
}

/// Diff two parsed profile documents. Returns the diff document (schema
/// [`DIFF_SCHEMA`]); fails only on malformed inputs. The output is a pure
/// function of the inputs — profiles are byte-identical across execution
/// engines, so diffs are too.
pub fn diff_profiles(baseline: &Json, candidate: &Json) -> Result<Json, String> {
    let base = summarize(baseline).map_err(|e| format!("baseline: {e}"))?;
    let cand = summarize(candidate).map_err(|e| format!("candidate: {e}"))?;

    let mut all_sites: Vec<i64> = base.sites.keys().copied().collect();
    for s in cand.sites.keys() {
        if !base.sites.contains_key(s) {
            all_sites.push(*s);
        }
    }
    all_sites.sort_unstable();

    let zero = SiteRow::default();
    let mut totals = [0i64; FIELDS.len()];
    let mut site_rows = Vec::with_capacity(all_sites.len());
    for site in all_sites {
        let b = base.sites.get(&site);
        let c = cand.sites.get(&site);
        let status = match (b, c) {
            (Some(_), Some(_)) => "matched",
            (None, Some(_)) => "added",
            (Some(_), None) => "removed",
            (None, None) => unreachable!(),
        };
        let b = b.unwrap_or(&zero);
        let c = c.unwrap_or(&zero);
        let mut fields = vec![
            ("site".into(), Json::Int(site)),
            ("status".into(), Json::Str(status.into())),
        ];
        for (i, name) in FIELDS.iter().enumerate() {
            let d = c.vals[i] - b.vals[i];
            totals[i] += d;
            fields.push((name.to_string(), Json::Int(d)));
        }
        fields.push((
            "baseline_wait_ns".into(),
            Json::Int(b.vals[field_index("total_wait_ns")]),
        ));
        fields.push((
            "candidate_wait_ns".into(),
            Json::Int(c.vals[field_index("total_wait_ns")]),
        ));
        site_rows.push(Json::Obj(fields));
    }

    // Top regressions (wait got worse) and wins (wait got better), by
    // magnitude of the total-wait delta; at most three each.
    let mut ranked: Vec<(i64, i64)> = site_rows
        .iter()
        .map(|r| {
            (
                r.get("site").and_then(|v| v.as_i64()).unwrap_or(0),
                r.get("total_wait_ns").and_then(|v| v.as_i64()).unwrap_or(0),
            )
        })
        .collect();
    ranked.sort_by_key(|&(site, d)| (d, site));
    let wins: Vec<Json> = ranked
        .iter()
        .filter(|&&(_, d)| d < 0)
        .take(3)
        .map(|&(site, d)| {
            Json::Obj(vec![
                ("site".into(), Json::Int(site)),
                ("total_wait_ns".into(), Json::Int(d)),
            ])
        })
        .collect();
    let regressions: Vec<Json> = ranked
        .iter()
        .rev()
        .filter(|&&(_, d)| d > 0)
        .take(3)
        .map(|&(site, d)| {
            Json::Obj(vec![
                ("site".into(), Json::Int(site)),
                ("total_wait_ns".into(), Json::Int(d)),
            ])
        })
        .collect();

    let mut delta_fields = vec![(
        "makespan_ns".into(),
        Json::Int(cand.makespan_ns - base.makespan_ns),
    )];
    for (i, name) in FIELDS.iter().enumerate() {
        delta_fields.push((name.to_string(), Json::Int(totals[i])));
    }

    Ok(Json::Obj(vec![
        ("schema".into(), Json::Int(DIFF_SCHEMA)),
        ("kind".into(), Json::Str("commdiff".into())),
        ("baseline".into(), side_json(&base)),
        ("candidate".into(), side_json(&cand)),
        ("delta".into(), Json::Obj(delta_fields)),
        ("sites".into(), Json::Arr(site_rows)),
        (
            "summary".into(),
            Json::Obj(vec![
                ("top_regressions".into(), Json::Arr(regressions)),
                ("top_wins".into(), Json::Arr(wins)),
            ]),
        ),
    ]))
}

/// Validate a diff document: shape, and the exact-accounting invariant
/// re-derived from the document itself (per-site deltas sum to the total
/// delta for every tracked field; wait-taxonomy columns partition the
/// total-wait column; side totals reconcile with the delta). Returns a
/// list of problems, empty when valid.
pub fn validate_diff(doc: &Json) -> Vec<String> {
    let mut problems = Vec::new();
    if doc.get("schema").and_then(|v| v.as_i64()) != Some(DIFF_SCHEMA) {
        problems.push(format!("schema is not {DIFF_SCHEMA}"));
    }
    if doc.get("kind").and_then(|v| v.as_str()) != Some("commdiff") {
        problems.push("kind is not 'commdiff'".into());
    }
    let sites = match doc.get("sites").and_then(|v| v.as_arr()) {
        Some(s) => s,
        None => {
            problems.push("missing sites array".into());
            return problems;
        }
    };
    let delta = match doc.get("delta") {
        Some(d) => d,
        None => {
            problems.push("missing delta object".into());
            return problems;
        }
    };
    for field in FIELDS {
        let total = delta.get(field).and_then(|v| v.as_i64());
        let sum: i64 = sites
            .iter()
            .filter_map(|r| r.get(field).and_then(|v| v.as_i64()))
            .sum();
        match total {
            Some(t) if t == sum => {}
            Some(t) => problems.push(format!(
                "field '{field}': site deltas sum to {sum}, delta reports {t}"
            )),
            None => problems.push(format!("delta missing field '{field}'")),
        }
    }
    for row in sites {
        let site = row.get("site").and_then(|v| v.as_i64());
        match row.get("status").and_then(|v| v.as_str()) {
            Some("matched") | Some("added") | Some("removed") => {}
            other => problems.push(format!("site {site:?}: bad status {other:?}")),
        }
        let total = row
            .get("total_wait_ns")
            .and_then(|v| v.as_i64())
            .unwrap_or(0);
        let buckets: i64 = [
            "late_sender_ns",
            "late_receiver_ns",
            "barrier_ns",
            "quiet_ns",
            "overhead_ns",
        ]
        .iter()
        .filter_map(|k| row.get(k).and_then(|v| v.as_i64()))
        .sum();
        if total != buckets {
            problems.push(format!(
                "site {site:?}: taxonomy deltas sum to {buckets}, total_wait_ns is {total}"
            ));
        }
        let b = row
            .get("baseline_wait_ns")
            .and_then(|v| v.as_i64())
            .unwrap_or(0);
        let c = row
            .get("candidate_wait_ns")
            .and_then(|v| v.as_i64())
            .unwrap_or(0);
        if c - b != total {
            problems.push(format!(
                "site {site:?}: candidate-baseline is {}, total_wait_ns is {total}",
                c - b
            ));
        }
    }
    // Side totals must reconcile with the headline wait delta.
    let side_wait = |key: &str| {
        doc.get(key)
            .and_then(|s| s.get("total_wait_ns"))
            .and_then(|v| v.as_i64())
            .unwrap_or(0)
    };
    let headline = delta
        .get("total_wait_ns")
        .and_then(|v| v.as_i64())
        .unwrap_or(0);
    if side_wait("candidate") - side_wait("baseline") != headline {
        problems.push("side totals do not reconcile with delta.total_wait_ns".into());
    }
    problems
}

/// True when every delta in the document is exactly zero and no site was
/// added or removed — the expected result of diffing a run against itself.
pub fn diff_is_zero(doc: &Json) -> bool {
    let delta_zero = doc
        .get("delta")
        .map(|d| match d {
            Json::Obj(fields) => fields.iter().all(|(_, v)| v.as_i64() == Some(0)),
            _ => false,
        })
        .unwrap_or(false);
    let sites_zero = doc
        .get("sites")
        .and_then(|v| v.as_arr())
        .map(|rows| {
            rows.iter().all(|r| {
                r.get("status").and_then(|v| v.as_str()) == Some("matched")
                    && FIELDS
                        .iter()
                        .all(|f| r.get(f).and_then(|v| v.as_i64()) == Some(0))
            })
        })
        .unwrap_or(false);
    delta_zero && sites_zero
}

fn fmt_site(site: i64) -> String {
    if site == UNATTRIBUTED_SITE {
        "(unattributed)".into()
    } else {
        format!("site {site}")
    }
}

fn fmt_signed(v: i64) -> String {
    if v > 0 {
        format!("+{v}")
    } else {
        format!("{v}")
    }
}

fn pct(delta: i64, base: i64) -> String {
    if base == 0 {
        "n/a".into()
    } else {
        format!("{:+.1}%", 100.0 * delta as f64 / base as f64)
    }
}

/// Render the human-readable report for a diff document: headline deltas,
/// a per-site table sorted by wait-delta magnitude, and the top
/// regressions / top wins summary.
pub fn render_diff_text(doc: &Json) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let side = |key: &str, field: &str| -> i64 {
        doc.get(key)
            .and_then(|s| s.get(field))
            .and_then(|v| v.as_i64())
            .unwrap_or(0)
    };
    let side_str = |key: &str| -> String {
        doc.get(key)
            .and_then(|s| s.get("workload"))
            .and_then(|v| v.as_str())
            .unwrap_or("?")
            .to_string()
    };
    let delta = |field: &str| -> i64 {
        doc.get("delta")
            .and_then(|d| d.get(field))
            .and_then(|v| v.as_i64())
            .unwrap_or(0)
    };
    let _ = writeln!(
        out,
        "commdiff: {} ({} ranks) -> {} ({} ranks)",
        side_str("baseline"),
        side("baseline", "ranks"),
        side_str("candidate"),
        side("candidate", "ranks"),
    );
    let _ = writeln!(
        out,
        "  makespan:   {} -> {} ns  ({}, {})",
        side("baseline", "makespan_ns"),
        side("candidate", "makespan_ns"),
        fmt_signed(delta("makespan_ns")),
        pct(delta("makespan_ns"), side("baseline", "makespan_ns")),
    );
    let _ = writeln!(
        out,
        "  total wait: {} -> {} ns  ({}, {})",
        side("baseline", "total_wait_ns"),
        side("candidate", "total_wait_ns"),
        fmt_signed(delta("total_wait_ns")),
        pct(delta("total_wait_ns"), side("baseline", "total_wait_ns")),
    );
    let _ = writeln!(
        out,
        "  traffic:    {} msgs, {} bytes; critical path {} ns",
        fmt_signed(delta("msgs")),
        fmt_signed(delta("bytes")),
        fmt_signed(delta("critical_path_ns")),
    );
    out.push('\n');

    let mut rows: Vec<&Json> = doc
        .get("sites")
        .and_then(|v| v.as_arr())
        .map(|r| r.iter().collect())
        .unwrap_or_default();
    let row_i64 = |r: &Json, k: &str| r.get(k).and_then(|v| v.as_i64()).unwrap_or(0);
    rows.sort_by_key(|r| (-row_i64(r, "total_wait_ns").abs(), row_i64(r, "site")));
    let _ = writeln!(
        out,
        "  {:<14} {:<8} {:>12} {:>12} {:>12} {:>10} {:>8} {:>12}",
        "site", "status", "wait", "late_send", "late_recv", "cp", "msgs", "bytes"
    );
    for r in &rows {
        let site = row_i64(r, "site");
        let _ = writeln!(
            out,
            "  {:<14} {:<8} {:>12} {:>12} {:>12} {:>10} {:>8} {:>12}",
            fmt_site(site),
            r.get("status").and_then(|v| v.as_str()).unwrap_or("?"),
            fmt_signed(row_i64(r, "total_wait_ns")),
            fmt_signed(row_i64(r, "late_sender_ns")),
            fmt_signed(row_i64(r, "late_receiver_ns")),
            fmt_signed(row_i64(r, "critical_path_ns")),
            fmt_signed(row_i64(r, "msgs")),
            fmt_signed(row_i64(r, "bytes")),
        );
    }
    out.push('\n');

    let list = |key: &str| -> Vec<(i64, i64)> {
        doc.get("summary")
            .and_then(|s| s.get(key))
            .and_then(|v| v.as_arr())
            .map(|rows| {
                rows.iter()
                    .map(|r| (row_i64(r, "site"), row_i64(r, "total_wait_ns")))
                    .collect()
            })
            .unwrap_or_default()
    };
    let regressions = list("top_regressions");
    let wins = list("top_wins");
    if regressions.is_empty() {
        let _ = writeln!(out, "  top regressions: none");
    } else {
        let items: Vec<String> = regressions
            .iter()
            .map(|&(s, d)| format!("{} ({} ns wait)", fmt_site(s), fmt_signed(d)))
            .collect();
        let _ = writeln!(out, "  top regressions: {}", items.join(", "));
    }
    if wins.is_empty() {
        let _ = writeln!(out, "  top wins: none");
    } else {
        let items: Vec<String> = wins
            .iter()
            .map(|&(s, d)| format!("{} ({} ns wait)", fmt_site(s), fmt_signed(d)))
            .collect();
        let _ = writeln!(out, "  top wins: {}", items.join(", "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::profile::profile_json;
    use netsim::trace::{EventKind, TraceEvent};
    use netsim::Time;

    fn quiet_event(rank: usize, site: Option<u32>, start: u64, end: u64) -> TraceEvent {
        TraceEvent {
            rank,
            time: Time(end),
            start: Time(start),
            site,
            kind: EventKind::Quiet {
                outstanding: 1,
                horizon: Time(end.saturating_sub(5)),
            },
        }
    }

    fn sample_profile(extra_site: bool) -> Json {
        let mut evs = vec![quiet_event(0, Some(1), 10, 50)];
        if extra_site {
            evs.push(quiet_event(0, Some(2), 60, 90));
        }
        let end = if extra_site { 90 } else { 50 };
        let a = analyze(&evs, 1, &[Time(end)]);
        profile_json("demo", &[], &a, &[])
    }

    #[test]
    fn self_diff_is_zero_and_valid() {
        let p = sample_profile(false);
        let d = diff_profiles(&p, &p).unwrap();
        assert!(validate_diff(&d).is_empty(), "{:?}", validate_diff(&d));
        assert!(diff_is_zero(&d));
    }

    #[test]
    fn added_site_is_reported_and_accounts_exactly() {
        let base = sample_profile(false);
        let cand = sample_profile(true);
        let d = diff_profiles(&base, &cand).unwrap();
        assert!(validate_diff(&d).is_empty(), "{:?}", validate_diff(&d));
        assert!(!diff_is_zero(&d));
        let rows = d.get("sites").unwrap().as_arr().unwrap();
        let added = rows
            .iter()
            .find(|r| r.get("site").unwrap().as_i64() == Some(2))
            .expect("site 2 present");
        assert_eq!(added.get("status").unwrap().as_str(), Some("added"));
        // Reversing the diff flips added to removed.
        let rev = diff_profiles(&cand, &base).unwrap();
        let rows = rev.get("sites").unwrap().as_arr().unwrap();
        let removed = rows
            .iter()
            .find(|r| r.get("site").unwrap().as_i64() == Some(2))
            .expect("site 2 present");
        assert_eq!(removed.get("status").unwrap().as_str(), Some("removed"));
        assert!(validate_diff(&rev).is_empty());
    }

    #[test]
    fn schema1_profiles_fold_onto_unattributed() {
        // A hand-written schema-1 document (no wait.per_site).
        let old = Json::parse(
            r#"{"schema": 1, "workload": "legacy", "args": {}, "ranks": 1,
                "makespan_ns": 100,
                "wait": {"per_rank": [{"rank": 0, "total_wait_ns": 40,
                    "late_sender_ns": 30, "late_receiver_ns": 0,
                    "barrier_ns": 0, "quiet_ns": 0, "overhead_ns": 10,
                    "blame": [40]}]},
                "metrics": {"per_rank": [], "total": {}},
                "critical_path": []}"#,
        )
        .unwrap();
        let d = diff_profiles(&old, &old).unwrap();
        assert!(validate_diff(&d).is_empty(), "{:?}", validate_diff(&d));
        assert!(diff_is_zero(&d));
        let rows = d.get("sites").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0].get("site").unwrap().as_i64(),
            Some(UNATTRIBUTED_SITE)
        );
        assert_eq!(rows[0].get("baseline_wait_ns").unwrap().as_i64(), Some(40));
    }

    #[test]
    fn validator_catches_broken_accounting() {
        let p = sample_profile(true);
        let mut d = diff_profiles(&p, &sample_profile(false)).unwrap();
        // Corrupt one site delta so the column no longer sums.
        if let Json::Obj(fields) = &mut d {
            if let Some((_, Json::Arr(rows))) = fields.iter_mut().find(|(k, _)| k == "sites") {
                if let Json::Obj(row) = &mut rows[0] {
                    for (k, v) in row.iter_mut() {
                        if k == "msgs" {
                            *v = Json::Int(999);
                        }
                    }
                }
            }
        }
        let problems = validate_diff(&d);
        assert!(problems.iter().any(|p| p.contains("msgs")), "{problems:?}");
    }
}
