//! Column-major 2-D matrices, matching the original WL-LSMS container
//! (`atom.vr(0,0)`, `n_row()`, column-contiguous storage — which is why the
//! original code can `MPI_Pack(&atom.vr(0,0), 2*t, MPI_DOUBLE, ...)` to
//! ship the first two columns as one contiguous block).

use mpisim::pod::Pod;

/// A column-major matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Pod + Default> Matrix<T> {
    /// Zero-initialized `rows x cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }

    /// Number of rows (`n_row()` in the original code).
    pub fn n_row(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn n_col(&self) -> usize {
        self.cols
    }

    /// Element access (column-major).
    pub fn at(&self, r: usize, c: usize) -> T {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[c * self.rows + r]
    }

    /// Mutable element access (column-major).
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut T {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[c * self.rows + r]
    }

    /// The backing column-major storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable backing storage.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// The first `n` elements in storage order — `&vr(0,0)` with a count of
    /// `n`, as the original pack calls do.
    pub fn prefix(&self, n: usize) -> &[T] {
        &self.data[..n]
    }

    /// Mutable prefix.
    pub fn prefix_mut(&mut self, n: usize) -> &mut [T] {
        &mut self.data[..n]
    }

    /// Resize to `rows x cols`, preserving the storage prefix (the
    /// original's `resizePotential` semantics are coarser; data is
    /// re-communicated right after).
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, T::default());
    }

    /// Fill from a deterministic function of (row, col).
    pub fn fill_with(&mut self, mut f: impl FnMut(usize, usize) -> T) {
        for c in 0..self.cols {
            for r in 0..self.rows {
                self.data[c * self.rows + r] = f(r, c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_major_layout() {
        let mut m = Matrix::<f64>::new(3, 2);
        *m.at_mut(0, 0) = 1.0;
        *m.at_mut(2, 0) = 3.0;
        *m.at_mut(0, 1) = 4.0;
        assert_eq!(m.as_slice(), &[1.0, 0.0, 3.0, 4.0, 0.0, 0.0]);
        assert_eq!(m.at(2, 0), 3.0);
        assert_eq!(m.n_row(), 3);
        assert_eq!(m.n_col(), 2);
    }

    #[test]
    fn prefix_matches_first_columns() {
        // prefix(2*t) with t=n_row covers exactly the first two columns.
        let mut m = Matrix::<i32>::new(4, 3);
        m.fill_with(|r, c| (c * 10 + r) as i32);
        let t = m.n_row();
        assert_eq!(m.prefix(2 * t), &[0, 1, 2, 3, 10, 11, 12, 13]);
    }

    #[test]
    fn resize_preserves_prefix() {
        let mut m = Matrix::<f64>::new(2, 2);
        m.fill_with(|r, c| (r + c) as f64);
        m.resize(3, 2);
        assert_eq!(m.n_row(), 3);
        assert_eq!(m.as_slice().len(), 6);
        assert_eq!(m.as_slice()[0], 0.0);
        assert_eq!(m.as_slice()[1], 1.0);
    }
}
