//! The `calculateCoreStates` computation kernel and its cost model.
//!
//! WL-LSMS spends ~19x more time computing than communicating (paper §IV-B:
//! "the overall ratio of computation time to communication time in WL-LSMS
//! is 19 to 1"); the first slice of the core-state calculation does not
//! depend on the incoming spin configuration and can be overlapped with the
//! communication (Listing 7). The paper's Figure 5 additionally projects a
//! 10x GPU speedup of the computation.
//!
//! The kernel does real numerics — a shooting-method style refinement of
//! model core-state energies on the atom's radial mesh — and charges
//! virtual compute time from a calibrated per-atom budget divided by the
//! configured speedup.

use netsim::{RankCtx, Time};

use crate::atom::AtomData;

/// Cost/precision parameters for the core-state kernel.
#[derive(Clone, Copy, Debug)]
pub struct CoreStateParams {
    /// Virtual compute nanoseconds per atom at CPU speed, calibrated so the
    /// app-level compute:comm ratio is ~19:1 for the original MPI spin
    /// communication.
    pub base_ns_per_atom: u64,
    /// Computation speedup factor (1.0 = CPU baseline; 10.0 = the paper's
    /// GPU projection).
    pub speedup: f64,
    /// Refinement iterations (controls the real numeric work).
    pub iterations: usize,
}

impl Default for CoreStateParams {
    fn default() -> Self {
        CoreStateParams {
            // Calibrated against the original spin-communication time per
            // step; see EXPERIMENTS.md.
            base_ns_per_atom: 760_000,
            speedup: 1.0,
            iterations: 4,
        }
    }
}

impl CoreStateParams {
    /// The paper's projected GPU configuration.
    pub fn gpu(self) -> Self {
        CoreStateParams {
            speedup: 10.0,
            ..self
        }
    }

    /// Virtual time charged per atom.
    pub fn time_per_atom(&self) -> Time {
        Time::from_nanos_f64(self.base_ns_per_atom as f64 / self.speedup)
    }
}

/// Compute refined core-state energies for `atom` given its current spin
/// direction, charging virtual compute time. Returns the atom's core-energy
/// sum (used by the Wang–Landau driver as part of the local energy).
pub fn calculate_core_states(ctx: &mut RankCtx, atom: &AtomData, params: &CoreStateParams) -> f64 {
    let t = atom.ec.n_row();
    let mesh = atom.vr.n_row().max(1);
    let mut total = 0.0f64;
    for s in 0..2usize {
        for i in 0..t {
            // Model: refine e so that e = e0 + c * <v(r)> * tanh(e), a
            // fixed-point mimicking the matching condition of a shooting
            // solver; e0 from the stored core energy ladder.
            let e0 = atom.ec.at(i, s);
            let v_mean = {
                // Sparse sample of the potential column (real data access).
                let mut acc = 0.0;
                let stride = (mesh / 16).max(1);
                let mut n = 0usize;
                let mut r = 0usize;
                while r < mesh {
                    acc += atom.vr.at(r, s);
                    n += 1;
                    r += stride;
                }
                acc / n as f64
            };
            let mut e = e0;
            for _ in 0..params.iterations {
                e = e0 + 1e-3 * v_mean * e.tanh();
            }
            total += e;
        }
    }
    // Spin coupling: the evec direction tilts the band energies slightly.
    let ez = atom.scalars.evec[2];
    total *= 1.0 + 1e-6 * ez;
    ctx.compute(params.time_per_atom());
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{AtomData, AtomSizes};
    use netsim::{run, SimConfig};

    #[test]
    fn kernel_charges_configured_time() {
        let res = run(SimConfig::new(1), |ctx| {
            let atom = AtomData::synthetic_fe(0, AtomSizes { jmt: 64, numc: 8 });
            let p = CoreStateParams {
                base_ns_per_atom: 1_000_000,
                speedup: 1.0,
                iterations: 2,
            };
            let e = calculate_core_states(ctx, &atom, &p);
            (e, ctx.now())
        });
        let (e, t) = res.per_rank[0];
        assert!(e.is_finite() && e < 0.0, "core energies negative, got {e}");
        assert_eq!(t, Time::from_millis(1));
    }

    #[test]
    fn gpu_projection_is_ten_times_cheaper() {
        let p = CoreStateParams::default();
        let g = p.gpu();
        assert_eq!(
            p.time_per_atom().as_nanos(),
            g.time_per_atom().as_nanos() * 10
        );
    }

    #[test]
    fn result_depends_on_spin_and_atom() {
        let res = run(SimConfig::new(1), |ctx| {
            let p = CoreStateParams {
                base_ns_per_atom: 1,
                speedup: 1.0,
                iterations: 3,
            };
            let a0 = AtomData::synthetic_fe(0, AtomSizes { jmt: 32, numc: 4 });
            let mut a0_flipped = a0.clone();
            a0_flipped.scalars.evec = [0.0, 0.0, -1.0];
            let a1 = AtomData::synthetic_fe(1, AtomSizes { jmt: 32, numc: 4 });
            let e0 = calculate_core_states(ctx, &a0, &p);
            let e0f = calculate_core_states(ctx, &a0_flipped, &p);
            let e1 = calculate_core_states(ctx, &a1, &p);
            (e0, e0f, e1)
        });
        let (e0, e0f, e1) = res.per_rank[0];
        assert_ne!(e0, e0f, "spin direction must matter");
        assert_ne!(e0, e1, "atom identity must matter");
    }

    #[test]
    fn deterministic_across_runs() {
        let one = || {
            run(SimConfig::new(1), |ctx| {
                let atom = AtomData::synthetic_fe(5, AtomSizes { jmt: 100, numc: 10 });
                calculate_core_states(ctx, &atom, &CoreStateParams::default())
            })
            .per_rank[0]
        };
        assert_eq!(one(), one());
    }
}
