//! Wang–Landau sampling: the WL half of WL-LSMS.
//!
//! The master process maintains the density-of-states estimate `ln g(E)`
//! over an energy histogram, drives one random walker per LSMS instance,
//! and applies the standard Wang–Landau acceptance and modification-factor
//! schedule (`f -> sqrt(f)` when the histogram is flat). The LSMS instances
//! act as energy evaluators — exactly the modular structure of the paper's
//! Figure 1.

/// Wang–Landau state: density of states over an energy window.
#[derive(Clone, Debug)]
pub struct WangLandau {
    emin: f64,
    emax: f64,
    ln_g: Vec<f64>,
    hist: Vec<u64>,
    ln_f: f64,
    /// Flatness criterion: min(hist) >= flatness * mean(hist).
    flatness: f64,
    /// Modification-factor floor at which sampling is converged.
    ln_f_final: f64,
    rng: u64,
}

impl WangLandau {
    /// New sampler over `[emin, emax]` with `bins` bins.
    pub fn new(emin: f64, emax: f64, bins: usize, seed: u64) -> Self {
        assert!(emax > emin && bins > 0);
        WangLandau {
            emin,
            emax,
            ln_g: vec![0.0; bins],
            hist: vec![0; bins],
            ln_f: 1.0,
            flatness: 0.8,
            ln_f_final: 1e-6,
            rng: seed | 1,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bin index of an energy (clamped to the window).
    pub fn bin_of(&self, e: f64) -> usize {
        let n = self.ln_g.len();
        let x = (e - self.emin) / (self.emax - self.emin);
        ((x * n as f64) as isize).clamp(0, n as isize - 1) as usize
    }

    /// Wang–Landau acceptance of a move `e_old -> e_new`:
    /// `min(1, g(E_old)/g(E_new))`.
    pub fn accept(&mut self, e_old: f64, e_new: f64) -> bool {
        let (bo, bn) = (self.bin_of(e_old), self.bin_of(e_new));
        let ratio = self.ln_g[bo] - self.ln_g[bn];
        ratio >= 0.0 || self.next_f64() < ratio.exp()
    }

    /// Record a visit to energy `e` (the walker's resulting state):
    /// `ln g += ln f`, `hist += 1`.
    pub fn record(&mut self, e: f64) {
        let b = self.bin_of(e);
        self.ln_g[b] += self.ln_f;
        self.hist[b] += 1;
    }

    /// Whether the histogram is flat (over visited bins).
    pub fn is_flat(&self) -> bool {
        let visited: Vec<u64> = self.hist.iter().copied().filter(|&h| h > 0).collect();
        if visited.len() < 2 {
            return false;
        }
        let mean = visited.iter().sum::<u64>() as f64 / visited.len() as f64;
        let min = *visited.iter().min().expect("nonempty") as f64;
        min >= self.flatness * mean
    }

    /// Halve `ln f` and reset the histogram (call when flat).
    pub fn advance_stage(&mut self) {
        self.ln_f *= 0.5;
        self.hist.iter_mut().for_each(|h| *h = 0);
    }

    /// One bookkeeping step: record, and advance the stage when flat.
    /// Returns `true` if a stage transition happened.
    pub fn step(&mut self, e: f64) -> bool {
        self.record(e);
        if self.is_flat() {
            self.advance_stage();
            true
        } else {
            false
        }
    }

    /// Whether the modification factor has reached its floor.
    pub fn converged(&self) -> bool {
        self.ln_f <= self.ln_f_final
    }

    /// Current modification factor `ln f`.
    pub fn ln_f(&self) -> f64 {
        self.ln_f
    }

    /// The (unnormalized) `ln g` estimate.
    pub fn ln_g(&self) -> &[f64] {
        &self.ln_g
    }

    /// Histogram of the current stage.
    pub fn histogram(&self) -> &[u64] {
        &self.hist
    }
}

/// Heisenberg-ring energy of a spin configuration:
/// `E = -J * sum_i S_i . S_{i+1}` (periodic).
pub fn heisenberg_ring_energy(spins: &[[f64; 3]], j: f64) -> f64 {
    let n = spins.len();
    if n < 2 {
        return 0.0;
    }
    let mut e = 0.0;
    for i in 0..n {
        let a = spins[i];
        let b = spins[(i + 1) % n];
        e -= j * (a[0] * b[0] + a[1] * b[1] + a[2] * b[2]);
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_covers_window() {
        let wl = WangLandau::new(-16.0, 16.0, 32, 42);
        assert_eq!(wl.bin_of(-16.0), 0);
        assert_eq!(wl.bin_of(15.999), 31);
        assert_eq!(wl.bin_of(0.0), 16);
        // Clamped outside the window.
        assert_eq!(wl.bin_of(-100.0), 0);
        assert_eq!(wl.bin_of(100.0), 31);
    }

    #[test]
    fn acceptance_favours_less_visited_bins() {
        let mut wl = WangLandau::new(0.0, 1.0, 2, 7);
        // Inflate g of bin 0; moves from bin 0 to bin 1 always accepted.
        for _ in 0..100 {
            wl.record(0.1);
        }
        assert!(wl.accept(0.1, 0.9));
        // Reverse direction is (almost) always rejected at this contrast.
        let rejected = (0..200).filter(|_| !wl.accept(0.9, 0.1)).count();
        assert!(rejected > 190, "rejected {rejected}/200");
    }

    #[test]
    fn flatness_and_stage_advance() {
        let mut wl = WangLandau::new(0.0, 1.0, 4, 9);
        assert!(!wl.is_flat());
        // Visit two bins evenly: flat over visited bins.
        let f0 = wl.ln_f();
        for _ in 0..10 {
            wl.record(0.1);
            wl.record(0.6);
        }
        assert!(wl.is_flat());
        assert!(wl.step(0.1));
        assert_eq!(wl.ln_f(), f0 * 0.5);
        assert!(wl.histogram().iter().all(|&h| h == 0));
    }

    #[test]
    fn convergence_after_enough_stages() {
        let mut wl = WangLandau::new(0.0, 1.0, 2, 11);
        let mut stages = 0;
        for i in 0..100_000 {
            let e = if i % 2 == 0 { 0.25 } else { 0.75 };
            if wl.step(e) {
                stages += 1;
            }
            if wl.converged() {
                break;
            }
        }
        assert!(wl.converged(), "stages reached: {stages}");
        assert!(stages >= 20);
    }

    #[test]
    fn two_level_dos_ratio_recovered() {
        // A system visiting bin A twice as often as bin B at flat g would
        // have g_A/g_B -> 2; with WL both bins end up equally visited and
        // ln_g difference stabilizes. Sanity-check monotonic behaviour: the
        // more a bin is recorded, the higher its ln_g.
        let mut wl = WangLandau::new(0.0, 1.0, 2, 5);
        for _ in 0..30 {
            wl.record(0.2);
        }
        for _ in 0..10 {
            wl.record(0.8);
        }
        assert!(wl.ln_g()[0] > wl.ln_g()[1]);
    }

    #[test]
    fn heisenberg_energies() {
        let up = [0.0, 0.0, 1.0];
        let down = [0.0, 0.0, -1.0];
        // Ferromagnetic ring of 4: E = -4J.
        assert_eq!(heisenberg_ring_energy(&[up; 4], 1.0), -4.0);
        // Antiferromagnetic arrangement: E = +4J.
        assert_eq!(heisenberg_ring_energy(&[up, down, up, down], 1.0), 4.0);
        assert_eq!(heisenberg_ring_energy(&[up], 1.0), 0.0);
    }
}
