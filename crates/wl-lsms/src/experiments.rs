//! The paper's evaluation experiments (§IV-B), as runnable functions.
//!
//! Each returns virtual-time measurements from a full SPMD execution of the
//! corresponding code paths on the Gemini machine model:
//!
//! * [`fig3_single_atom`] — "communication of the system's potentials and
//!   electron densities": the WL master distributes every atom's data to
//!   the privileged ranks (pack/send), which relay per-atom data within
//!   their LIZ using either the original Listing-4 path or the Listing-5
//!   directives (MPI or SHMEM target).
//! * [`fig4_spin`] — "communication of random spin configurations ...
//!   within the main loop": per-step `setEvec` under the four variants.
//! * [`fig5_overlap`] — spin communication + the first core-state
//!   computation, with the 10x GPU projection, original vs. directive
//!   overlap.
//! * [`run_full_app`] — the assembled WL-LSMS mini-app (atom distribution,
//!   per-step spin scatter, distributed energy evaluation, Wang–Landau
//!   bookkeeping), used to check that every communication variant computes
//!   identical physics.

use commint::{CommSession, Overlay, Target};
use netsim::trace::TraceEvent;
use netsim::{run, ExecPolicy, RankMetrics, RankStats, SimConfig, Time};

use crate::atom::{AtomData, AtomSizes};
use crate::atom_comm::{transfer_atom_directive, transfer_atom_original};
use crate::core_states::{calculate_core_states, CoreStateParams};
use crate::spin::{
    generate_spins, set_evec_directive, set_evec_original, spin_at, SpinState, SpinVariant,
};
use crate::topology::Topology;
use crate::wang_landau::{heisenberg_ring_energy, WangLandau};

/// Implementation variants for the single-atom-data distribution (Fig. 3
/// series).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AtomCommVariant {
    /// Listing 4 everywhere.
    Original,
    /// Listing 5, MPI two-sided target.
    DirectiveMpi2,
    /// Listing 5, SHMEM target.
    DirectiveShmem,
}

impl AtomCommVariant {
    /// Figure legend label.
    pub fn label(self) -> &'static str {
        match self {
            AtomCommVariant::Original => "Original Communication",
            AtomCommVariant::DirectiveMpi2 => "MPI Target w/ Directive Communication",
            AtomCommVariant::DirectiveShmem => "SHMEM Target w/ Directive Communication",
        }
    }
}

/// One measured experiment point.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Total ranks in the run.
    pub nranks: usize,
    /// Virtual makespan of the measured phase.
    pub time: Time,
    /// All ranks verified their received data.
    pub correct: bool,
    /// Whole-job operation counters.
    pub stats: RankStats,
}

/// Full observability capture of one experiment run: the event trace, the
/// metrics registry, and the final per-rank clocks — everything `commscope`
/// needs for wait-state analysis and export. All values are pure functions
/// of virtual time, so an `Observed` is bit-identical across execution
/// engines. For the per-step figures the trace covers the *whole* run
/// (including warmup), while `Measurement::time` remains the steady-state
/// per-step number.
#[derive(Clone, Debug)]
pub struct Observed {
    /// The measurement, identical to the unobserved run's.
    pub measurement: Measurement,
    /// Time-sorted event trace from all ranks.
    pub trace: Vec<TraceEvent>,
    /// Per-rank metrics registry dumps, indexed by rank.
    pub metrics: Vec<RankMetrics>,
    /// Final virtual clock of each rank.
    pub final_times: Vec<Time>,
}

/// Fig. 3: time to distribute every atom's single-atom data.
pub fn fig3_single_atom(
    topo: &Topology,
    variant: AtomCommVariant,
    sizes: AtomSizes,
) -> Measurement {
    fig3_single_atom_exec(topo, variant, sizes, ExecPolicy::default())
}

/// [`fig3_single_atom`] with an explicit execution engine. The measurement
/// is bit-identical for every [`ExecPolicy`].
pub fn fig3_single_atom_exec(
    topo: &Topology,
    variant: AtomCommVariant,
    sizes: AtomSizes,
    exec: ExecPolicy,
) -> Measurement {
    fig3_single_atom_run(topo, variant, sizes, exec, false).0
}

/// [`fig3_single_atom_exec`] with tracing and metrics enabled; the
/// measurement is unchanged by observation.
pub fn fig3_single_atom_observed(
    topo: &Topology,
    variant: AtomCommVariant,
    sizes: AtomSizes,
    exec: ExecPolicy,
) -> Observed {
    fig3_single_atom_run(topo, variant, sizes, exec, true)
        .1
        .expect("observed run captures trace")
}

#[allow(clippy::needless_range_loop)] // worker loops index rank-shaped arrays
fn fig3_single_atom_run(
    topo: &Topology,
    variant: AtomCommVariant,
    sizes: AtomSizes,
    exec: ExecPolicy,
    observe: bool,
) -> (Measurement, Option<Observed>) {
    let t = topo.clone();
    let mut cfg = SimConfig::new(t.total_ranks()).with_exec(exec);
    if observe {
        cfg = cfg.with_trace().with_metrics();
    }
    let res = run(cfg, move |ctx| {
        let comms = t.build_comms(ctx);
        let n = t.ranks_per_lsms;
        let me = ctx.rank();

        // Stage A (identical in every variant): the WL master holds all
        // atoms (loaded from disk in the real app) and pack/sends each
        // instance's set to its privileged rank.
        let mut received: Vec<AtomData> = Vec::new();
        if me == t.wl_rank() {
            for inst in 0..t.instances {
                let dest = t.privileged_rank(inst);
                for a in 0..n {
                    let mut atom = AtomData::synthetic_fe(inst * n + a, sizes);
                    transfer_atom_original(ctx, &comms.world, 0, dest, &mut atom);
                }
            }
        } else if t.is_privileged(me) {
            for _ in 0..n {
                let mut atom = AtomData::new(sizes);
                transfer_atom_original(ctx, &comms.world, 0, me, &mut atom);
                received.push(atom);
            }
        }

        // Stage B: LIZ-internal distribution, the paper's rewritten path.
        let mut correct = true;
        if let (Some(lsms), Some(inst)) = (comms.lsms.clone(), comms.instance) {
            let local = lsms.rank(ctx);
            match variant {
                AtomCommVariant::Original => {
                    if local == 0 {
                        for w in 1..n {
                            transfer_atom_original(ctx, &lsms, 0, w, &mut received[w]);
                        }
                    } else {
                        let mut atom = AtomData::new(sizes);
                        transfer_atom_original(ctx, &lsms, 0, local, &mut atom);
                        correct = atom == AtomData::synthetic_fe(inst * n + local, sizes);
                    }
                }
                AtomCommVariant::DirectiveMpi2 | AtomCommVariant::DirectiveShmem => {
                    let target = if variant == AtomCommVariant::DirectiveMpi2 {
                        Target::Mpi2Side
                    } else {
                        Target::Shmem
                    };
                    let mut session = CommSession::new(ctx, lsms).without_ir();
                    let mut my_atom = AtomData::new(sizes);
                    for w in 1..n {
                        // SPMD: every LSMS rank executes every transfer.
                        let atom_ref: &mut AtomData = if local == 0 {
                            &mut received[w]
                        } else if local == w {
                            &mut my_atom
                        } else {
                            // Bystander placeholder of the same shape.
                            &mut my_atom
                        };
                        transfer_atom_directive(&mut session, 0, w, target, atom_ref)
                            .expect("directive transfer");
                    }
                    session.flush();
                    if local != 0 {
                        correct = my_atom == AtomData::synthetic_fe(inst * n + local, sizes);
                    }
                }
            }
            if local == 0 {
                // Privileged keeps atom 0 and verifies it.
                correct &= received[0] == AtomData::synthetic_fe(inst * n, sizes);
            }
        }
        (ctx.now(), correct)
    });
    let measurement = Measurement {
        nranks: topo.total_ranks(),
        time: res.makespan(),
        correct: res.per_rank.iter().all(|&(_, ok)| ok),
        stats: res.total_stats(),
    };
    let observed = observe.then(|| Observed {
        measurement,
        trace: res.trace.unwrap_or_default(),
        metrics: res.metrics.unwrap_or_default(),
        final_times: res.final_times,
    });
    (measurement, observed)
}

/// Fig. 4: average per-step time of the random-spin-configuration
/// communication (`setEvec`).
pub fn fig4_spin(topo: &Topology, variant: SpinVariant, steps: usize) -> Measurement {
    fig4_spin_exec(topo, variant, steps, ExecPolicy::default())
}

/// [`fig4_spin`] with an explicit execution engine. The measurement is
/// bit-identical for every [`ExecPolicy`].
pub fn fig4_spin_exec(
    topo: &Topology,
    variant: SpinVariant,
    steps: usize,
    exec: ExecPolicy,
) -> Measurement {
    fig4_spin_run(topo, variant, steps, exec, false, None).0
}

/// [`fig4_spin_exec`] with tracing and metrics enabled; the measurement is
/// unchanged by observation.
pub fn fig4_spin_observed(
    topo: &Topology,
    variant: SpinVariant,
    steps: usize,
    exec: ExecPolicy,
) -> Observed {
    fig4_spin_run(topo, variant, steps, exec, true, None)
        .1
        .expect("observed run captures trace")
}

/// [`fig4_spin_exec`] with a tuning overlay installed on the directive
/// session (commtune's decisions applied on the next run). The overlay has
/// no effect on the Original variants, which bypass the directive engine.
pub fn fig4_spin_tuned(
    topo: &Topology,
    variant: SpinVariant,
    steps: usize,
    exec: ExecPolicy,
    overlay: Option<&Overlay>,
) -> Measurement {
    fig4_spin_run(topo, variant, steps, exec, false, overlay.cloned()).0
}

/// [`fig4_spin_tuned`] with tracing and metrics enabled.
pub fn fig4_spin_tuned_observed(
    topo: &Topology,
    variant: SpinVariant,
    steps: usize,
    exec: ExecPolicy,
    overlay: Option<&Overlay>,
) -> Observed {
    fig4_spin_run(topo, variant, steps, exec, true, overlay.cloned())
        .1
        .expect("observed run captures trace")
}

fn fig4_spin_run(
    topo: &Topology,
    variant: SpinVariant,
    steps: usize,
    exec: ExecPolicy,
    observe: bool,
    overlay: Option<Overlay>,
) -> (Measurement, Option<Observed>) {
    let t = topo.clone();
    let mut cfg = SimConfig::new(t.total_ranks()).with_exec(exec);
    if observe {
        cfg = cfg.with_trace().with_metrics();
    }
    let res = run(cfg, move |ctx| {
        let comms = t.build_comms(ctx);
        let mut state = SpinState::new(&t, ctx.rank());
        let natoms = t.instances * t.ranks_per_lsms;
        let overlay = overlay.clone();
        let mut correct = true;
        // One warmup step (one-time staging/datatype setup), then a
        // clock-aligning barrier, then the measured steps — the paper's
        // numbers are steady-state main-loop iterations.
        let total_steps = steps as u64 + 1;
        let mut phase_start = Time::ZERO;
        match variant {
            SpinVariant::Original | SpinVariant::OriginalWaitall => {
                for step in 0..total_steps {
                    if ctx.rank() == t.wl_rank() {
                        state.ev = generate_spins(step, natoms);
                    }
                    set_evec_original(
                        ctx,
                        &t,
                        &comms,
                        &mut state,
                        variant == SpinVariant::OriginalWaitall,
                    );
                    correct &= check_spin(&t, ctx.rank(), step, &state);
                    if step == 0 {
                        let m = ctx.machine().mpi;
                        ctx.barrier(&m);
                        phase_start = ctx.now();
                    }
                }
            }
            SpinVariant::DirectiveMpi2 | SpinVariant::DirectiveShmem => {
                let target = if variant == SpinVariant::DirectiveMpi2 {
                    Target::Mpi2Side
                } else {
                    Target::Shmem
                };
                let mut session = CommSession::new(ctx, comms.world.clone()).without_ir();
                if let Some(ov) = overlay {
                    session = session.with_overlay(ov);
                }
                for step in 0..total_steps {
                    if session.ctx().rank() == t.wl_rank() {
                        state.ev = generate_spins(step, natoms);
                    }
                    set_evec_directive(&mut session, &t, &mut state, target, None)
                        .expect("directive setEvec");
                    correct &= check_spin(&t, session.ctx().rank(), step, &state);
                    if step == 0 {
                        session.flush();
                        let cx = session.ctx();
                        let m = cx.machine().mpi;
                        cx.barrier(&m);
                        phase_start = cx.now();
                    }
                }
                session.flush();
            }
        }
        (ctx.now() - phase_start, correct)
    });
    let phase = res
        .per_rank
        .iter()
        .map(|&(t, _)| t)
        .max()
        .unwrap_or(Time::ZERO);
    let measurement = Measurement {
        nranks: topo.total_ranks(),
        time: Time::from_nanos(phase.as_nanos() / steps as u64),
        correct: res.per_rank.iter().all(|&(_, ok)| ok),
        stats: res.total_stats(),
    };
    let observed = observe.then(|| Observed {
        measurement,
        trace: res.trace.unwrap_or_default(),
        metrics: res.metrics.unwrap_or_default(),
        final_times: res.final_times,
    });
    (measurement, observed)
}

fn check_spin(topo: &Topology, rank: usize, step: u64, state: &SpinState) -> bool {
    match topo.instance_of(rank) {
        None => true,
        Some(m) => {
            let local = rank - topo.privileged_rank(m);
            state.my_spin == spin_at(step, m * topo.ranks_per_lsms + local)
        }
    }
}

/// Fig. 5: per-step time of spin communication + first core-state slice
/// under the 10x GPU computation projection. `directive=false` is the
/// original communication followed by (non-overlapped) computation;
/// `directive=true` overlaps the computation with the directive
/// communication (Listing 7).
pub fn fig5_overlap(
    topo: &Topology,
    directive: bool,
    cparams: CoreStateParams,
    sizes: AtomSizes,
    steps: usize,
) -> Measurement {
    fig5_overlap_exec(
        topo,
        directive,
        cparams,
        sizes,
        steps,
        ExecPolicy::default(),
    )
}

/// [`fig5_overlap`] with an explicit execution engine. The measurement is
/// bit-identical for every [`ExecPolicy`].
pub fn fig5_overlap_exec(
    topo: &Topology,
    directive: bool,
    cparams: CoreStateParams,
    sizes: AtomSizes,
    steps: usize,
    exec: ExecPolicy,
) -> Measurement {
    fig5_overlap_run(topo, directive, cparams, sizes, steps, exec, false).0
}

/// [`fig5_overlap_exec`] with tracing and metrics enabled; the measurement
/// is unchanged by observation.
pub fn fig5_overlap_observed(
    topo: &Topology,
    directive: bool,
    cparams: CoreStateParams,
    sizes: AtomSizes,
    steps: usize,
    exec: ExecPolicy,
) -> Observed {
    fig5_overlap_run(topo, directive, cparams, sizes, steps, exec, true)
        .1
        .expect("observed run captures trace")
}

#[allow(clippy::too_many_arguments)]
fn fig5_overlap_run(
    topo: &Topology,
    directive: bool,
    cparams: CoreStateParams,
    sizes: AtomSizes,
    steps: usize,
    exec: ExecPolicy,
    observe: bool,
) -> (Measurement, Option<Observed>) {
    let t = topo.clone();
    let mut cfg = SimConfig::new(t.total_ranks()).with_exec(exec);
    if observe {
        cfg = cfg.with_trace().with_metrics();
    }
    let res = run(cfg, move |ctx| {
        let comms = t.build_comms(ctx);
        let mut state = SpinState::new(&t, ctx.rank());
        let natoms = t.instances * t.ranks_per_lsms;
        let my_atom_id = t
            .instance_of(ctx.rank())
            .map(|m| m * t.ranks_per_lsms + (ctx.rank() - t.privileged_rank(m)));
        let atom = my_atom_id.map(|id| AtomData::synthetic_fe(id, sizes));

        if directive {
            let mut session = CommSession::new(ctx, comms.world.clone()).without_ir();
            for step in 0..steps as u64 {
                if session.ctx().rank() == t.wl_rank() {
                    state.ev = generate_spins(step, natoms);
                }
                let overlap = atom.as_ref().map(|a| (a, &cparams));
                set_evec_directive(&mut session, &t, &mut state, Target::Mpi2Side, overlap)
                    .expect("directive setEvec w/ overlap");
            }
            session.flush();
        } else {
            for step in 0..steps as u64 {
                if ctx.rank() == t.wl_rank() {
                    state.ev = generate_spins(step, natoms);
                }
                set_evec_original(ctx, &t, &comms, &mut state, false);
                if let Some(a) = &atom {
                    // Computation after the communication completes.
                    calculate_core_states(ctx, a, &cparams);
                }
            }
        }
        ctx.now()
    });
    let measurement = Measurement {
        nranks: topo.total_ranks(),
        time: Time::from_nanos(res.makespan().as_nanos() / steps as u64),
        correct: true,
        stats: res.total_stats(),
    };
    let observed = observe.then(|| Observed {
        measurement,
        trace: res.trace.unwrap_or_default(),
        metrics: res.metrics.unwrap_or_default(),
        final_times: res.final_times,
    });
    (measurement, observed)
}

/// Result of the assembled mini-app.
#[derive(Clone, Debug)]
pub struct AppResult {
    /// Energy trajectory per step (walker 0, as recorded by the WL master).
    pub energies: Vec<f64>,
    /// Wang–Landau stages completed (ln f halvings).
    pub wl_stages: usize,
    /// Virtual makespan of the whole run.
    pub time: Time,
}

/// Run the assembled WL-LSMS mini-app for `steps` Wang–Landau steps with
/// the given spin-communication variant. The physics (energies, acceptance
/// decisions) must be bit-identical across variants — only the virtual time
/// differs.
#[allow(clippy::needless_range_loop)] // worker loops index rank-shaped arrays
pub fn run_full_app(
    topo: &Topology,
    variant: SpinVariant,
    sizes: AtomSizes,
    steps: usize,
) -> AppResult {
    let t = topo.clone();
    let res = run(SimConfig::new(t.total_ranks()), move |ctx| {
        let comms = t.build_comms(ctx);
        let n = t.ranks_per_lsms;
        let natoms = t.instances * n;
        let me = ctx.rank();

        // -- one-time atom distribution (original path; Fig. 3 covers the
        //    variants there) ---------------------------------------------
        let mut my_atom = AtomData::new(sizes);
        let mut staged_atoms: Vec<AtomData> = Vec::new();
        if me == t.wl_rank() {
            for inst in 0..t.instances {
                let dest = t.privileged_rank(inst);
                for a in 0..n {
                    let mut atom = AtomData::synthetic_fe(inst * n + a, sizes);
                    transfer_atom_original(ctx, &comms.world, 0, dest, &mut atom);
                }
            }
        } else if t.is_privileged(me) {
            for _ in 0..n {
                let mut atom = AtomData::new(sizes);
                transfer_atom_original(ctx, &comms.world, 0, me, &mut atom);
                staged_atoms.push(atom);
            }
        }
        if let Some(lsms) = &comms.lsms {
            let local = lsms.rank(ctx);
            if local == 0 {
                for w in 1..n {
                    transfer_atom_original(ctx, lsms, 0, w, &mut staged_atoms[w]);
                }
                my_atom = staged_atoms[0].clone();
            } else {
                transfer_atom_original(ctx, lsms, 0, local, &mut my_atom);
            }
        }

        // -- Wang–Landau main loop ----------------------------------------
        let cparams = CoreStateParams {
            base_ns_per_atom: 20_000,
            speedup: 1.0,
            iterations: 2,
        };
        let mut wl = (me == t.wl_rank())
            .then(|| WangLandau::new(-(n as f64) * 1.5, (n as f64) * 1.5, 48, 12345));
        let mut state = SpinState::new(&t, me);
        let mut energies = Vec::new();
        let mut current_e = vec![f64::INFINITY; t.instances];
        let mut stages = 0usize;

        // A session is created regardless of variant (the original paths
        // just reach the raw context through it), keeping one borrow of the
        // rank context alive for the whole loop.
        let mut session = CommSession::new(ctx, comms.world.clone()).without_ir();

        for step in 0..steps as u64 {
            // Propose: fresh random spins for every walker.
            if me == t.wl_rank() {
                state.ev = generate_spins(step, natoms);
            }
            match variant {
                SpinVariant::Original => {
                    set_evec_original(session.ctx(), &t, &comms, &mut state, false)
                }
                SpinVariant::OriginalWaitall => {
                    set_evec_original(session.ctx(), &t, &comms, &mut state, true)
                }
                SpinVariant::DirectiveMpi2 => {
                    set_evec_directive(&mut session, &t, &mut state, Target::Mpi2Side, None)
                        .expect("setEvec");
                }
                SpinVariant::DirectiveShmem => {
                    set_evec_directive(&mut session, &t, &mut state, Target::Shmem, None)
                        .expect("setEvec");
                }
            }

            // LSMS energy evaluation: workers compute their core-state
            // slice; the privileged rank adds the Heisenberg term of the
            // staged configuration and reduces.
            let ctx_ref: &mut netsim::RankCtx = session.ctx();
            if let Some(lsms) = &comms.lsms {
                let mut atom_now = my_atom.clone();
                atom_now.scalars.evec = state.my_spin;
                let core_e = calculate_core_states(ctx_ref, &atom_now, &cparams) * 1e-4;
                let mut contributions = vec![0.0f64; lsms.size()];
                mpisim::coll::gather(
                    ctx_ref,
                    lsms,
                    0,
                    &[core_e],
                    &mut contributions[..if lsms.rank(ctx_ref) == 0 {
                        lsms.size()
                    } else {
                        0
                    }],
                );
                if lsms.rank(ctx_ref) == 0 {
                    let spins: Vec<[f64; 3]> = state.staged.clone();
                    let e = heisenberg_ring_energy(&spins, 1.0) + contributions.iter().sum::<f64>();
                    comms.world.send_slice(ctx_ref, t.wl_rank(), 900, &[e]);
                }
            } else {
                // WL master: collect each walker's energy, do the WL update.
                let wl_state = wl.as_mut().expect("WL master state");
                for inst in 0..t.instances {
                    let src = t.privileged_rank(inst);
                    let mut e = [0.0f64];
                    comms.world.recv_into(ctx_ref, Some(src), Some(900), &mut e);
                    let e = e[0];
                    let accepted =
                        current_e[inst].is_infinite() || wl_state.accept(current_e[inst], e);
                    if accepted {
                        current_e[inst] = e;
                    }
                    if wl_state.step(current_e[inst]) {
                        stages += 1;
                    }
                    if inst == 0 {
                        energies.push(current_e[0]);
                    }
                }
            }
        }
        session.finish();
        (energies, stages, ctx.now())
    });
    let (energies, stages, _) = res.per_rank[0].clone();
    AppResult {
        energies,
        wl_stages: stages,
        time: res.makespan(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sizes() -> AtomSizes {
        AtomSizes { jmt: 24, numc: 4 }
    }

    #[test]
    fn fig3_all_variants_correct_small() {
        let topo = Topology::new(2, 3);
        for v in [
            AtomCommVariant::Original,
            AtomCommVariant::DirectiveMpi2,
            AtomCommVariant::DirectiveShmem,
        ] {
            let m = fig3_single_atom(&topo, v, small_sizes());
            assert!(m.correct, "variant {v:?} delivered wrong data");
            assert!(m.time > Time::ZERO);
        }
    }

    #[test]
    fn fig3_directive_comparable_to_original() {
        let topo = Topology::new(2, 4);
        let orig = fig3_single_atom(&topo, AtomCommVariant::Original, AtomSizes::default());
        let mpi = fig3_single_atom(&topo, AtomCommVariant::DirectiveMpi2, AtomSizes::default());
        let shm = fig3_single_atom(&topo, AtomCommVariant::DirectiveShmem, AtomSizes::default());
        for (label, m) in [("mpi", &mpi), ("shmem", &shm)] {
            let ratio = orig.time.as_nanos() as f64 / m.time.as_nanos() as f64;
            assert!(
                (0.7..4.0).contains(&ratio),
                "{label} not comparable: orig={} dir={}",
                orig.time,
                m.time
            );
        }
    }

    #[test]
    fn fig4_speedup_ordering() {
        // The qualitative Fig. 4 result: original (wait loop) slowest;
        // waitall faster; directive MPI faster still; directive SHMEM much
        // faster.
        let topo = Topology::new(4, 8);
        let t = |v| fig4_spin(&topo, v, 3);
        let orig = t(SpinVariant::Original);
        let wall = t(SpinVariant::OriginalWaitall);
        let mpi = t(SpinVariant::DirectiveMpi2);
        let shm = t(SpinVariant::DirectiveShmem);
        assert!(orig.correct && wall.correct && mpi.correct && shm.correct);
        assert!(
            wall.time < orig.time,
            "waitall {} !< original {}",
            wall.time,
            orig.time
        );
        assert!(
            mpi.time < orig.time,
            "directive MPI {} !< original {}",
            mpi.time,
            orig.time
        );
        assert!(
            shm.time < mpi.time,
            "directive SHMEM {} !< directive MPI {}",
            shm.time,
            mpi.time
        );
    }

    #[test]
    fn fig5_overlap_beats_sequential() {
        let topo = Topology::new(2, 4);
        let cparams = CoreStateParams {
            base_ns_per_atom: 200_000,
            speedup: 10.0,
            iterations: 2,
        };
        let orig = fig5_overlap(&topo, false, cparams, small_sizes(), 2);
        let dir = fig5_overlap(&topo, true, cparams, small_sizes(), 2);
        assert!(
            dir.time < orig.time,
            "overlap {} must beat sequential {}",
            dir.time,
            orig.time
        );
    }

    #[test]
    fn observation_does_not_change_the_measurement() {
        let topo = Topology::new(2, 3);
        for v in [SpinVariant::DirectiveMpi2, SpinVariant::DirectiveShmem] {
            let plain = fig4_spin(&topo, v, 2);
            let obs = fig4_spin_observed(&topo, v, 2, ExecPolicy::default());
            assert_eq!(plain.time, obs.measurement.time, "{v:?}");
            assert!(obs.measurement.correct);
            assert!(!obs.trace.is_empty());
            assert_eq!(obs.metrics.len(), topo.total_ranks());
            assert_eq!(obs.final_times.len(), topo.total_ranks());
            // Directive-issued operations carry their call site.
            assert!(
                obs.trace.iter().any(|e| e.site.is_some()),
                "{v:?}: no site-tagged events"
            );
        }
    }

    #[test]
    fn full_app_physics_identical_across_variants() {
        let topo = Topology::new(2, 3);
        let steps = 4;
        let base = run_full_app(&topo, SpinVariant::Original, small_sizes(), steps);
        assert_eq!(base.energies.len(), steps);
        assert!(base.energies.iter().all(|e| e.is_finite()));
        for v in [
            SpinVariant::OriginalWaitall,
            SpinVariant::DirectiveMpi2,
            SpinVariant::DirectiveShmem,
        ] {
            let other = run_full_app(&topo, v, small_sizes(), steps);
            assert_eq!(
                base.energies, other.energies,
                "variant {v:?} changed the physics"
            );
        }
    }
}
