//! WL-LSMS process topology (paper Figures 1 and 2): one Wang–Landau
//! master, `M` LSMS instances of `N` ranks each; rank 0 of each instance is
//! the *privileged* process relaying between the WL master and the local
//! interaction zone (LIZ).
//!
//! The paper's experiments use 16 iron atoms per LSMS instance with one
//! rank per atom, so total ranks sweep 33, 49, …, 337 = `1 + 16·M`,
//! `M = 2…21`.

use mpisim::Comm;
use netsim::RankCtx;

/// Number of atoms (and ranks) per LSMS instance in the paper's runs.
pub const ATOMS_PER_LSMS: usize = 16;

/// The process layout of a WL-LSMS job.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Ranks per LSMS instance.
    pub ranks_per_lsms: usize,
    /// Number of LSMS instances.
    pub instances: usize,
}

impl Topology {
    /// Layout for a total rank count of `1 + instances * ranks_per_lsms`.
    pub fn new(instances: usize, ranks_per_lsms: usize) -> Self {
        assert!(instances > 0 && ranks_per_lsms > 0);
        Topology {
            ranks_per_lsms,
            instances,
        }
    }

    /// The paper's sweep point with `m` LSMS instances of 16 ranks.
    pub fn paper(m: usize) -> Self {
        Topology::new(m, ATOMS_PER_LSMS)
    }

    /// The paper's x-axis: total ranks for `m = 2..=21`.
    pub fn paper_sweep() -> Vec<Topology> {
        (2..=21).map(Topology::paper).collect()
    }

    /// Total ranks (WL master + instances).
    pub fn total_ranks(&self) -> usize {
        1 + self.instances * self.ranks_per_lsms
    }

    /// The WL master's global rank.
    pub fn wl_rank(&self) -> usize {
        0
    }

    /// Global rank of the privileged process of `instance`.
    pub fn privileged_rank(&self, instance: usize) -> usize {
        1 + instance * self.ranks_per_lsms
    }

    /// Global ranks of `instance`'s members, privileged first.
    pub fn instance_ranks(&self, instance: usize) -> Vec<usize> {
        let base = self.privileged_rank(instance);
        (base..base + self.ranks_per_lsms).collect()
    }

    /// Which instance a global rank belongs to (`None` for the WL master).
    pub fn instance_of(&self, rank: usize) -> Option<usize> {
        if rank == 0 {
            None
        } else {
            let idx = (rank - 1) / self.ranks_per_lsms;
            (idx < self.instances).then_some(idx)
        }
    }

    /// Whether `rank` is a privileged process.
    pub fn is_privileged(&self, rank: usize) -> bool {
        rank != 0 && (rank - 1).is_multiple_of(self.ranks_per_lsms)
    }

    /// Build this rank's communicators: the world plus (for LSMS members)
    /// the instance communicator with local rank 0 = privileged.
    pub fn build_comms(&self, ctx: &RankCtx) -> Comms {
        let world = Comm::world(ctx);
        assert_eq!(
            world.size(),
            self.total_ranks(),
            "simulation rank count does not match topology"
        );
        let my_instance = self.instance_of(ctx.rank());
        let lsms = my_instance.map(|i| {
            let members = self.instance_ranks(i);
            // Communicator ids must be unique per instance.
            world.subset(1 + i as i32, &members)
        });
        Comms {
            world,
            lsms,
            instance: my_instance,
        }
    }
}

/// The communicators visible to one rank.
#[derive(Clone, Debug)]
pub struct Comms {
    /// All ranks.
    pub world: Comm,
    /// This rank's LSMS instance communicator (None on the WL master).
    pub lsms: Option<Comm>,
    /// This rank's instance index (None on the WL master).
    pub instance: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{run, SimConfig};

    #[test]
    fn paper_sweep_matches_figure_axis() {
        let sweep = Topology::paper_sweep();
        assert_eq!(sweep.len(), 20);
        let totals: Vec<usize> = sweep.iter().map(|t| t.total_ranks()).collect();
        assert_eq!(totals[0], 33);
        assert_eq!(totals[1], 49);
        assert_eq!(*totals.last().unwrap(), 337);
        assert!(totals.windows(2).all(|w| w[1] - w[0] == 16));
    }

    #[test]
    fn rank_mapping() {
        let t = Topology::paper(3); // 49 ranks
        assert_eq!(t.total_ranks(), 49);
        assert_eq!(t.wl_rank(), 0);
        assert_eq!(t.privileged_rank(0), 1);
        assert_eq!(t.privileged_rank(2), 33);
        assert_eq!(t.instance_of(0), None);
        assert_eq!(t.instance_of(1), Some(0));
        assert_eq!(t.instance_of(16), Some(0));
        assert_eq!(t.instance_of(17), Some(1));
        assert!(t.is_privileged(1));
        assert!(t.is_privileged(17));
        assert!(!t.is_privileged(2));
        assert_eq!(t.instance_ranks(1), (17..33).collect::<Vec<_>>());
    }

    #[test]
    fn comms_build_and_route() {
        let topo = Topology::new(2, 4); // 9 ranks
        let res = run(SimConfig::new(topo.total_ranks()), move |ctx| {
            let comms = topo.build_comms(ctx);
            match comms.lsms {
                None => {
                    assert_eq!(ctx.rank(), 0);
                    (None, None)
                }
                Some(lsms) => {
                    let local = lsms.rank(ctx);
                    // Privileged has local rank 0.
                    if topo.is_privileged(ctx.rank()) {
                        assert_eq!(local, 0);
                    }
                    (comms.instance, Some(local))
                }
            }
        });
        assert_eq!(res.per_rank[0], (None, None));
        assert_eq!(res.per_rank[1], (Some(0), Some(0)));
        assert_eq!(res.per_rank[4], (Some(0), Some(3)));
        assert_eq!(res.per_rank[5], (Some(1), Some(0)));
        assert_eq!(res.per_rank[8], (Some(1), Some(3)));
    }
}
