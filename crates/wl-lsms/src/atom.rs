//! Per-atom data: the exact payload of the paper's Listing 4.
//!
//! The original code packs 14 scalars (`local_id`, `jmt`, `jws`, `xstart`,
//! `rmt`, `header[80]`, `alat`, `efermi`, `vdif`, `ztotss`, `zcorss`,
//! `evec[3]`, `nspin`, `numc`), then the potential/density matrices
//! (`vr`, `rhotot`: `2*t` doubles each with `t = vr.n_row()`), then the
//! core-state matrices (`ec`: `2*t` doubles; `nc`, `lc`, `kc`: `2*t` ints
//! with `t = ec.n_row()`).
//!
//! The directive version (Listing 5) groups the scalars into a single
//! composite — [`AtomScalars`], declared with `comm_datatype!` so the MPI
//! struct type is generated automatically — and ships the matrices as two
//! grouped buffer lists.

use commint::comm_datatype;

use crate::matrix::Matrix;

comm_datatype! {
    /// The scalar members of the single-atom data, grouped into one
    /// composite ("we organized the scalar data into a single structure") —
    /// the directive's automatic data-type handling builds the MPI struct
    /// from this layout.
    pub struct AtomScalars {
        pub local_id: i32,
        pub jmt: i32,
        pub jws: i32,
        pub xstart: f64,
        pub rmt: f64,
        pub header: [u8; 80],
        pub alat: f64,
        pub efermi: f64,
        pub vdif: f64,
        pub ztotss: f64,
        pub zcorss: f64,
        pub evec: [f64; 3],
        pub nspin: i32,
        pub numc: i32,
    }
}

impl Default for AtomScalars {
    fn default() -> Self {
        AtomScalars {
            local_id: 0,
            jmt: 0,
            jws: 0,
            xstart: 0.0,
            rmt: 0.0,
            header: [0u8; 80],
            alat: 0.0,
            efermi: 0.0,
            vdif: 0.0,
            ztotss: 0.0,
            zcorss: 0.0,
            evec: [0.0; 3],
            nspin: 0,
            numc: 0,
        }
    }
}

/// Full single-atom data: scalars plus the potential / density / core-state
/// matrices.
#[derive(Clone, Debug, PartialEq)]
pub struct AtomData {
    /// The scalar block.
    pub scalars: AtomScalars,
    /// Potential, `jmt x 2` (spin up/down), column-major.
    pub vr: Matrix<f64>,
    /// Total charge density, same shape as `vr`.
    pub rhotot: Matrix<f64>,
    /// Core-state energies, `numc x 2`.
    pub ec: Matrix<f64>,
    /// Core-state principal quantum numbers, `numc x 2`.
    pub nc: Matrix<i32>,
    /// Core-state angular momenta, `numc x 2`.
    pub lc: Matrix<i32>,
    /// Core-state kappa numbers, `numc x 2`.
    pub kc: Matrix<i32>,
}

/// Mesh/core sizes used to build atoms (defaults match a realistic LSMS
/// iron atom: ~1000 radial points, ~15 core states).
#[derive(Clone, Copy, Debug)]
pub struct AtomSizes {
    /// Radial mesh points (`jmt`).
    pub jmt: usize,
    /// Number of core states (`numc`).
    pub numc: usize,
}

impl Default for AtomSizes {
    fn default() -> Self {
        AtomSizes {
            jmt: 1000,
            numc: 15,
        }
    }
}

impl AtomData {
    /// An empty atom with the given mesh sizes.
    pub fn new(sizes: AtomSizes) -> Self {
        AtomData {
            scalars: AtomScalars {
                jmt: sizes.jmt as i32,
                jws: sizes.jmt as i32,
                numc: sizes.numc as i32,
                nspin: 2,
                ..AtomScalars::default()
            },
            vr: Matrix::new(sizes.jmt, 2),
            rhotot: Matrix::new(sizes.jmt, 2),
            ec: Matrix::new(sizes.numc, 2),
            nc: Matrix::new(sizes.numc, 2),
            lc: Matrix::new(sizes.numc, 2),
            kc: Matrix::new(sizes.numc, 2),
        }
    }

    /// Deterministic synthetic iron-like atom `id` (the experiments use 16
    /// iron atoms; values are reproducible functions of `id`).
    pub fn synthetic_fe(id: usize, sizes: AtomSizes) -> Self {
        let mut atom = AtomData::new(sizes);
        let s = &mut atom.scalars;
        s.local_id = id as i32;
        s.xstart = -11.13096;
        s.rmt = 2.2677 + id as f64 * 1e-4;
        s.alat = 5.42;
        s.efermi = 0.7219;
        s.vdif = 0.0;
        s.ztotss = 26.0; // iron
        s.zcorss = 18.0;
        s.evec = [0.0, 0.0, 1.0];
        let hdr = format!("Fe atom {id:03} WL-LSMS synthetic potential");
        s.header[..hdr.len().min(80)].copy_from_slice(&hdr.as_bytes()[..hdr.len().min(80)]);

        let jmt = sizes.jmt as f64;
        atom.vr.fill_with(|r, c| {
            let x = (r + 1) as f64 / jmt;
            -2.0 * 26.0 * (-x).exp() / x + c as f64 * 0.01 + id as f64 * 1e-3
        });
        atom.rhotot.fill_with(|r, c| {
            ((r + 1) as f64 / jmt).powi(2) * (26.0 - c as f64) + id as f64 * 1e-3
        });
        atom.ec
            .fill_with(|r, c| -(2.0 * (r + 1) as f64) + 0.1 * c as f64 + id as f64 * 1e-3);
        atom.nc.fill_with(|r, _| (r / 4 + 1) as i32);
        atom.lc.fill_with(|r, _| (r % 4) as i32);
        atom.kc
            .fill_with(|r, c| if c == 0 { -(r as i32) - 1 } else { r as i32 });
        atom
    }

    /// Total communicated payload in bytes (scalars packed + matrices), as
    /// shipped by either communication path.
    pub fn payload_bytes(&self) -> usize {
        use commint::buffer::Described;
        let t_pot = self.vr.n_row();
        let t_core = self.ec.n_row();
        AtomScalars::layout().packed_size()
            + 2 * (2 * t_pot) * 8 // vr + rhotot
            + (2 * t_core) * 8 // ec
            + 3 * (2 * t_core) * 4 // nc, lc, kc
    }

    /// Grow the potential/density matrices (the original's
    /// `resizePotential(t+50)` on the receive side).
    pub fn resize_potential(&mut self, rows: usize) {
        self.vr.resize(rows, 2);
        self.rhotot.resize(rows, 2);
    }

    /// Grow the core-state matrices (`resizeCore(t)`).
    pub fn resize_core(&mut self, rows: usize) {
        self.ec.resize(rows, 2);
        self.nc.resize(rows, 2);
        self.lc.resize(rows, 2);
        self.kc.resize(rows, 2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commint::buffer::Described;

    #[test]
    fn scalar_layout_matches_listing4() {
        let layout = AtomScalars::layout();
        // 14 packed items in Listing 4 (local_id..numc).
        assert_eq!(layout.fields.len(), 14);
        let names: Vec<&str> = layout.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "local_id", "jmt", "jws", "xstart", "rmt", "header", "alat", "efermi", "vdif",
                "ztotss", "zcorss", "evec", "nspin", "numc"
            ]
        );
        // header is an 80-char block, evec three doubles.
        assert_eq!(layout.fields[5].blocklen, 80);
        assert_eq!(layout.fields[11].blocklen, 3);
        // Packed size: 5 ints + 7 doubles + 80 chars + 3 doubles.
        assert_eq!(layout.packed_size(), 5 * 4 + 7 * 8 + 80 + 3 * 8);
    }

    #[test]
    fn synthetic_atoms_deterministic_and_distinct() {
        let a = AtomData::synthetic_fe(3, AtomSizes::default());
        let b = AtomData::synthetic_fe(3, AtomSizes::default());
        let c = AtomData::synthetic_fe(4, AtomSizes::default());
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.scalars.ztotss, 26.0);
        assert!(String::from_utf8_lossy(&a.scalars.header).contains("Fe atom 003"));
    }

    #[test]
    fn payload_size_realistic() {
        let atom = AtomData::synthetic_fe(0, AtomSizes::default());
        let bytes = atom.payload_bytes();
        // ~32KB of potential data dominates.
        assert!(bytes > 32_000 && bytes < 40_000, "got {bytes}");
    }

    #[test]
    fn resize_paths() {
        let mut atom = AtomData::new(AtomSizes { jmt: 10, numc: 4 });
        atom.resize_potential(60);
        assert_eq!(atom.vr.n_row(), 60);
        assert_eq!(atom.rhotot.n_row(), 60);
        atom.resize_core(8);
        assert_eq!(atom.ec.n_row(), 8);
        assert_eq!(atom.kc.n_row(), 8);
    }
}
