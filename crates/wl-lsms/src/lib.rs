//! # wl-lsms — the paper's case-study application, reproduced
//!
//! A mini-app faithful to the communication structure of WL-LSMS
//! (Wang–Landau + Locally Self-consistent Multiple Scattering, Eisenbach et
//! al., SC'09), the application the paper rewrites with communication
//! directives:
//!
//! * [`topology`] — 1 WL master + M LSMS instances × N ranks, privileged
//!   relays, LIZ structure (paper Figs. 1–2);
//! * [`atom`] — the exact single-atom payload of Listing 4 (14 scalars +
//!   potential/density/core-state matrices), with the scalars grouped into
//!   a `comm_datatype!` composite as in Listing 5;
//! * [`atom_comm`] — the original `MPI_Pack` path (Listing 4) and the
//!   directive region (Listing 5), side by side;
//! * [`spin`] — `setEvec`: Listing 6's Isend/Wait-loop original, the
//!   Waitall-modified variant, and Listing 7's directive version with
//!   communication/computation overlap;
//! * [`core_states`] — the `calculateCoreStates` kernel with the 19:1
//!   compute:comm ratio and the 10x GPU projection;
//! * [`wang_landau`] — the WL density-of-states driver;
//! * [`experiments`] — the assembled Fig. 3 / Fig. 4 / Fig. 5 measurements
//!   and the full-app equivalence harness.

pub mod atom;
pub mod atom_comm;
pub mod core_states;
pub mod experiments;
pub mod matrix;
pub mod spin;
pub mod topology;
pub mod wang_landau;

pub use atom::{AtomData, AtomScalars, AtomSizes};
pub use core_states::CoreStateParams;
pub use experiments::{
    fig3_single_atom, fig3_single_atom_exec, fig3_single_atom_observed, fig4_spin, fig4_spin_exec,
    fig4_spin_observed, fig4_spin_tuned, fig4_spin_tuned_observed, fig5_overlap, fig5_overlap_exec,
    fig5_overlap_observed, run_full_app, AtomCommVariant, Measurement, Observed,
};
pub use spin::{SpinState, SpinVariant};
pub use topology::Topology;
pub use wang_landau::WangLandau;
