//! `setEvec`: distribution of random spin configurations — the paper's
//! second case study (Figs. 4 and 5).
//!
//! Per Wang–Landau step, the WL master generates one spin direction (three
//! doubles) per atom per LSMS instance and distributes them in two hops:
//! WL → privileged (one 24-byte message per atom, Listing 6's
//! `MPI_Isend(&ev[3*p], 3, MPI_DOUBLE, n, p, ...)` granularity), then
//! privileged → owning worker within each LIZ.
//!
//! Variants measured by Figure 4:
//! * [`SpinVariant::Original`] — Listing 6: non-blocking sends/receives
//!   completed by a **loop of `MPI_Wait`** calls;
//! * [`SpinVariant::OriginalWaitall`] — the paper's validation experiment:
//!   "we changed the synchronization in the original communication to an
//!   MPI_Waitall for each loop" (≈2.6x);
//! * [`SpinVariant::DirectiveMpi2`] / [`SpinVariant::DirectiveShmem`] —
//!   Listing 7: one `comm_parameters` region per hop with consolidated
//!   sync (`place_sync(END_PARAM_REGION)`, `max_comm_iter`), retargetable,
//!   optionally overlapping `calculateCoreStates` (Figure 5).

use commint::buffer::{Prim, PrimMut};
use commint::{CommParams, CommSession, DirectiveError, RankExpr, Target};
use netsim::RankCtx;

use crate::atom::AtomData;
use crate::core_states::{calculate_core_states, CoreStateParams};
use crate::topology::{Comms, Topology};

/// Which implementation of `setEvec` to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpinVariant {
    /// Listing 6: Isend/Irecv + per-request `MPI_Wait` loops.
    Original,
    /// Original sends with `MPI_Waitall` per loop (the paper's 2.6x
    /// validation variant).
    OriginalWaitall,
    /// Directive translation, MPI two-sided target.
    DirectiveMpi2,
    /// Directive translation, SHMEM target.
    DirectiveShmem,
}

impl SpinVariant {
    /// Display label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            SpinVariant::Original => "Original Communication",
            SpinVariant::OriginalWaitall => "Original + Waitall",
            SpinVariant::DirectiveMpi2 => "MPI Target w/ Directive Communication",
            SpinVariant::DirectiveShmem => "SHMEM Target w/ Directive Communication",
        }
    }
}

/// Per-rank spin-step state.
#[derive(Clone, Debug, Default)]
pub struct SpinState {
    /// WL master only: spin per (instance, atom), flattened
    /// `instance * atoms + atom`.
    pub ev: Vec<[f64; 3]>,
    /// Privileged only: staged spins for this instance (len = atoms).
    pub staged: Vec<[f64; 3]>,
    /// Every LSMS rank: this rank's atom spin after the step.
    pub my_spin: [f64; 3],
}

impl SpinState {
    /// Initialize for a rank of `topo`: the WL master gets `ev` slots,
    /// privileged ranks get staging.
    pub fn new(topo: &Topology, global_rank: usize) -> Self {
        let mut s = SpinState::default();
        if global_rank == topo.wl_rank() {
            s.ev = vec![[0.0; 3]; topo.instances * topo.ranks_per_lsms];
        }
        if topo.is_privileged(global_rank) {
            s.staged = vec![[0.0; 3]; topo.ranks_per_lsms];
        }
        s
    }
}

/// Tags for the original path (stage-1 uses the atom index, like Listing 6;
/// stage-2 the worker index).
const SPIN_TAG_BASE: i32 = 300;

/// Listing 6 path. `waitall` selects the paper's Waitall-modified variant.
pub fn set_evec_original(
    ctx: &mut RankCtx,
    topo: &Topology,
    comms: &Comms,
    state: &mut SpinState,
    waitall: bool,
) {
    let world = &comms.world;
    let n = topo.ranks_per_lsms;
    let me = ctx.rank();

    if me == topo.wl_rank() {
        // WL: one Isend per (instance, atom), then the completion loop.
        let mut reqs = Vec::with_capacity(topo.instances * n);
        for m in 0..topo.instances {
            let dest = topo.privileged_rank(m);
            for p in 0..n {
                let spin = state.ev[m * n + p];
                reqs.push(world.isend_slice(ctx, dest, SPIN_TAG_BASE + p as i32, &spin));
            }
        }
        if waitall {
            world.waitall(ctx, &reqs, &[]);
        } else {
            for r in &reqs {
                world.wait_send(ctx, r);
            }
        }
    } else if topo.is_privileged(me) {
        // Stage 1: receive my instance's spins from WL.
        let mut reqs = Vec::with_capacity(n);
        for p in 0..n {
            reqs.push(world.irecv(ctx, Some(topo.wl_rank()), Some(SPIN_TAG_BASE + p as i32)));
        }
        if waitall {
            let outs = world.waitall(ctx, &[], &reqs);
            for (p, out) in outs.iter().enumerate() {
                state.staged[p] = [
                    f64::from_ne_bytes(out.data[0..8].try_into().expect("8 bytes")),
                    f64::from_ne_bytes(out.data[8..16].try_into().expect("8 bytes")),
                    f64::from_ne_bytes(out.data[16..24].try_into().expect("8 bytes")),
                ];
            }
        } else {
            for (p, r) in reqs.iter().enumerate() {
                let out = world.wait_recv(ctx, r);
                let v: Vec<f64> = out.to_vec();
                state.staged[p] = [v[0], v[1], v[2]];
            }
        }
        state.my_spin = state.staged[0];
        // Stage 2: relay to the owning workers within the LIZ.
        let lsms = comms.lsms.as_ref().expect("privileged is an LSMS member");
        let mut reqs = Vec::with_capacity(n - 1);
        for w in 1..n {
            let spin = state.staged[w];
            reqs.push(lsms.isend_slice(ctx, w, SPIN_TAG_BASE + w as i32, &spin));
        }
        if waitall {
            lsms.waitall(ctx, &reqs, &[]);
        } else {
            for r in &reqs {
                lsms.wait_send(ctx, r);
            }
        }
    } else {
        // Worker: num_local = 1 receive, then the (length-1) wait loop.
        let lsms = comms.lsms.as_ref().expect("worker is an LSMS member");
        let w = lsms.rank(ctx);
        let req = lsms.irecv(ctx, Some(0), Some(SPIN_TAG_BASE + w as i32));
        let out = if waitall {
            lsms.waitall(ctx, &[], std::slice::from_ref(&req))
                .pop()
                .expect("one receive")
        } else {
            lsms.wait_recv(ctx, &req)
        };
        let v: Vec<f64> = out.to_vec();
        state.my_spin = [v[0], v[1], v[2]];
    }
}

/// Listing 7 path: two directive regions over the world session (WL →
/// privileged, privileged → worker), consolidated synchronization, optional
/// overlapped `calculateCoreStates` (Figure 5's configuration). Returns the
/// overlapped core-energy result when computed.
#[allow(clippy::needless_range_loop)] // worker loops index rank-shaped arrays
pub fn set_evec_directive(
    session: &mut CommSession<'_>,
    topo: &Topology,
    state: &mut SpinState,
    target: Target,
    overlap: Option<(&AtomData, &CoreStateParams)>,
) -> Result<Option<f64>, DirectiveError> {
    let n = topo.ranks_per_lsms;
    let m_cnt = topo.instances;
    let me = session.ctx().rank();
    let is_wl = me == topo.wl_rank();
    let is_priv = topo.is_privileged(me);

    let SpinState {
        ev,
        staged,
        my_spin,
    } = state;

    // ---- Region 1: WL -> privileged (16*M messages of 3 doubles) ----------
    let params1 = CommParams::new()
        .sender(RankExpr::lit(topo.wl_rank() as i64))
        .receiver(RankExpr::var("sp_dest"))
        .sendwhen(RankExpr::rank().eq(RankExpr::lit(topo.wl_rank() as i64)))
        .receivewhen(RankExpr::rank().eq(RankExpr::var("sp_dest")))
        .count(3)
        .max_comm_iter((m_cnt * n) as i64)
        // Both hops are adjacent regions; all synchronization is
        // consolidated into ONE call at the end of the last region ("delays
        // all synchronization to the last comm_parameters region in a
        // series of adjacent instances"). The engine's data-dependency
        // fence keeps the privileged relay causally ordered after its
        // staged data arrives.
        .place_sync(commint::PlaceSync::EndAdjParamRegions)
        .target(target);
    session.region(&params1, |reg| {
        let empty: [f64; 0] = [];
        for m in 0..m_cnt {
            let dest = topo.privileged_rank(m);
            reg.set_var("sp_dest", dest as i64);
            for p in 0..n {
                let src: &[f64] = if is_wl { &ev[m * n + p] } else { &empty };
                let dst: &mut [f64] = if is_priv && dest == me {
                    &mut staged[p]
                } else {
                    &mut []
                };
                reg.p2p()
                    .site(11)
                    .sbuf(Prim::new("ev[3*p]", src))
                    .rbuf(PrimMut::new("staged[p]", dst))
                    .run()?;
            }
        }
        Ok::<(), DirectiveError>(())
    })??;

    if is_priv {
        *my_spin = staged[0];
    }

    // ---- Region 2: privileged -> workers, optionally overlapped -----------
    let params2 = CommParams::new()
        .sender(RankExpr::var("sp_src"))
        .receiver(RankExpr::var("sp_dst"))
        .sendwhen(RankExpr::rank().eq(RankExpr::var("sp_src")))
        .receivewhen(RankExpr::rank().eq(RankExpr::var("sp_dst")))
        .count(3)
        .max_comm_iter((m_cnt * (n - 1)) as i64)
        .target(target);
    let mut core_energy: Option<f64> = None;
    session.region(&params2, |reg| {
        let empty: [f64; 0] = [];
        let mut core_done = false;
        for m in 0..m_cnt {
            let src_rank = topo.privileged_rank(m);
            reg.set_var("sp_src", src_rank as i64);
            for w in 1..n {
                let dst_rank = src_rank + w;
                reg.set_var("sp_dst", dst_rank as i64);
                let sb: &[f64] = if is_priv && src_rank == me {
                    &staged[w]
                } else {
                    &empty
                };
                let rb: &mut [f64] = if dst_rank == me {
                    &mut my_spin[..]
                } else {
                    &mut []
                };
                let call = reg
                    .p2p()
                    .site(12)
                    .sbuf(Prim::new("staged[w]", sb))
                    .rbuf(PrimMut::new("atom.evec", rb));
                match &overlap {
                    Some((atom, cparams)) if !core_done && !is_wl => {
                        // Listing 7: the first core-state slice does not
                        // depend on the incoming spins and overlaps the
                        // communication.
                        core_done = true;
                        let mut e = 0.0;
                        call.overlap(|ctx| {
                            e = calculate_core_states(ctx, atom, cparams);
                        })?;
                        core_energy = Some(e);
                    }
                    _ => call.run()?,
                }
            }
        }
        Ok::<(), DirectiveError>(())
    })??;

    Ok(core_energy)
}

/// **Extension (beyond the paper)**: the same two-hop spin distribution
/// expressed with the collective directives of `commint::coll` — a
/// `SCATTER` from the WL master to the privileged group (selected with
/// `groupwhen`), then one `SCATTER` per LIZ. The paper names collective
/// directives as future work (§V); this validates that the clause
/// vocabulary extends to them cleanly.
pub fn set_evec_collective(
    session: &mut CommSession<'_>,
    topo: &Topology,
    state: &mut SpinState,
    target: Target,
) -> Result<(), DirectiveError> {
    use commint::coll::CollKind;
    let n = topo.ranks_per_lsms;
    let me = session.ctx().rank();
    let is_wl = me == topo.wl_rank();
    let is_priv = topo.is_privileged(me);

    // Hop 1: WL -> privileged group. Group (ascending) = {WL} U {privileged};
    // the WL master is group index 0 and scatters one n*3-double chunk per
    // member (its own chunk is padding).
    let chunk = n * 3;
    let mut send: Vec<f64> = Vec::new();
    if is_wl {
        send = vec![0.0; chunk]; // root's own chunk
        for m in 0..topo.instances {
            for p in 0..n {
                send.extend_from_slice(&state.ev[m * n + p]);
            }
        }
    }
    let mut recv = vec![0.0f64; chunk];
    let nper = n as i64;
    session
        .coll(CollKind::Scatter)
        .site(9600)
        .root(topo.wl_rank() as i64)
        .groupwhen(
            RankExpr::rank()
                .eq(RankExpr::lit(topo.wl_rank() as i64))
                .or((RankExpr::rank() % RankExpr::lit(nper)).eq(RankExpr::lit(1 % nper))),
        )
        .count(chunk)
        .target(target)
        .scatter(&send, &mut recv)?;
    if is_priv {
        for p in 0..n {
            state.staged[p] = [recv[3 * p], recv[3 * p + 1], recv[3 * p + 2]];
        }
        state.my_spin = staged_first(&state.staged);
    }

    // Hop 2: privileged -> LIZ members, one scatter per instance.
    for m in 0..topo.instances {
        let root = topo.privileged_rank(m);
        let base = root as i64;
        let mut send2: Vec<f64> = Vec::new();
        if me == root {
            for p in 0..n {
                send2.extend_from_slice(&state.staged[p]);
            }
        }
        let mut spin = [0.0f64; 3];
        session
            .coll(CollKind::Scatter)
            .site(9700 + m as u32)
            .root(base)
            .groupwhen(
                RankExpr::rank()
                    .ge(RankExpr::lit(base))
                    .and(RankExpr::rank().lt(RankExpr::lit(base + nper))),
            )
            .count(3)
            .target(target)
            .scatter(&send2, &mut spin)?;
        if topo.instance_of(me) == Some(m) {
            state.my_spin = spin;
        }
    }
    Ok(())
}

fn staged_first(staged: &[[f64; 3]]) -> [f64; 3] {
    staged.first().copied().unwrap_or([0.0; 3])
}

/// Deterministic per-step spin generator (the Wang–Landau proposal). The
/// WL master fills `ev`; a splitmix-style hash keeps it reproducible
/// without a stateful RNG.
pub fn generate_spins(step: u64, count: usize) -> Vec<[f64; 3]> {
    (0..count).map(|i| spin_at(step, i)).collect()
}

/// The spin at index `i` of step `step`'s proposal — each index is hashed
/// independently, so verifying one rank's spin does not require
/// regenerating the whole configuration.
pub fn spin_at(step: u64, i: usize) -> [f64; 3] {
    let mut z = step
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(i as u64)
        .wrapping_add(0x5851F42D4C957F2D);
    let mut next = || {
        z = z.wrapping_add(0x9E3779B97F4A7C15);
        let mut x = z;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
        x ^ (x >> 31)
    };
    // Marsaglia-style point on the unit sphere.
    loop {
        let u = next() as f64 / u64::MAX as f64 * 2.0 - 1.0;
        let v = next() as f64 / u64::MAX as f64 * 2.0 - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            let f = 2.0 * (1.0 - s).sqrt();
            break [u * f, v * f, 1.0 - 2.0 * s];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{run, SimConfig};

    fn run_variant(topo: Topology, variant: SpinVariant) -> Vec<([f64; 3], bool)> {
        let nranks = topo.total_ranks();
        run(SimConfig::new(nranks), move |ctx| {
            let comms = topo.build_comms(ctx);
            let mut state = SpinState::new(&topo, ctx.rank());
            if ctx.rank() == topo.wl_rank() {
                state.ev = generate_spins(1, topo.instances * topo.ranks_per_lsms);
            }
            match variant {
                SpinVariant::Original => set_evec_original(ctx, &topo, &comms, &mut state, false),
                SpinVariant::OriginalWaitall => {
                    set_evec_original(ctx, &topo, &comms, &mut state, true)
                }
                SpinVariant::DirectiveMpi2 | SpinVariant::DirectiveShmem => {
                    let target = if variant == SpinVariant::DirectiveMpi2 {
                        Target::Mpi2Side
                    } else {
                        Target::Shmem
                    };
                    let mut session = CommSession::new(ctx, comms.world.clone()).without_ir();
                    set_evec_directive(&mut session, &topo, &mut state, target, None).unwrap();
                    session.flush();
                }
            }
            // Validate against an independently generated copy.
            let expected_all = generate_spins(1, topo.instances * topo.ranks_per_lsms);
            let ok = match topo.instance_of(ctx.rank()) {
                None => true,
                Some(m) => {
                    let local = ctx.rank() - topo.privileged_rank(m);
                    state.my_spin == expected_all[m * topo.ranks_per_lsms + local]
                }
            };
            (state.my_spin, ok)
        })
        .per_rank
    }

    #[test]
    fn all_variants_deliver_correct_spins() {
        let topo = Topology::new(2, 4); // 9 ranks, small
        for variant in [
            SpinVariant::Original,
            SpinVariant::OriginalWaitall,
            SpinVariant::DirectiveMpi2,
            SpinVariant::DirectiveShmem,
        ] {
            let got = run_variant(topo.clone(), variant);
            assert!(
                got.iter().all(|(_, ok)| *ok),
                "variant {variant:?} delivered wrong spins: {got:?}"
            );
        }
    }

    #[test]
    fn variants_agree_with_each_other() {
        let topo = Topology::new(3, 4);
        let a = run_variant(topo.clone(), SpinVariant::Original);
        let b = run_variant(topo.clone(), SpinVariant::DirectiveMpi2);
        let c = run_variant(topo.clone(), SpinVariant::DirectiveShmem);
        for r in 0..a.len() {
            assert_eq!(a[r].0, b[r].0, "rank {r} MPI directive mismatch");
            assert_eq!(a[r].0, c[r].0, "rank {r} SHMEM directive mismatch");
        }
    }

    #[test]
    fn collective_extension_agrees_with_p2p_directives() {
        let topo = Topology::new(3, 4);
        let nranks = topo.total_ranks();
        let collective = run(SimConfig::new(nranks), {
            let topo = topo.clone();
            move |ctx| {
                let comms = topo.build_comms(ctx);
                let mut state = SpinState::new(&topo, ctx.rank());
                if ctx.rank() == topo.wl_rank() {
                    state.ev = generate_spins(5, topo.instances * topo.ranks_per_lsms);
                }
                let mut session = CommSession::new(ctx, comms.world.clone()).without_ir();
                set_evec_collective(&mut session, &topo, &mut state, Target::Mpi2Side).unwrap();
                session.flush();
                state.my_spin
            }
        })
        .per_rank;
        // Reference: the paper's p2p directive path.
        let reference = run(SimConfig::new(nranks), move |ctx| {
            let comms = topo.build_comms(ctx);
            let mut state = SpinState::new(&topo, ctx.rank());
            if ctx.rank() == topo.wl_rank() {
                state.ev = generate_spins(5, topo.instances * topo.ranks_per_lsms);
            }
            let mut session = CommSession::new(ctx, comms.world.clone()).without_ir();
            set_evec_directive(&mut session, &topo, &mut state, Target::Mpi2Side, None).unwrap();
            session.flush();
            state.my_spin
        })
        .per_rank;
        assert_eq!(collective, reference);
    }

    #[test]
    fn generated_spins_are_unit_and_deterministic() {
        let a = generate_spins(7, 32);
        let b = generate_spins(7, 32);
        assert_eq!(a, b);
        let c = generate_spins(8, 32);
        assert_ne!(a, c);
        for s in &a {
            let norm = (s[0] * s[0] + s[1] * s[1] + s[2] * s[2]).sqrt();
            assert!((norm - 1.0).abs() < 1e-9, "non-unit spin {s:?}");
        }
    }

    #[test]
    fn directive_overlap_produces_core_energy() {
        use crate::atom::{AtomData, AtomSizes};
        let topo = Topology::new(2, 4);
        let nranks = topo.total_ranks();
        let res = run(SimConfig::new(nranks), move |ctx| {
            let comms = topo.build_comms(ctx);
            let mut state = SpinState::new(&topo, ctx.rank());
            if ctx.rank() == topo.wl_rank() {
                state.ev = generate_spins(2, topo.instances * topo.ranks_per_lsms);
            }
            let atom = AtomData::synthetic_fe(ctx.rank(), AtomSizes { jmt: 32, numc: 4 });
            let cparams = CoreStateParams {
                base_ns_per_atom: 10_000,
                speedup: 1.0,
                iterations: 2,
            };
            let mut session = CommSession::new(ctx, comms.world.clone()).without_ir();
            let e = set_evec_directive(
                &mut session,
                &topo,
                &mut state,
                Target::Mpi2Side,
                Some((&atom, &cparams)),
            )
            .unwrap();
            session.flush();
            e
        });
        // WL has no atom => None; every LSMS rank computed an energy.
        assert!(res.per_rank[0].is_none());
        assert!(res.per_rank[1..].iter().all(|e| e.is_some()));
    }

    #[test]
    fn waitall_variant_faster_than_wait_loop() {
        let topo = Topology::paper(3); // 49 ranks
        let time_of = |variant: SpinVariant| {
            let t = topo.clone();
            let res = run(SimConfig::new(t.total_ranks()), move |ctx| {
                let comms = t.build_comms(ctx);
                let mut state = SpinState::new(&t, ctx.rank());
                if ctx.rank() == t.wl_rank() {
                    state.ev = generate_spins(1, t.instances * t.ranks_per_lsms);
                }
                match variant {
                    SpinVariant::Original => set_evec_original(ctx, &t, &comms, &mut state, false),
                    SpinVariant::OriginalWaitall => {
                        set_evec_original(ctx, &t, &comms, &mut state, true)
                    }
                    _ => unreachable!(),
                }
                ctx.now()
            });
            res.makespan()
        };
        let wait_loop = time_of(SpinVariant::Original);
        let waitall = time_of(SpinVariant::OriginalWaitall);
        assert!(
            waitall < wait_loop,
            "waitall ({waitall}) must beat the wait loop ({wait_loop})"
        );
    }
}
