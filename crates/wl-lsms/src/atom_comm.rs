//! Single-atom-data communication: the paper's first case study (Fig. 3).
//!
//! Two implementations of the same transfer, kept faithful to the paper's
//! listings:
//!
//! * [`transfer_atom_original`] — Listing 4: 20+ `MPI_Pack` calls into a
//!   staging buffer, one `MPI_Send` of `MPI_PACKED`, then `MPI_Recv` +
//!   `MPI_Unpack` with the receive-side `resizePotential`/`resizeCore`
//!   logic.
//! * [`transfer_atom_directive`] — Listing 5: one `comm_parameters` region
//!   with three `comm_p2p` instances (scalars as one composite; `vr`+
//!   `rhotot` grouped; `ec`+`nc`+`lc`+`kc` grouped), automatic datatype
//!   handling, and one consolidated synchronization.

use commint::buffer::{Prim, PrimMut, Soa, SoaMut, Struc, StrucMut};
use commint::{CommParams, CommSession, DirectiveError, RankExpr, Target};
use mpisim::{Comm, PackBuf};
use netsim::RankCtx;

use crate::atom::AtomData;

/// Tag used by the original pack/send path.
const ATOM_TAG: i32 = 40;

/// Listing 4, sender+receiver: move `atom` from local rank `from` to local
/// rank `to` of `comm`. On `to`, `atom` is overwritten (with the original's
/// resize-on-receive behaviour); other ranks do nothing.
pub fn transfer_atom_original(
    ctx: &mut RankCtx,
    comm: &Comm,
    from: usize,
    to: usize,
    atom: &mut AtomData,
) {
    let m = comm.model(ctx);
    let me = comm.rank(ctx);
    if me == from {
        // if(comm.rank==from) { MPI_Pack(...) * 20; MPI_Send(buf, s, MPI_PACKED, to, ...) }
        let s = atom.payload_bytes() + 64;
        let mut buf = PackBuf::with_capacity(s);
        let a = &atom.scalars;
        buf.pack_one(ctx, &a.local_id, &m);
        buf.pack_one(ctx, &a.jmt, &m);
        buf.pack_one(ctx, &a.jws, &m);
        buf.pack_one(ctx, &a.xstart, &m);
        buf.pack_one(ctx, &a.rmt, &m);
        buf.pack(ctx, &a.header, &m);
        buf.pack_one(ctx, &a.alat, &m);
        buf.pack_one(ctx, &a.efermi, &m);
        buf.pack_one(ctx, &a.vdif, &m);
        buf.pack_one(ctx, &a.ztotss, &m);
        buf.pack_one(ctx, &a.zcorss, &m);
        buf.pack(ctx, &a.evec, &m);
        buf.pack_one(ctx, &a.nspin, &m);
        buf.pack_one(ctx, &a.numc, &m);

        let t = atom.vr.n_row() as i32;
        buf.pack_one(ctx, &t, &m);
        buf.pack(ctx, atom.vr.prefix(2 * t as usize), &m);
        buf.pack(ctx, atom.rhotot.prefix(2 * t as usize), &m);

        let t = atom.ec.n_row() as i32;
        buf.pack_one(ctx, &t, &m);
        buf.pack(ctx, atom.ec.prefix(2 * t as usize), &m);
        buf.pack(ctx, atom.nc.prefix(2 * t as usize), &m);
        buf.pack(ctx, atom.lc.prefix(2 * t as usize), &m);
        buf.pack(ctx, atom.kc.prefix(2 * t as usize), &m);

        comm.send(ctx, to, ATOM_TAG, buf.packed());
    }
    if me == to {
        // if(comm.rank==to) { MPI_Recv; MPI_Unpack * 20 with resizes }
        let out = comm.recv(ctx, Some(from), Some(ATOM_TAG));
        let mut buf = PackBuf::from_bytes(&out.data);
        let a = &mut atom.scalars;
        a.local_id = buf.unpack_one(ctx, &m);
        a.jmt = buf.unpack_one(ctx, &m);
        a.jws = buf.unpack_one(ctx, &m);
        a.xstart = buf.unpack_one(ctx, &m);
        a.rmt = buf.unpack_one(ctx, &m);
        buf.unpack(ctx, &mut a.header, &m);
        a.alat = buf.unpack_one(ctx, &m);
        a.efermi = buf.unpack_one(ctx, &m);
        a.vdif = buf.unpack_one(ctx, &m);
        a.ztotss = buf.unpack_one(ctx, &m);
        a.zcorss = buf.unpack_one(ctx, &m);
        buf.unpack(ctx, &mut a.evec, &m);
        a.nspin = buf.unpack_one(ctx, &m);
        a.numc = buf.unpack_one(ctx, &m);

        let t: i32 = buf.unpack_one(ctx, &m);
        let t = t as usize;
        if t > atom.vr.n_row() {
            // Original: if(t<atom.vr.n_row()) atom.resizePotential(t+50);
            // (the guard direction in the listing grows the buffer when the
            // incoming mesh is larger than the local one)
            atom.resize_potential(t + 50);
        }
        buf.unpack(ctx, atom.vr.prefix_mut(2 * t), &m);
        buf.unpack(ctx, atom.rhotot.prefix_mut(2 * t), &m);

        let t: i32 = buf.unpack_one(ctx, &m);
        let t = t as usize;
        if t > atom.nc.n_row() {
            atom.resize_core(t);
        }
        buf.unpack(ctx, atom.ec.prefix_mut(2 * t), &m);
        buf.unpack(ctx, atom.nc.prefix_mut(2 * t), &m);
        buf.unpack(ctx, atom.lc.prefix_mut(2 * t), &m);
        buf.unpack(ctx, atom.kc.prefix_mut(2 * t), &m);
    }
}

/// Listing 5: the same transfer through the directives. Every rank of the
/// communicator executes this (SPMD); the `sendwhen`/`receivewhen` clauses
/// select the participants. Three `comm_p2p` instances share one region and
/// one consolidated synchronization.
pub fn transfer_atom_directive(
    session: &mut CommSession<'_>,
    from: usize,
    to: usize,
    target: Target,
    atom: &mut AtomData,
) -> Result<(), DirectiveError> {
    session.set_var("from_rank", from as i64);
    session.set_var("to_rank", to as i64);
    // Sizes are SPMD-uniform (all atoms share the mesh).
    let size1 = 2 * atom.vr.n_row();
    let size2 = 2 * atom.ec.n_row();
    session.set_var("size1", size1 as i64);
    session.set_var("size2", size2 as i64);

    let params = CommParams::new()
        .sendwhen(RankExpr::rank().eq(RankExpr::var("from_rank")))
        .receivewhen(RankExpr::rank().eq(RankExpr::var("to_rank")))
        .sender(RankExpr::var("from_rank"))
        .receiver(RankExpr::var("to_rank"))
        .target(target);

    // The region borrows the atom's pieces disjointly.
    let AtomData {
        scalars,
        vr,
        rhotot,
        ec,
        nc,
        lc,
        kc,
    } = atom;
    let scalars_src = *scalars;
    let vr_src = vr.as_slice()[..size1].to_vec();
    let rhotot_src = rhotot.as_slice()[..size1].to_vec();
    let ec_src = ec.as_slice()[..size2].to_vec();
    let nc_src = nc.as_slice()[..size2].to_vec();
    let lc_src = lc.as_slice()[..size2].to_vec();
    let kc_src = kc.as_slice()[..size2].to_vec();

    session.region(&params, |reg| {
        // #pragma comm_p2p sbuf(scalaratomdata) rbuf(scalaratomdata) count(1)
        reg.p2p()
            .site(1)
            .count(1)
            .sbuf(Struc::new(
                "scalaratomdata",
                std::slice::from_ref(&scalars_src),
            ))
            .rbuf(StrucMut::new(
                "scalaratomdata",
                std::slice::from_mut(scalars),
            ))
            .run()?;
        // #pragma comm_p2p sbuf(vr,rhotot) rbuf(vr,rhotot) count(size1)
        reg.p2p()
            .site(2)
            .count(RankExpr::var("size1"))
            .sbuf(Prim::new("vr", &vr_src))
            .sbuf(Prim::new("rhotot", &rhotot_src))
            .rbuf(PrimMut::new("vr", &mut vr.as_mut_slice()[..size1]))
            .rbuf(PrimMut::new("rhotot", &mut rhotot.as_mut_slice()[..size1]))
            .run()?;
        // #pragma comm_p2p sbuf(ec,nc,lc,kc) rbuf(ec,nc,lc,kc) count(size2)
        reg.p2p()
            .site(3)
            .count(RankExpr::var("size2"))
            .sbuf(Prim::new("ec", &ec_src))
            .sbuf(Prim::new("nc", &nc_src))
            .sbuf(Prim::new("lc", &lc_src))
            .sbuf(Prim::new("kc", &kc_src))
            .rbuf(PrimMut::new("ec", &mut ec.as_mut_slice()[..size2]))
            .rbuf(PrimMut::new("nc", &mut nc.as_mut_slice()[..size2]))
            .rbuf(PrimMut::new("lc", &mut lc.as_mut_slice()[..size2]))
            .rbuf(PrimMut::new("kc", &mut kc.as_mut_slice()[..size2]))
            .run()?;
        Ok(())
    })?
}

/// The layout-engine shape of the same transfer: **one** `comm_p2p`
/// directive carries the whole single-atom payload — the 14 scalars as a
/// composite struct, the two potential matrices as one struct-of-arrays,
/// and the four core-state matrices as another — and the per-target
/// lowering chooser decides pack vs derived datatype vs typed put per
/// buffer. No staging copies are made on either side: the send views
/// borrow the atom's storage directly, and the receive views are written
/// in place.
///
/// Every rank executes this (SPMD). Non-participating roles pass empty
/// placeholder views that still carry the full layout descriptors — the
/// collective staging allocation and the (SPMD-uniform) lowering decision
/// need the descriptor on every rank, but no payload.
pub fn transfer_atom_composite(
    session: &mut CommSession<'_>,
    from: usize,
    to: usize,
    target: Target,
    atom: &mut AtomData,
) -> Result<(), DirectiveError> {
    session.set_var("from_rank", from as i64);
    session.set_var("to_rank", to as i64);
    // Sizes are SPMD-uniform (all atoms share the mesh).
    let size1 = 2 * atom.vr.n_row();
    let size2 = 2 * atom.ec.n_row();

    let params = CommParams::new()
        .sendwhen(RankExpr::rank().eq(RankExpr::var("from_rank")))
        .receivewhen(RankExpr::rank().eq(RankExpr::var("to_rank")))
        .sender(RankExpr::var("from_rank"))
        .receiver(RankExpr::var("to_rank"))
        .target(target);

    let me = session.rank();
    let sends = usize::from(me == from);
    let recvs = usize::from(me == to);

    let AtomData {
        scalars,
        vr,
        rhotot,
        ec,
        nc,
        lc,
        kc,
    } = atom;

    // Role-dependent split of each storage into a receive prefix and a
    // send view. A rank is never both sender and receiver here, so one
    // side of every split is an empty placeholder.
    let (sc_recv, sc_rest) = std::slice::from_mut(scalars).split_at_mut(recvs);
    let sc_send = &sc_rest[..sends.min(sc_rest.len())];
    let (vr_recv, vr_rest) = vr.as_mut_slice().split_at_mut(recvs * size1);
    let vr_send = &vr_rest[..sends * size1];
    let (rho_recv, rho_rest) = rhotot.as_mut_slice().split_at_mut(recvs * size1);
    let rho_send = &rho_rest[..sends * size1];
    let (ec_recv, ec_rest) = ec.as_mut_slice().split_at_mut(recvs * size2);
    let ec_send = &ec_rest[..sends * size2];
    let (nc_recv, nc_rest) = nc.as_mut_slice().split_at_mut(recvs * size2);
    let nc_send = &nc_rest[..sends * size2];
    let (lc_recv, lc_rest) = lc.as_mut_slice().split_at_mut(recvs * size2);
    let lc_send = &lc_rest[..sends * size2];
    let (kc_recv, kc_rest) = kc.as_mut_slice().split_at_mut(recvs * size2);
    let kc_send = &kc_rest[..sends * size2];

    session.region(&params, |reg| {
        // #pragma comm_p2p count(1)
        //   sbuf(scalaratomdata, potential, corestate)
        //   rbuf(scalaratomdata, potential, corestate)
        // count(1) is explicit: the placeholder views would infer 0.
        reg.p2p()
            .site(1)
            .count(1)
            .sbuf(Struc::new("scalaratomdata", sc_send))
            .sbuf(
                Soa::new("potential")
                    .field_blocks("vr", vr_send, size1)
                    .field_blocks("rhotot", rho_send, size1),
            )
            .sbuf(
                Soa::new("corestate")
                    .field_blocks("ec", ec_send, size2)
                    .field_blocks("nc", nc_send, size2)
                    .field_blocks("lc", lc_send, size2)
                    .field_blocks("kc", kc_send, size2),
            )
            .rbuf(StrucMut::new("scalaratomdata", sc_recv))
            .rbuf(
                SoaMut::new("potential")
                    .field_blocks("vr", vr_recv, size1)
                    .field_blocks("rhotot", rho_recv, size1),
            )
            .rbuf(
                SoaMut::new("corestate")
                    .field_blocks("ec", ec_recv, size2)
                    .field_blocks("nc", nc_recv, size2)
                    .field_blocks("lc", lc_recv, size2)
                    .field_blocks("kc", kc_recv, size2),
            )
            .run()?;
        Ok(())
    })?
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{AtomData, AtomSizes};
    use netsim::{run, SimConfig};

    fn small_sizes() -> AtomSizes {
        AtomSizes { jmt: 40, numc: 6 }
    }

    #[test]
    fn original_transfer_roundtrips() {
        let res = run(SimConfig::new(3), |ctx| {
            let comm = Comm::world(ctx);
            let golden = AtomData::synthetic_fe(7, small_sizes());
            let mut atom = if comm.rank(ctx) == 0 {
                golden.clone()
            } else {
                AtomData::new(small_sizes())
            };
            transfer_atom_original(ctx, &comm, 0, 2, &mut atom);
            (comm.rank(ctx), atom == golden)
        });
        assert!(res.per_rank[0].1, "sender keeps its copy");
        assert!(res.per_rank[2].1, "receiver got an identical atom");
        assert!(!res.per_rank[1].1, "bystander untouched");
        // The original path pays pack+unpack copies.
        assert!(res.total_stats().packed_bytes > 0);
    }

    #[test]
    fn original_transfer_resizes_smaller_receiver() {
        let res = run(SimConfig::new(2), |ctx| {
            let comm = Comm::world(ctx);
            let golden = AtomData::synthetic_fe(1, small_sizes());
            let mut atom = if comm.rank(ctx) == 0 {
                golden.clone()
            } else {
                AtomData::new(AtomSizes { jmt: 10, numc: 2 }) // too small
            };
            transfer_atom_original(ctx, &comm, 0, 1, &mut atom);
            if comm.rank(ctx) == 1 {
                assert!(atom.vr.n_row() >= 40);
                assert_eq!(atom.ec.n_row(), 6);
                // Payload data matches on the transferred prefix.
                assert_eq!(atom.vr.prefix(80), golden.vr.prefix(80));
                assert_eq!(atom.scalars, golden.scalars);
            }
        });
        drop(res);
    }

    #[test]
    fn directive_transfer_roundtrips_all_targets() {
        for target in [Target::Mpi2Side, Target::Shmem, Target::Mpi1Side] {
            let res = run(SimConfig::new(3), move |ctx| {
                let comm = Comm::world(ctx);
                let golden = AtomData::synthetic_fe(9, small_sizes());
                let mut atom = if comm.rank(ctx) == 0 {
                    golden.clone()
                } else {
                    AtomData::new(small_sizes())
                };
                let mut session = CommSession::new(ctx, comm.clone());
                transfer_atom_directive(&mut session, 0, 1, target, &mut atom).unwrap();
                session.flush();
                (comm.rank(ctx), atom == golden)
            });
            assert!(res.per_rank[1].1, "target {target}: receiver identical");
            assert!(!res.per_rank[2].1, "target {target}: bystander untouched");
        }
    }

    #[test]
    fn directive_consolidates_to_one_sync() {
        // Three comm_p2p in the region; exactly one waitall per
        // participating rank (the paper: "automatically reduces
        // synchronization calls ... to one synchronization call for the
        // adjacent comm_p2p directives").
        let res = run(SimConfig::new(2), |ctx| {
            let comm = Comm::world(ctx);
            let mut atom = if comm.rank(ctx) == 0 {
                AtomData::synthetic_fe(2, small_sizes())
            } else {
                AtomData::new(small_sizes())
            };
            let mut session = CommSession::new(ctx, comm);
            transfer_atom_directive(&mut session, 0, 1, Target::Mpi2Side, &mut atom).unwrap();
            session.flush();
            ctx.stats.waitalls
        });
        assert_eq!(res.per_rank, vec![1, 1]);
    }

    #[test]
    fn directive_commits_datatype_once_across_transfers() {
        // Scalars use a derived struct type; a second transfer in the same
        // session must reuse the committed type ("reused within the
        // function scope").
        let res = run(SimConfig::new(3), |ctx| {
            let comm = Comm::world(ctx);
            let golden = AtomData::synthetic_fe(3, small_sizes());
            let mut atom = if comm.rank(ctx) == 0 {
                golden
            } else {
                AtomData::new(small_sizes())
            };
            let mut session = CommSession::new(ctx, comm);
            transfer_atom_directive(&mut session, 0, 1, Target::Mpi2Side, &mut atom).unwrap();
            transfer_atom_directive(&mut session, 0, 2, Target::Mpi2Side, &mut atom).unwrap();
            session.flush();
            ctx.stats.datatype_commits
        });
        assert!(res.per_rank.iter().all(|&c| c <= 1), "{:?}", res.per_rank);
    }

    #[test]
    fn composite_transfer_roundtrips_all_targets() {
        for target in [Target::Mpi2Side, Target::Shmem, Target::Mpi1Side] {
            let res = run(SimConfig::new(3), move |ctx| {
                let comm = Comm::world(ctx);
                let golden = AtomData::synthetic_fe(11, small_sizes());
                let mut atom = if comm.rank(ctx) == 0 {
                    golden.clone()
                } else {
                    AtomData::new(small_sizes())
                };
                let mut session = CommSession::new(ctx, comm.clone());
                transfer_atom_composite(&mut session, 0, 1, target, &mut atom).unwrap();
                session.flush();
                (comm.rank(ctx), atom == golden)
            });
            assert!(res.per_rank[0].1, "target {target}: sender keeps its copy");
            assert!(res.per_rank[1].1, "target {target}: receiver identical");
            assert!(!res.per_rank[2].1, "target {target}: bystander untouched");
        }
    }

    #[test]
    fn composite_transfer_is_one_directive_one_sync() {
        let res = run(SimConfig::new(2), |ctx| {
            let comm = Comm::world(ctx);
            let mut atom = if comm.rank(ctx) == 0 {
                AtomData::synthetic_fe(5, small_sizes())
            } else {
                AtomData::new(small_sizes())
            };
            let mut session = CommSession::new(ctx, comm);
            transfer_atom_composite(&mut session, 0, 1, Target::Mpi2Side, &mut atom).unwrap();
            let sites: Vec<u32> = session.program()[0].body.iter().map(|p| p.site).collect();
            session.flush();
            (sites, ctx.stats.waitalls)
        });
        for (sites, waitalls) in &res.per_rank {
            assert_eq!(sites, &[1], "one comm_p2p site");
            assert_eq!(*waitalls, 1, "one consolidated sync");
        }
    }

    #[test]
    fn composite_transfer_beats_listing4_and_skips_pack_copies() {
        // The layout engine's claim on the paper's case study: the full
        // atom moves as one directive, the potential matrices go zero-copy
        // (per-array sends instead of pack/unpack), and the end-to-end
        // virtual time beats the 20+-pack Listing-4 shape.
        let run_one = |composite: bool| {
            run(SimConfig::new(2), move |ctx| {
                let comm = Comm::world(ctx);
                let mut atom = if comm.rank(ctx) == 0 {
                    AtomData::synthetic_fe(0, AtomSizes::default())
                } else {
                    AtomData::new(AtomSizes::default())
                };
                if composite {
                    let mut session = CommSession::new(ctx, comm);
                    transfer_atom_composite(&mut session, 0, 1, Target::Mpi2Side, &mut atom)
                        .unwrap();
                    session.flush();
                } else {
                    transfer_atom_original(ctx, &comm, 0, 1, &mut atom);
                }
                ctx.now()
            })
        };
        let orig = run_one(false);
        let comp = run_one(true);
        assert!(
            comp.makespan() < orig.makespan(),
            "composite {:?} should beat Listing 4 {:?}",
            comp.makespan(),
            orig.makespan()
        );
        // Listing 4 packs the whole payload; the composite directive packs
        // at most the small corestate/scalars leftovers the chooser keeps
        // on the pack path.
        let orig_packed = orig.total_stats().packed_bytes;
        let comp_packed = comp.total_stats().packed_bytes;
        assert!(
            comp_packed * 4 < orig_packed,
            "composite packed {comp_packed} B vs original {orig_packed} B"
        );
    }

    #[test]
    fn directive_faster_or_comparable_to_original() {
        // Fig. 3's qualitative claim: the directive translation is
        // comparable (the pack copies it eliminates buy a small edge).
        let time_of = |directive: bool| {
            let res = run(SimConfig::new(2), move |ctx| {
                let comm = Comm::world(ctx);
                let mut atom = if comm.rank(ctx) == 0 {
                    AtomData::synthetic_fe(0, AtomSizes::default())
                } else {
                    AtomData::new(AtomSizes::default())
                };
                if directive {
                    let mut session = CommSession::new(ctx, comm);
                    transfer_atom_directive(&mut session, 0, 1, Target::Mpi2Side, &mut atom)
                        .unwrap();
                    session.flush();
                } else {
                    transfer_atom_original(ctx, &comm, 0, 1, &mut atom);
                }
                ctx.now()
            });
            res.makespan()
        };
        let orig = time_of(false);
        let dir = time_of(true);
        let ratio = orig.as_nanos() as f64 / dir.as_nanos() as f64;
        assert!(
            (0.8..3.0).contains(&ratio),
            "expected comparable times, got original={orig} directive={dir}"
        );
    }
}
