//! # shmemsim — a SHMEM-flavoured one-sided library over `netsim`
//!
//! The second translation target of the `commint` directives
//! (`TARGET_COMM_SHMEM`). Models the characteristics the paper exploits:
//! symmetric data objects, thin typed put calls whose name encodes the
//! element size ("data type selection is tightly coupled with the
//! communication call, in that the data type is embedded in the name of the
//! library call"), and explicit ordering primitives (`fence`, `quiet`,
//! `barrier_all`) instead of per-message completion.
//!
//! Element-size-matched puts are what the directive translator must select
//! when targeting SHMEM; [`TypedPut::for_elem_size`] reproduces that
//! compiler decision and is unit-tested against it.

use mpisim::pod::{as_bytes, as_bytes_mut, Pod};
use netsim::{CostModel, RankCtx, SegId, Time};

/// Which `shmem_put` variant a transfer maps to, by element size — the
/// name-encoded type selection the paper describes for SHMEM.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TypedPut {
    /// `shmem_putmem` (byte-granular).
    PutMem,
    /// `shmem_put16`.
    Put16,
    /// `shmem_put32` (e.g. `int`, `float`).
    Put32,
    /// `shmem_put64` (e.g. `long long`, `double`).
    Put64,
    /// `shmem_put128` (long double / vector pairs).
    Put128,
}

impl TypedPut {
    /// Select the put variant whose granularity matches an element size, as
    /// the compiler does when translating a directive to SHMEM.
    pub fn for_elem_size(bytes: usize) -> TypedPut {
        match bytes {
            2 => TypedPut::Put16,
            4 => TypedPut::Put32,
            8 => TypedPut::Put64,
            16 => TypedPut::Put128,
            _ => TypedPut::PutMem,
        }
    }

    /// The SHMEM call name (for generated-code rendering and traces).
    pub fn call_name(self) -> &'static str {
        match self {
            TypedPut::PutMem => "shmem_putmem",
            TypedPut::Put16 => "shmem_put16",
            TypedPut::Put32 => "shmem_put32",
            TypedPut::Put64 => "shmem_put64",
            TypedPut::Put128 => "shmem_put128",
        }
    }

    /// The strided-put (`shmem_iput*`) call name of the same granularity:
    /// ships a strided layout in one call with no intermediate pack copy
    /// (the transfer engine walks the stride). Byte-granular layouts have
    /// no strided variant and fall back to `shmem_putmem`.
    pub fn iput_name(self) -> &'static str {
        match self {
            TypedPut::PutMem => "shmem_putmem",
            TypedPut::Put16 => "shmem_iput16",
            TypedPut::Put32 => "shmem_iput32",
            TypedPut::Put64 => "shmem_iput64",
            TypedPut::Put128 => "shmem_iput128",
        }
    }
}

/// The SHMEM "processing element" view of a rank context: `my_pe`/`n_pes`
/// naming plus the global symmetric-heap operations.
pub fn my_pe(ctx: &RankCtx) -> usize {
    ctx.rank()
}

/// Number of PEs in the job.
pub fn n_pes(ctx: &RankCtx) -> usize {
    ctx.nranks()
}

fn model(ctx: &RankCtx) -> CostModel {
    ctx.machine().shmem
}

/// A symmetric array of `T`: the same allocation exists on every PE of the
/// team. Created collectively (like `shmalloc`, which synchronizes).
#[derive(Clone, Copy, Debug)]
pub struct SymSlice<T: Pod> {
    seg: SegId,
    len: usize,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Pod> SymSlice<T> {
    /// Collective allocation of `len` elements on every PE of the whole job.
    pub fn new(ctx: &mut RankCtx, len: usize) -> Self {
        let team: Vec<usize> = (0..ctx.nranks()).collect();
        Self::new_team(ctx, &team, len)
    }

    /// Collective allocation over an explicit team (ascending global ranks,
    /// must include the caller). Mirrors SHMEM teams.
    pub fn new_team(ctx: &mut RankCtx, team: &[usize], len: usize) -> Self {
        let m = model(ctx);
        let seg = ctx.sym_alloc(team, len * std::mem::size_of::<T>(), &m);
        SymSlice {
            seg,
            len,
            _marker: std::marker::PhantomData,
        }
    }

    /// Elements per PE.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the allocation is zero-length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Underlying segment id (directive-engine interop).
    pub fn segment(&self) -> SegId {
        self.seg
    }

    /// The typed put variant transfers from this slice use.
    pub fn put_variant(&self) -> TypedPut {
        TypedPut::for_elem_size(std::mem::size_of::<T>())
    }

    /// `shmem_putN`: deposit `data` into `target`'s copy at element offset
    /// `dst_off`. Completion is deferred to `quiet`/`barrier_all`. Returns
    /// the virtual arrival time. The delivery is signalled so a receiver can
    /// wait for it (`shmem_wait`-style).
    pub fn put(&self, ctx: &mut RankCtx, target: usize, dst_off: usize, data: &[T]) -> Time {
        let m = model(ctx);
        ctx.put(
            self.seg,
            target,
            dst_off * std::mem::size_of::<T>(),
            as_bytes(data),
            &m,
            true,
        )
    }

    /// `shmem_getN`: blocking fetch from `target`'s copy.
    pub fn get(&self, ctx: &mut RankCtx, target: usize, src_off: usize, out: &mut [T]) {
        let m = model(ctx);
        ctx.get(
            self.seg,
            target,
            src_off * std::mem::size_of::<T>(),
            as_bytes_mut(out),
            &m,
        );
    }

    /// Read this PE's own copy (local load, free).
    pub fn read_local(&self, ctx: &RankCtx, off: usize, out: &mut [T]) {
        ctx.read_local(self.seg, off * std::mem::size_of::<T>(), as_bytes_mut(out));
    }

    /// Write this PE's own copy (local store, free).
    pub fn write_local(&self, ctx: &RankCtx, off: usize, data: &[T]) {
        ctx.write_local(self.seg, off * std::mem::size_of::<T>(), as_bytes(data));
    }

    /// Physically wait until `count` signalled puts have landed in this
    /// PE's copy; returns the virtual arrival time of the `count`-th.
    /// Does not advance the clock (pair with `advance_to` or a consolidated
    /// charge) — this is the `shmem_int_wait_until` analogue used by the
    /// directive engine.
    pub fn wait_deliveries_raw(&self, ctx: &RankCtx, count: usize) -> Time {
        ctx.wait_signals_raw(self.seg, count)
    }
}

/// Coalesced packed put: charge the pack copy for assembling a framed
/// batch of small messages, then issue one signalled `shmem_putmem` of the
/// whole batch. The SHMEM half of the directive layer's small-message
/// aggregation: one put (one `o_put`, one signal) replaces a batch of
/// element-wise puts. Returns the virtual arrival time.
pub fn put_packed(
    ctx: &mut RankCtx,
    seg: SegId,
    target: usize,
    dst_off: usize,
    payload: &[u8],
) -> Time {
    let m = model(ctx);
    ctx.charge_pack(payload.len(), &m);
    ctx.put(seg, target, dst_off, payload, &m, true)
}

/// `shmem_fence`: order puts to each PE (charged as a light quiet here —
/// Gemini implements fence as a lightweight ordering point).
pub fn fence(ctx: &mut RankCtx) {
    let m = model(ctx);
    // Ordering only: charge the quiet overhead but do not wait for arrival.
    ctx.charge(Time::from_nanos(m.o_quiet / 2));
}

/// `shmem_quiet`: complete all outstanding puts from this PE.
pub fn quiet(ctx: &mut RankCtx) {
    let m = model(ctx);
    ctx.quiet(&m);
}

/// `shmem_barrier_all`: quiet + barrier over all PEs, reconciling clocks.
pub fn barrier_all(ctx: &mut RankCtx) {
    let m = model(ctx);
    ctx.quiet(&m);
    ctx.barrier(&m);
}

/// Team barrier (quiet + barrier over `team`).
pub fn barrier_team(ctx: &mut RankCtx, team: &[usize]) {
    let m = model(ctx);
    ctx.quiet(&m);
    ctx.barrier_group(team, &m);
}

/// `shmem_broadcast`-alike: root puts to every other PE of `team`, then a
/// team barrier. Simple linear fan-out (SHMEM implementations on Gemini use
/// the BTE for exactly this in small teams).
pub fn broadcast<T: Pod>(
    ctx: &mut RankCtx,
    sym: &SymSlice<T>,
    team: &[usize],
    root: usize,
    data: &mut [T],
) {
    if ctx.rank() == root {
        sym.write_local(ctx, 0, data);
        for &pe in team.iter().filter(|&&p| p != root) {
            sym.put(ctx, pe, 0, data);
        }
    }
    barrier_team(ctx, team);
    if ctx.rank() != root {
        sym.read_local(ctx, 0, data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{run, SimConfig};

    #[test]
    fn typed_put_selection() {
        assert_eq!(TypedPut::for_elem_size(8), TypedPut::Put64);
        assert_eq!(TypedPut::for_elem_size(4), TypedPut::Put32);
        assert_eq!(TypedPut::for_elem_size(2), TypedPut::Put16);
        assert_eq!(TypedPut::for_elem_size(16), TypedPut::Put128);
        assert_eq!(TypedPut::for_elem_size(1), TypedPut::PutMem);
        assert_eq!(TypedPut::for_elem_size(3), TypedPut::PutMem);
        assert_eq!(TypedPut::Put64.call_name(), "shmem_put64");
    }

    #[test]
    fn put_barrier_read() {
        run(SimConfig::new(3), |ctx| {
            let sym = SymSlice::<f64>::new(ctx, 4);
            assert_eq!(sym.put_variant(), TypedPut::Put64);
            if my_pe(ctx) == 0 {
                for pe in 1..n_pes(ctx) {
                    sym.put(ctx, pe, 1, &[pe as f64 * 10.0]);
                }
            }
            barrier_all(ctx);
            if my_pe(ctx) != 0 {
                let mut out = [0f64; 1];
                sym.read_local(ctx, 1, &mut out);
                assert_eq!(out[0], my_pe(ctx) as f64 * 10.0);
            }
        });
    }

    #[test]
    fn quiet_completes_puts() {
        let res = run(SimConfig::new(2), |ctx| {
            let sym = SymSlice::<i32>::new(ctx, 1024);
            if my_pe(ctx) == 0 {
                let data = vec![7i32; 1024];
                let arrival = sym.put(ctx, 1, 0, &data);
                let before = ctx.now();
                assert!(before < arrival, "put initiation returns early");
                quiet(ctx);
                assert!(ctx.now() >= arrival, "quiet waits for arrival");
            }
            barrier_all(ctx);
            ctx.now()
        });
        assert_eq!(res.per_rank[0], res.per_rank[1]);
    }

    #[test]
    fn signalled_delivery_wait() {
        run(SimConfig::new(2), |ctx| {
            let sym = SymSlice::<f64>::new(ctx, 3);
            if my_pe(ctx) == 0 {
                sym.put(ctx, 1, 0, &[1.0, 2.0, 3.0]);
                quiet(ctx);
            } else {
                let arrival = sym.wait_deliveries_raw(ctx, 1);
                ctx.advance_to(arrival);
                let mut out = [0f64; 3];
                sym.read_local(ctx, 0, &mut out);
                assert_eq!(out, [1.0, 2.0, 3.0]);
            }
        });
    }

    #[test]
    fn packed_put_delivers_and_charges_pack() {
        let res = run(SimConfig::new(2), |ctx| {
            let sym = SymSlice::<u8>::new(ctx, 64);
            if my_pe(ctx) == 0 {
                let batch: Vec<u8> = (0..48u8).collect();
                put_packed(ctx, sym.segment(), 1, 0, &batch);
                quiet(ctx);
            } else {
                let arrival = sym.wait_deliveries_raw(ctx, 1);
                ctx.advance_to(arrival);
                let mut out = [0u8; 48];
                sym.read_local(ctx, 0, &mut out);
                assert!(out.iter().enumerate().all(|(i, &b)| b == i as u8));
            }
        });
        assert_eq!(res.stats[0].packed_bytes, 48);
        assert_eq!(res.stats[0].puts, 1);
    }

    #[test]
    fn team_broadcast() {
        run(SimConfig::new(4), |ctx| {
            let team = [0usize, 1, 2, 3];
            let sym = SymSlice::<i64>::new(ctx, 2);
            let mut data = if my_pe(ctx) == 2 { [5i64, 6] } else { [0; 2] };
            broadcast(ctx, &sym, &team, 2, &mut data);
            assert_eq!(data, [5, 6]);
        });
    }

    #[test]
    fn get_round_trip_charges() {
        run(SimConfig::new(2), |ctx| {
            let sym = SymSlice::<u8>::new(ctx, 8);
            if my_pe(ctx) == 1 {
                sym.write_local(ctx, 0, b"SYMHEAP!");
            }
            barrier_all(ctx);
            if my_pe(ctx) == 0 {
                let before = ctx.now();
                let mut out = [0u8; 8];
                sym.get(ctx, 1, 0, &mut out);
                assert_eq!(&out, b"SYMHEAP!");
                assert!(ctx.now() > before);
            }
        });
    }

    #[test]
    fn sanitizer_sees_through_shmem_wrappers_clean_workload() {
        // The SymSlice wrappers delegate to the instrumented RankCtx
        // entry points, so the shadow-state sanitizer covers SHMEM-level
        // programs with no extra plumbing. A properly synchronized
        // put/barrier/read workload must come out clean.
        let res = run(
            SimConfig::new(3).with_exec(netsim::ExecPolicy::threads().with_sanitize()),
            |ctx| {
                let sym = SymSlice::<f64>::new(ctx, 4);
                if my_pe(ctx) == 0 {
                    for pe in 1..n_pes(ctx) {
                        sym.put(ctx, pe, 1, &[pe as f64 * 10.0]);
                    }
                }
                barrier_all(ctx);
                if my_pe(ctx) != 0 {
                    let mut out = [0f64; 1];
                    sym.read_local(ctx, 1, &mut out);
                    assert_eq!(out[0], my_pe(ctx) as f64 * 10.0);
                }
            },
        );
        let report = res.sanitize.expect("sanitizer enabled");
        assert!(report.race_checks > 0, "wrappers bypassed the sanitizer");
        report.assert_clean();
    }

    #[test]
    fn sanitizer_flags_unwaited_shmem_read() {
        // Same workload with the receive-side wait removed: reading the
        // landing zone without waiting for the signalled delivery is the
        // CI012 shape, and the sanitizer attributes it to the reader.
        let res = run(
            SimConfig::new(2).with_exec(netsim::ExecPolicy::threads().with_sanitize()),
            |ctx| {
                let sym = SymSlice::<f64>::new(ctx, 3);
                if my_pe(ctx) == 0 {
                    sym.put(ctx, 1, 0, &[1.0, 2.0, 3.0]);
                    quiet(ctx);
                } else {
                    let mut out = [0f64; 3];
                    sym.read_local(ctx, 0, &mut out);
                    let arrival = sym.wait_deliveries_raw(ctx, 1);
                    ctx.advance_to(arrival);
                }
            },
        );
        let report = res.sanitize.expect("sanitizer enabled");
        assert_eq!(report.conflicts_found(), 1, "{report:?}");
        assert!(report.codes().contains("CI012"), "{report:?}");
    }

    #[test]
    fn subteam_allocation() {
        run(SimConfig::new(4), |ctx| {
            // Only PEs 1..4 participate.
            let team = [1usize, 2, 3];
            if team.contains(&my_pe(ctx)) {
                let sym = SymSlice::<i32>::new_team(ctx, &team, 2);
                if my_pe(ctx) == 1 {
                    sym.put(ctx, 3, 0, &[42, 43]);
                }
                barrier_team(ctx, &team);
                if my_pe(ctx) == 3 {
                    let mut out = [0i32; 2];
                    sym.read_local(ctx, 0, &mut out);
                    assert_eq!(out, [42, 43]);
                }
            }
        });
    }
}
