//! Independent certificate checker.
//!
//! The checker trusts nothing the prover wrote beyond the claim *shapes*:
//! it re-derives the case-split parameters from the source, replays
//! [`lint_region_at`] at **every** rank count the certificate names
//! (counts with no `outcomes` entry must fire nothing — absence of an
//! entry is a claim, not a gap), re-verifies period-`L` stability above
//! the threshold, and checks each claim is entailed by the replayed
//! outcomes. A prover bug can therefore make the checker fail, but cannot
//! make a wrong quantified verdict pass.

use std::collections::{BTreeMap, HashMap};

use commint::diag::{lint_region_at, LintCode};
use commint::dir::ParamsSpec;
use commint::expr::VarTable;
use commlint::{region_view, scan_annotations, LintOptions};
use pragma_front::{parse, SymbolTable};

use crate::cert::{
    code_from_str, severity_from_keyword, Certificate, Claim, Finding, Outcome, RegionCert,
    SiteCert, Verdict, CERT_SCHEMA,
};
use crate::jsonv::{parse as parse_json, JValue};
use crate::{finding_of, region_forms, PERIODS};

// ---------------------------------------------------------------------------
// Certificate parsing (JSON -> data model)
// ---------------------------------------------------------------------------

fn want<'a>(v: &'a JValue, key: &str, what: &str) -> Result<&'a JValue, String> {
    v.get(key).ok_or_else(|| format!("{what}: missing `{key}`"))
}

fn want_usize(v: &JValue, key: &str, what: &str) -> Result<usize, String> {
    want(v, key, what)?
        .as_usize()
        .ok_or_else(|| format!("{what}: `{key}` is not a non-negative integer"))
}

fn want_str<'a>(v: &'a JValue, key: &str, what: &str) -> Result<&'a str, String> {
    want(v, key, what)?
        .as_str()
        .ok_or_else(|| format!("{what}: `{key}` is not a string"))
}

fn want_arr<'a>(v: &'a JValue, key: &str, what: &str) -> Result<&'a [JValue], String> {
    want(v, key, what)?
        .as_arr()
        .ok_or_else(|| format!("{what}: `{key}` is not an array"))
}

fn parse_code(v: &JValue, key: &str, what: &str) -> Result<LintCode, String> {
    let s = want_str(v, key, what)?;
    code_from_str(s).ok_or_else(|| format!("{what}: unknown lint code `{s}`"))
}

fn parse_site(v: &JValue, what: &str) -> Result<Option<u32>, String> {
    let site = want(v, "site", what)?;
    if site.is_null() {
        return Ok(None);
    }
    site.as_usize()
        .map(|s| Some(s as u32))
        .ok_or_else(|| format!("{what}: `site` is neither null nor an integer"))
}

fn parse_finding(v: &JValue, what: &str) -> Result<Finding, String> {
    let sev = want_str(v, "severity", what)?;
    Ok(Finding {
        code: parse_code(v, "code", what)?,
        site: parse_site(v, what)?,
        key: want_str(v, "key", what)?.to_string(),
        severity: severity_from_keyword(sev)
            .ok_or_else(|| format!("{what}: unknown severity `{sev}`"))?,
    })
}

fn parse_verdict(v: &JValue, what: &str) -> Result<Verdict, String> {
    match want_str(v, "kind", what)? {
        "absent" => Ok(Verdict::Absent {
            from: want_usize(v, "from", what)?,
        }),
        "present" => Ok(Verdict::Present {
            from: want_usize(v, "from", what)?,
        }),
        "present-congruent" => Ok(Verdict::PresentCongruent {
            from: want_usize(v, "from", what)?,
            modulus: want_usize(v, "modulus", what)?,
            residues: want_arr(v, "residues", what)?
                .iter()
                .map(|r| r.as_usize().ok_or_else(|| format!("{what}: bad residue")))
                .collect::<Result<_, _>>()?,
        }),
        "swept" => Ok(Verdict::Swept {
            min: want_usize(v, "min", what)?,
            max: want_usize(v, "max", what)?,
        }),
        kind => Err(format!("{what}: unknown verdict kind `{kind}`")),
    }
}

fn parse_region(v: &JValue, idx: usize) -> Result<RegionCert, String> {
    let what = format!("region[{idx}]");
    let sites = want_arr(v, "sites", &what)?
        .iter()
        .map(|s| {
            let span = match want(s, "span", &what)? {
                JValue::Null => None,
                sp => Some(commint::diag::SrcSpan {
                    offset: 0,
                    line: want_usize(sp, "line", &what)?,
                    col: want_usize(sp, "col", &what)?,
                }),
            };
            Ok(SiteCert {
                site: want_usize(s, "site", &what)? as u32,
                span,
                forms: want_arr(s, "forms", &what)?
                    .iter()
                    .map(|pair| {
                        let pair = pair
                            .as_arr()
                            .filter(|p| p.len() == 2)
                            .ok_or_else(|| format!("{what}: bad form pair"))?;
                        match (pair[0].as_str(), pair[1].as_str()) {
                            (Some(kw), Some(nf)) => Ok((kw.to_string(), nf.to_string())),
                            _ => Err(format!("{what}: bad form pair")),
                        }
                    })
                    .collect::<Result<_, String>>()?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let outcomes = want_arr(v, "outcomes", &what)?
        .iter()
        .map(|o| {
            Ok(Outcome {
                nranks: want_usize(o, "nranks", &what)?,
                fired: want_arr(o, "fired", &what)?
                    .iter()
                    .map(|f| parse_finding(f, &what))
                    .collect::<Result<_, _>>()?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let claims = want_arr(v, "claims", &what)?
        .iter()
        .map(|c| {
            let severity = match want(c, "severity", &what)? {
                JValue::Null => None,
                sev => {
                    let sev = sev
                        .as_str()
                        .ok_or_else(|| format!("{what}: bad claim severity"))?;
                    Some(
                        severity_from_keyword(sev)
                            .ok_or_else(|| format!("{what}: unknown severity `{sev}`"))?,
                    )
                }
            };
            Ok(Claim {
                code: parse_code(c, "code", &what)?,
                site: parse_site(c, &what)?,
                key: want_str(c, "key", &what)?.to_string(),
                severity,
                verdict: parse_verdict(want(c, "verdict", &what)?, &what)?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(RegionCert {
        region: want_usize(v, "region", &what)?,
        eligible: want(v, "eligible", &what)?
            .as_bool()
            .ok_or_else(|| format!("{what}: `eligible` is not a bool"))?,
        reason: match want(v, "reason", &what)? {
            JValue::Null => None,
            r => Some(
                r.as_str()
                    .ok_or_else(|| format!("{what}: bad `reason`"))?
                    .to_string(),
            ),
        },
        lcm: want_usize(v, "lcm", &what)?,
        boundary: want_usize(v, "boundary", &what)?,
        threshold: want_usize(v, "threshold", &what)?,
        base_min: want_usize(v, "base_min", &what)?,
        checked_max: want_usize(v, "checked_max", &what)?,
        sites,
        outcomes,
        claims,
    })
}

/// Parse a certificate document produced by [`Certificate::to_json`].
pub fn parse_certificate(doc: &str) -> Result<Certificate, String> {
    let v = parse_json(doc).map_err(|e| e.to_string())?;
    let ranks = want(&v, "ranks", "certificate")?;
    Ok(Certificate {
        schema: want_usize(&v, "schema", "certificate")? as u32,
        file: want_str(&v, "file", "certificate")?.to_string(),
        ranks: commlint::RankRange {
            min: want_usize(ranks, "min", "certificate.ranks")?,
            max: want_usize(ranks, "max", "certificate.ranks")?,
        },
        regions: want_arr(&v, "regions", "certificate")?
            .iter()
            .enumerate()
            .map(|(i, r)| parse_region(r, i))
            .collect::<Result<_, _>>()?,
    })
}

// ---------------------------------------------------------------------------
// Checking
// ---------------------------------------------------------------------------

fn replay(
    region: usize,
    spec: &ParamsSpec,
    min: usize,
    max: usize,
    vars: &HashMap<String, i64>,
) -> BTreeMap<usize, Vec<Finding>> {
    (min..=max)
        .map(|n| {
            let mut fired: Vec<Finding> = lint_region_at(region, spec, n, vars)
                .iter()
                .map(finding_of)
                .collect();
            fired.sort();
            fired.dedup();
            (n, fired)
        })
        .collect()
}

fn check_region(
    rc: &RegionCert,
    spec: &ParamsSpec,
    ranks: commlint::RankRange,
    vars: &HashMap<String, i64>,
    errors: &mut Vec<String>,
) {
    let ctx = format!("region {}", rc.region);
    let mut err = |msg: String| errors.push(format!("{ctx}: {msg}"));

    if rc.base_min != ranks.min {
        err(format!(
            "base_min {} does not match the configured sweep minimum {}",
            rc.base_min, ranks.min
        ));
        return;
    }
    if rc.checked_max < rc.base_min {
        err("empty checked window".to_string());
        return;
    }

    // Re-derive the case-split parameters from source.
    let vt: VarTable = vars.into();
    let derived = region_forms(spec, &HashMap::new(), &vt);

    if rc.eligible {
        let (sites, params) = match derived {
            Ok(ok) => ok,
            Err(reason) => {
                err(format!(
                    "certificate says eligible but the region is outside the class: {reason}"
                ));
                return;
            }
        };
        if !params.eligible() {
            err("certificate says eligible but the derived period exceeds the cap".to_string());
            return;
        }
        let (l, b) = (params.lcm as usize, params.boundary as usize);
        if rc.lcm != l || rc.boundary != b {
            err(format!(
                "derived parameters (L={l}, B={b}) disagree with the certificate (L={}, B={})",
                rc.lcm, rc.boundary
            ));
            return;
        }
        if rc.threshold != ranks.min.max(2 * b + 2) {
            err(format!(
                "threshold {} is not max(min, 2B+2) = {}",
                rc.threshold,
                ranks.min.max(2 * b + 2)
            ));
            return;
        }
        if rc.checked_max != rc.threshold + PERIODS * l {
            err(format!(
                "checked_max {} is not threshold + {PERIODS}·L = {}",
                rc.checked_max,
                rc.threshold + PERIODS * l
            ));
            return;
        }
        // Recorded normal forms must match what the source normalizes to
        // (provenance honesty; spans are display-only and not compared).
        let recorded: Vec<(u32, &[(String, String)])> = rc
            .sites
            .iter()
            .map(|s| (s.site, s.forms.as_slice()))
            .collect();
        let fresh: Vec<(u32, &[(String, String)])> =
            sites.iter().map(|s| (s.site, s.forms.as_slice())).collect();
        if recorded != fresh {
            err("recorded clause normal forms disagree with the source".to_string());
        }
    } else {
        // A downgrade needs no justification beyond its weak (swept)
        // claims, but the sweep must cover the configured range.
        if rc.checked_max < ranks.max {
            err(format!(
                "swept region checked only up to {} but the configured range ends at {}",
                rc.checked_max, ranks.max
            ));
        }
        for c in &rc.claims {
            if !matches!(
                c.verdict,
                Verdict::Swept { min, max } if min == rc.base_min && max == rc.checked_max
            ) {
                err(format!(
                    "ineligible region carries a non-swept (or mis-ranged) claim: {} @{:?} `{}`",
                    c.code.code(),
                    c.site,
                    c.key
                ));
            }
        }
    }

    // Replay every checked count and compare with the recorded outcomes
    // (counts with no entry must fire nothing).
    let actual = replay(rc.region, spec, rc.base_min, rc.checked_max, vars);
    for (n, fired) in &actual {
        if rc.outcome_at(*n) != fired.as_slice() {
            err(format!(
                "recorded outcome at N={n} disagrees with a fresh lint run"
            ));
        }
    }
    for o in &rc.outcomes {
        if o.nranks < rc.base_min || o.nranks > rc.checked_max {
            err(format!(
                "outcome at N={} lies outside the checked window",
                o.nranks
            ));
        }
    }

    if !rc.eligible {
        // Swept claims are only existence notes; verify each fired at
        // least once.
        for c in &rc.claims {
            if c.key == "*" {
                continue;
            }
            let fired_somewhere = actual.values().flatten().any(|f| {
                f.code == c.code
                    && f.site == c.site
                    && f.key == c.key
                    && Some(f.severity) == c.severity
            });
            if !fired_somewhere {
                err(format!(
                    "swept claim {} @{:?} `{}` never fired in the replay",
                    c.code.code(),
                    c.site,
                    c.key
                ));
            }
        }
        return;
    }

    let l = rc.lcm;
    // Stability: period-L above the threshold.
    if rc.checked_max >= rc.threshold + l {
        for n in rc.threshold..=rc.checked_max - l {
            if actual[&n] != actual[&(n + l)] {
                err(format!(
                    "outcomes are not periodic above the threshold (N={n} vs N={})",
                    n + l
                ));
                return;
            }
        }
    }

    // Claim entailment against the replayed outcomes.
    for c in &rc.claims {
        let label = format!("claim {} @{:?} `{}`", c.code.code(), c.site, c.key);
        let fires = |n: usize, sev| {
            actual[&n].iter().any(|f| {
                f.code == c.code && f.site == c.site && f.key == c.key && f.severity == sev
            })
        };
        match &c.verdict {
            Verdict::Absent { from } => {
                if c.key != "*" || c.severity.is_some() {
                    err(format!(
                        "{label}: absence claims must use key `*` and no severity"
                    ));
                    continue;
                }
                if *from < rc.base_min {
                    err(format!(
                        "{label}: `from` {} precedes the checked window",
                        from
                    ));
                    continue;
                }
                for n in *from..=rc.checked_max {
                    if actual[&n]
                        .iter()
                        .any(|f| f.code == c.code && f.site == c.site)
                    {
                        err(format!("{label}: a matching finding fires at N={n}"));
                        break;
                    }
                }
            }
            Verdict::Present { from } => {
                let Some(sev) = c.severity else {
                    err(format!("{label}: presence claim without severity"));
                    continue;
                };
                if *from < rc.base_min {
                    err(format!(
                        "{label}: `from` {} precedes the checked window",
                        from
                    ));
                    continue;
                }
                for n in *from..=rc.checked_max {
                    if !fires(n, sev) {
                        err(format!("{label}: does not fire at N={n}"));
                        break;
                    }
                }
            }
            Verdict::PresentCongruent {
                from,
                modulus,
                residues,
            } => {
                let Some(sev) = c.severity else {
                    err(format!("{label}: presence claim without severity"));
                    continue;
                };
                if *modulus != l {
                    err(format!(
                        "{label}: modulus {} is not the region period {l}",
                        modulus
                    ));
                    continue;
                }
                if *from < rc.base_min || residues.iter().any(|r| r >= modulus) {
                    err(format!("{label}: bad `from` or out-of-range residue"));
                    continue;
                }
                for n in *from..=rc.checked_max {
                    if fires(n, sev) != residues.contains(&(n % modulus)) {
                        err(format!(
                            "{label}: firing at N={n} contradicts the residue set"
                        ));
                        break;
                    }
                }
            }
            Verdict::Swept { .. } => {
                err(format!("{label}: swept claim in an eligible region"));
            }
        }
    }

    // Completeness: above the threshold the claims must predict the
    // outcomes exactly — a finding with no covering claim would silently
    // vanish from extrapolated verdicts.
    for n in rc.threshold..=rc.checked_max {
        let mut predicted: Vec<Finding> = Vec::new();
        for c in &rc.claims {
            let hit = match &c.verdict {
                Verdict::Present { from } => n >= *from,
                Verdict::PresentCongruent {
                    from,
                    modulus,
                    residues,
                } => n >= *from && *modulus > 0 && residues.contains(&(n % modulus)),
                _ => false,
            };
            if hit {
                if let Some(sev) = c.severity {
                    predicted.push(Finding {
                        code: c.code,
                        site: c.site,
                        key: c.key.clone(),
                        severity: sev,
                    });
                }
            }
        }
        predicted.sort();
        predicted.dedup();
        if predicted != actual[&n] {
            err(format!(
                "claims do not reproduce the outcome at N={n} (above the threshold)"
            ));
            return;
        }
    }
}

/// Check a certificate against its source. Returns the list of problems
/// (empty = the certificate is valid and every claim is entailed).
pub fn check_source(
    src: &str,
    symbols: &SymbolTable,
    opts: &LintOptions,
    cert: &Certificate,
) -> Vec<String> {
    let mut errors = Vec::new();
    if cert.schema != CERT_SCHEMA {
        errors.push(format!(
            "schema {} is not the supported version {CERT_SCHEMA}",
            cert.schema
        ));
        return errors;
    }
    let ann = scan_annotations(src);
    let mut symbols = symbols.clone();
    commlint::apply_decls(&mut symbols, &ann);
    let mut vars = opts.vars.clone();
    vars.extend(ann.vars);
    let ranks = ann.ranks.unwrap_or(opts.ranks);
    if cert.ranks != ranks {
        errors.push(format!(
            "certificate ranks {} do not match the configured range {ranks}",
            cert.ranks
        ));
        return errors;
    }
    let parsed = match parse(src, &symbols) {
        Ok(p) => p,
        Err(e) => {
            errors.push(format!("source does not parse: {e}"));
            return errors;
        }
    };
    let regions: Vec<ParamsSpec> = parsed.items.iter().filter_map(region_view).collect();
    if cert.regions.len() != regions.len() {
        errors.push(format!(
            "certificate covers {} region(s) but the source has {}",
            cert.regions.len(),
            regions.len()
        ));
        return errors;
    }
    for (rc, spec) in cert.regions.iter().zip(&regions) {
        check_region(rc, spec, ranks, &vars, &mut errors);
    }
    errors
}

/// One-call library entry point for independent certificate validation:
/// parse a certificate document from raw bytes and check it against its
/// source. `Ok` carries the parsed (trustworthy) certificate; `Err`
/// carries every problem found — a non-UTF-8 or non-JSON document, a
/// schema mismatch, or any claim the replay does not entail.
///
/// This is what the `commprove --check` binary wraps, and what the
/// analysis daemon (`commintd`) runs over every certificate it loads from
/// its on-disk store: a corrupted or stale entry is rejected here and
/// recomputed rather than served.
pub fn check_cert_bytes(
    src: &str,
    symbols: &SymbolTable,
    opts: &LintOptions,
    cert_bytes: &[u8],
) -> Result<Certificate, Vec<String>> {
    let doc = std::str::from_utf8(cert_bytes)
        .map_err(|e| vec![format!("certificate is not UTF-8: {e}")])?;
    let cert = parse_certificate(doc).map_err(|e| vec![e])?;
    let errors = check_source(src, symbols, opts, &cert);
    if errors.is_empty() {
        Ok(cert)
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prove_source;

    const RING: &str = "\
// @decl buf1: double[16]
// @decl buf2: double[16]
// @ranks 2..=16
#pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) \
  sbuf(buf1) rbuf(buf2) count(16)";

    #[test]
    fn honest_certificate_round_trips_and_checks() {
        let rep = prove_source(
            "ring.comm",
            RING,
            &SymbolTable::new(),
            &LintOptions::default(),
        )
        .unwrap();
        let doc = rep.certificate.to_json();
        let parsed = parse_certificate(&doc).expect("parses");
        // Span offsets are not serialized; compare modulo them.
        assert_eq!(parsed.schema, rep.certificate.schema);
        assert_eq!(parsed.regions.len(), rep.certificate.regions.len());
        assert_eq!(parsed.regions[0].claims, rep.certificate.regions[0].claims);
        let errors = check_source(RING, &SymbolTable::new(), &LintOptions::default(), &parsed);
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn check_cert_bytes_accepts_honest_and_rejects_garbage() {
        let rep = prove_source(
            "ring.comm",
            RING,
            &SymbolTable::new(),
            &LintOptions::default(),
        )
        .unwrap();
        let opts = LintOptions::default();
        let doc = rep.certificate.to_json();
        let cert = check_cert_bytes(RING, &SymbolTable::new(), &opts, doc.as_bytes())
            .expect("honest certificate validates");
        assert_eq!(cert.regions.len(), rep.certificate.regions.len());
        // Bit rot: flip one byte mid-document.
        let mut rotten = doc.clone().into_bytes();
        let mid = rotten.len() / 2;
        rotten[mid] = if rotten[mid] == b'0' { b'1' } else { b'0' };
        assert!(check_cert_bytes(RING, &SymbolTable::new(), &opts, &rotten).is_err());
        // Not UTF-8 / not JSON.
        assert!(check_cert_bytes(RING, &SymbolTable::new(), &opts, &[0xff, 0xfe]).is_err());
        assert!(check_cert_bytes(RING, &SymbolTable::new(), &opts, b"{}").is_err());
        // Valid document, wrong source: the replay disagrees.
        let other = RING.replace("count(16)", "count(8)");
        assert!(check_cert_bytes(&other, &SymbolTable::new(), &opts, doc.as_bytes()).is_err());
    }

    #[test]
    fn tampered_certificates_are_rejected() {
        let rep = prove_source(
            "ring.comm",
            RING,
            &SymbolTable::new(),
            &LintOptions::default(),
        )
        .unwrap();
        let opts = LintOptions::default();

        // Upgrade an absence claim into a wider one than checked.
        let mut forged = rep.certificate.clone();
        forged.regions[0]
            .claims
            .retain(|c| c.key != "*" || c.code != LintCode::UnmatchedSend);
        forged.regions[0].claims.push(Claim {
            code: LintCode::BlockingDeadlockCycle,
            site: Some(1),
            key: "*".to_string(),
            severity: None,
            verdict: Verdict::Absent { from: 2 },
        });
        let errors = check_source(RING, &SymbolTable::new(), &opts, &forged);
        assert!(
            errors.iter().any(|e| e.contains("fires at N=")),
            "{errors:?}"
        );

        // Shrink the checked window.
        let mut forged = rep.certificate.clone();
        forged.regions[0].checked_max -= 1;
        let errors = check_source(RING, &SymbolTable::new(), &opts, &forged);
        assert!(!errors.is_empty(), "window tamper must be caught");

        // Drop a recorded outcome: the replay disagrees.
        let mut forged = rep.certificate.clone();
        forged.regions[0].outcomes.clear();
        let errors = check_source(RING, &SymbolTable::new(), &opts, &forged);
        assert!(
            errors
                .iter()
                .any(|e| e.contains("disagrees with a fresh lint run")),
            "{errors:?}"
        );

        // Flip the period: derived parameters no longer match.
        let mut forged = rep.certificate.clone();
        forged.regions[0].lcm = 4;
        let errors = check_source(RING, &SymbolTable::new(), &opts, &forged);
        assert!(
            errors
                .iter()
                .any(|e| e.contains("disagree with the certificate") || e.contains("checked_max")),
            "{errors:?}"
        );
    }
}
