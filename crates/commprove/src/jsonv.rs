//! A minimal JSON reader for certificate checking.
//!
//! The workspace renders JSON by hand and has no serde; the checker needs
//! to *read* certificates back, so this module provides a small recursive-
//! descent parser over a generic [`JValue`]. It accepts exactly the subset
//! the certificate writer emits — integers (no floats or exponents),
//! strings with the writer's escapes, booleans, null, arrays, objects —
//! which is also enough to stay honest about malformed input: anything
//! else is an error, never a guess.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer (the certificate schema has no floats).
    Int(i64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<JValue>),
    /// Object, in source order.
    Obj(Vec<(String, JValue)>),
}

impl JValue {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JValue> {
        match self {
            JValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// As a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JValue::Int(v) if *v >= 0 => Some(*v as usize),
            _ => None,
        }
    }

    /// As a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// As an array slice.
    pub fn as_arr(&self) -> Option<&[JValue]> {
        match self {
            JValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// As a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JValue::Null)
    }
}

/// A parse error with byte position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: &str) -> Result<T, JsonError> {
        Err(JsonError {
            message: message.to_string(),
            at: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected `{}`", b as char))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: JValue) -> Result<JValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            self.err(&format!("expected `{lit}`"))
        }
    }

    fn value(&mut self) -> Result<JValue, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_lit("null", JValue::Null),
            Some(b't') => self.eat_lit("true", JValue::Bool(true)),
            Some(b'f') => self.eat_lit("false", JValue::Bool(false)),
            Some(b'"') => self.string().map(JValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.int(),
            _ => self.err("expected a value"),
        }
    }

    fn int(&mut self) -> Result<JValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return self.err("floats are not part of the certificate schema");
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        match text.parse::<i64>() {
            Ok(v) => Ok(JValue::Int(v)),
            Err(_) => self.err("bad integer"),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            // Copy the run up to the next quote or escape in one piece:
            // `"` and `\` are ASCII and never occur inside a multi-byte
            // UTF-8 sequence, so the run boundary cannot split a
            // character.
            let start = self.pos;
            while matches!(self.bytes.get(self.pos), Some(&b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            if self.pos > start {
                let run =
                    std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| JsonError {
                        message: "invalid utf-8".into(),
                        at: start,
                    })?;
                out.push_str(run);
            }
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5);
                            let Some(hex) = hex.and_then(|h| std::str::from_utf8(h).ok()) else {
                                return self.err("bad \\u escape");
                            };
                            let Ok(cp) = u32::from_str_radix(hex, 16) else {
                                return self.err("bad \\u escape");
                            };
                            let Some(c) = char::from_u32(cp) else {
                                return self.err("bad \\u codepoint");
                            };
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                // The run scan stops only at EOF, `"` or `\`.
                Some(_) => unreachable!("run scan stops at quote or escape"),
            }
        }
    }

    fn array(&mut self) -> Result<JValue, JsonError> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JValue::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JValue::Arr(out));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn object(&mut self) -> Result<JValue, JsonError> {
        self.eat(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JValue::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            out.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JValue::Obj(out));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }
}

/// Parse a JSON document.
pub fn parse(src: &str) -> Result<JValue, JsonError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing garbage after document");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_certificate_shapes() {
        let v = parse("{ \"a\": [1, -2, null], \"b\": { \"c\": \"x\\n\\\"y\" }, \"t\": true }")
            .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_usize(), Some(1));
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\n\"y")
        );
        assert_eq!(v.get("t").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn rejects_floats_and_garbage() {
        assert!(parse("1.5").is_err());
        assert!(parse("{\"a\": 1} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_and_escapes_round() {
        let v = parse("\"\\u0041∀N\"").unwrap();
        assert_eq!(v.as_str(), Some("A∀N"));
    }
}
