//! # commprove — parametric verification of communication intent
//!
//! `commlint` answers "does this spec lint clean at N ranks?" for a finite
//! sweep of N. This crate answers the question the sweep cannot: **does it
//! hold for *all* rank counts?**
//!
//! The approach is a small-model theorem for the affine-congruence class
//! (see `commint::nf` and DESIGN.md §6d). Every clause of a region is
//! normalized to `a·rank + n·nprocs + c` under at most one `mod`/`div`;
//! from the normal forms two numbers fall out — the case-split period `L`
//! (lcm of the constant moduli, divisors and rank strides) and the
//! boundary width `B` (how far the "special" ranks reach from rank 0 and
//! rank N−1). Above the threshold `N₀ = max(min, 2B+2)` the outcome of
//! every lint property is a function of `N mod L`, so checking the window
//! `[min, N₀ + PERIODS·L]` concretely and observing period-`L` stability
//! decides each finding **for every N ≥ N₀**:
//!
//! * fires at every residue → `proved ∀N≥N₀` ([`Verification::Proved`]),
//! * fires at some residues → `proved ∀N≥N₀, N≡r (mod L)`,
//! * fires at none → an absence claim ("holds for all N").
//!
//! Regions outside the class (opaque host code, unbound variables,
//! non-affine shapes, periods above `LCM_CAP`) degrade to exactly today's
//! behaviour: the concrete sweep over the configured range, stamped
//! `swept lo..=hi`.
//!
//! Every verdict is backed by a machine-checkable [`cert::Certificate`]
//! recording the normal forms, the case-split parameters, the concrete
//! outcomes and the claims. The independent checker ([`check`]) re-derives
//! the parameters from source and replays `lint_region_at` at every
//! checked count, so a prover bug cannot silently upgrade a verdict.

pub mod cert;
pub mod check;
pub mod jsonv;

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use commint::diag::{lint_region_at, Diag, LintCode, SrcSpan, Verification};
use commint::dir::ParamsSpec;
use commint::expr::VarTable;
use commint::nf::{normalize_cond, normalize_expr, ClassParams, NormExpr, LCM_CAP};
use commlint::{map_parse_diag, region_view, scan_annotations, LintOptions, LintReport, RankRange};
use pragma_front::{parse, ParseError, Parsed, SymbolTable};

use cert::{Certificate, Claim, Finding, Outcome, RegionCert, SiteCert, Verdict, CERT_SCHEMA};

/// Full periods checked above the threshold. One period fixes the residue
/// pattern; the extra periods are the observed-stability evidence the
/// certificate (and its checker) insist on.
pub const PERIODS: usize = 3;

/// Largest rank count the prover will check concretely. A window that
/// would exceed this (huge boundary or period) pushes the region out of
/// the decidable class rather than into an unbounded case analysis.
pub const CHECKED_CAP: usize = 4096;

/// The lint properties decided parametrically: for each of these (per
/// site and region-level), an eligible region's certificate carries either
/// presence claims or an explicit absence claim ("holds for all N").
pub const PROVED_CODES: [LintCode; 9] = [
    LintCode::UnmatchedSend,
    LintCode::BlockingDeadlockCycle,
    LintCode::SizeMismatch,
    LintCode::SendwhenPairing,
    LintCode::ConsolidationUnsafeOverlap,
    LintCode::OverlappingPuts,
    LintCode::GetPutConflict,
    LintCode::SourceReuseBeforeQuiet,
    LintCode::ReadBeforeSignalWait,
];

/// Result of proving one source: the (verification-stamped) lint report
/// plus the certificate that justifies the stamps.
#[derive(Clone, Debug)]
pub struct ProveReport {
    /// Diagnostics, most severe first — same shape `commlint` produces,
    /// with `verification` upgraded where the prover decided the finding.
    pub report: LintReport,
    /// The per-region case analyses backing the verdicts.
    pub certificate: Certificate,
}

/// The identity of a lint finding as recorded in certificates.
pub fn finding_of(d: &Diag) -> Finding {
    Finding {
        code: d.code,
        site: d.site,
        key: d.key.clone(),
        severity: d.severity,
    }
}

/// Normalize one site's merged clause set, joining its [`ClassParams`]
/// into `params` and appending `(keyword, normal form)` pairs to `forms`.
/// `Err` carries a human-readable reason naming the offending clause.
fn normalize_site(
    spec: &ParamsSpec,
    p2p: &commint::dir::P2pSpec,
    vars: &VarTable,
    params: &mut ClassParams,
    forms: &mut Vec<(String, String)>,
) -> Result<(), String> {
    let merged = p2p.clauses.merged_with(&spec.clauses);
    let mut joined = *params;
    {
        let mut expr =
            |kw: &str, e: &commint::expr::RankExpr, relax: bool| -> Result<ClassParams, String> {
                let nf = normalize_expr(e, vars)
                    .map_err(|err| format!("site {}: `{kw}`: {err}", p2p.site))?;
                forms.push((kw.to_string(), nf.to_string()));
                // A constant `count`/`max_comm_iter` has no rank-boundary
                // semantics — it names a payload size, not a rank — so it
                // must not inflate the boundary width (and with it the
                // threshold).
                if relax && matches!(nf, NormExpr::Lin(l) if l.is_const()) {
                    Ok(ClassParams::default())
                } else {
                    Ok(ClassParams::of_expr(&nf))
                }
            };
        if let Some(e) = &merged.sender {
            joined = joined.join(expr("sender", e, false)?);
        }
        if let Some(e) = &merged.receiver {
            joined = joined.join(expr("receiver", e, false)?);
        }
        if let Some(e) = &merged.count {
            joined = joined.join(expr("count", e, true)?);
        }
        if let Some(e) = &merged.max_comm_iter {
            joined = joined.join(expr("max_comm_iter", e, true)?);
        }
    }
    for (kw, c) in [
        ("sendwhen", &merged.sendwhen),
        ("receivewhen", &merged.receivewhen),
    ] {
        if let Some(c) = c {
            let nf = normalize_cond(c, vars)
                .map_err(|err| format!("site {}: `{kw}`: {err}", p2p.site))?;
            forms.push((kw.to_string(), nf.to_string()));
            joined = joined.join(ClassParams::of_cond(&nf));
        }
    }
    *params = joined;
    Ok(())
}

/// Normalize every clause of every site in a region. `Err` is the reason
/// the region is outside the decidable class.
pub fn region_forms(
    spec: &ParamsSpec,
    site_spans: &HashMap<u32, SrcSpan>,
    vars: &VarTable,
) -> Result<(Vec<SiteCert>, ClassParams), String> {
    let mut params = ClassParams::default();
    let mut sites = Vec::new();
    for p2p in &spec.body {
        let mut forms = Vec::new();
        normalize_site(spec, p2p, vars, &mut params, &mut forms)?;
        sites.push(SiteCert {
            site: p2p.site,
            span: site_spans.get(&p2p.site).copied(),
            forms,
        });
    }
    Ok((sites, params))
}

/// Merge per-count diagnostics exactly as `commlint`'s sweep does: dedupe
/// by `(code, region, site, key)` in ascending-count order, keeping the
/// first (smallest-count) witness.
fn merge_diags(per_count: &[(usize, Vec<Diag>)]) -> Vec<Diag> {
    let mut seen: HashSet<(LintCode, usize, Option<u32>, String)> = HashSet::new();
    let mut out = Vec::new();
    for (_, diags) in per_count {
        for d in diags {
            if seen.insert((d.code, d.region, d.site, d.key.clone())) {
                out.push(d.clone());
            }
        }
    }
    out
}

/// Sorted, deduplicated findings per checked count.
fn outcome_map(per_count: &[(usize, Vec<Diag>)]) -> BTreeMap<usize, Vec<Finding>> {
    per_count
        .iter()
        .map(|(n, diags)| {
            let mut fired: Vec<Finding> = diags.iter().map(finding_of).collect();
            fired.sort();
            fired.dedup();
            (*n, fired)
        })
        .collect()
}

fn nonempty_outcomes(outcomes: &BTreeMap<usize, Vec<Finding>>) -> Vec<Outcome> {
    outcomes
        .iter()
        .filter(|(_, fired)| !fired.is_empty())
        .map(|(n, fired)| Outcome {
            nranks: *n,
            fired: fired.clone(),
        })
        .collect()
}

/// Build the swept (non-quantified) result for a region: diagnostics
/// stamped `swept min..=max`, a certificate whose claims are all
/// [`Verdict::Swept`].
fn swept_region(
    region: usize,
    min: usize,
    max: usize,
    per_count: &[(usize, Vec<Diag>)],
    sites: Vec<SiteCert>,
    reason: String,
) -> (Vec<Diag>, RegionCert) {
    let mut diags = merge_diags(per_count);
    for d in &mut diags {
        d.verification = Some(Verification::Swept { min, max });
    }
    let outcomes = outcome_map(per_count);
    let mut seen: BTreeSet<Finding> = BTreeSet::new();
    for fired in outcomes.values() {
        seen.extend(fired.iter().cloned());
    }
    let claims = seen
        .into_iter()
        .map(|f| Claim {
            code: f.code,
            site: f.site,
            key: f.key,
            severity: Some(f.severity),
            verdict: Verdict::Swept { min, max },
        })
        .collect();
    let rc = RegionCert {
        region,
        eligible: false,
        reason: Some(reason),
        lcm: 1,
        boundary: 0,
        threshold: min,
        base_min: min,
        checked_max: max,
        sites,
        outcomes: nonempty_outcomes(&outcomes),
        claims,
    };
    (diags, rc)
}

/// Prove one region: decide every lint property for all `N ≥ N₀` when the
/// region is in the affine-congruence class, or fall back to the concrete
/// sweep over `ranks` when it is not.
pub fn prove_region(
    region: usize,
    spec: &ParamsSpec,
    site_spans: &HashMap<u32, SrcSpan>,
    ranks: RankRange,
    vars: &HashMap<String, i64>,
) -> (Vec<Diag>, RegionCert) {
    prove_region_with(region, spec, site_spans, ranks, vars, &|n| {
        lint_region_at(region, spec, n, vars)
    })
}

/// [`prove_region`] with the concrete lint step injected: `lint_at(n)`
/// must return exactly `lint_region_at(region, spec, n, vars)` — possibly
/// from a cache. The incremental service (`commintd`) passes a closure
/// backed by its per-count stripe store so a prove request reuses every
/// stripe an analyze request already computed (and vice versa); the
/// certificate and diagnostics are byte-identical because the inputs are.
pub fn prove_region_with(
    region: usize,
    spec: &ParamsSpec,
    site_spans: &HashMap<u32, SrcSpan>,
    ranks: RankRange,
    vars: &HashMap<String, i64>,
    lint_at: &dyn Fn(usize) -> Vec<Diag>,
) -> (Vec<Diag>, RegionCert) {
    let vt: VarTable = vars.into();
    let lint_window = |hi: usize| -> Vec<(usize, Vec<Diag>)> {
        (ranks.min..=hi).map(|n| (n, lint_at(n))).collect()
    };
    let (sites, params) = match region_forms(spec, site_spans, &vt) {
        Ok(ok) => ok,
        Err(reason) => {
            let per_count = lint_window(ranks.max);
            return swept_region(region, ranks.min, ranks.max, &per_count, vec![], reason);
        }
    };
    if !params.eligible() {
        let per_count = lint_window(ranks.max);
        let reason = format!("case-split period exceeds the lcm cap ({LCM_CAP})");
        return swept_region(region, ranks.min, ranks.max, &per_count, sites, reason);
    }
    let l = params.lcm as usize;
    let b = params.boundary as usize;
    let threshold = ranks.min.max(2 * b + 2);
    let hi = threshold + PERIODS * l;
    if hi > CHECKED_CAP {
        let per_count = lint_window(ranks.max);
        let reason = format!("checked window would reach N={hi}, beyond the cap ({CHECKED_CAP})");
        return swept_region(region, ranks.min, ranks.max, &per_count, sites, reason);
    }

    let per_count = lint_window(hi);
    let outcomes = outcome_map(&per_count);

    // Observed stability: outcomes must be periodic with period L from the
    // threshold up. The small-model argument says they are; if they are
    // not, the parameter extraction missed something and the only sound
    // verdict is the sweep itself.
    for n in threshold..=hi - l {
        if outcomes[&n] != outcomes[&(n + l)] {
            let reason = format!(
                "outcomes not periodic above the threshold (N={n} vs N={}, period {l})",
                n + l
            );
            return swept_region(region, ranks.min, hi, &per_count, sites, reason);
        }
    }

    let fires_at = |n: usize, f: &Finding| outcomes[&n].binary_search(f).is_ok();

    // Presence claims: one per distinct finding observed at N ≥ N₀. The
    // last full period fixes the residue pattern; the claim's `from` is
    // then extended downward through the concrete window as far as the
    // pattern keeps holding.
    let mut above: BTreeSet<Finding> = BTreeSet::new();
    for n in threshold..=hi {
        above.extend(outcomes[&n].iter().cloned());
    }
    let mut claims: Vec<Claim> = Vec::new();
    for f in &above {
        let residues: Vec<usize> = (0..l)
            .filter(|&r| {
                let n = (hi - l + 1..=hi).find(|n| n % l == r).expect("full period");
                fires_at(n, f)
            })
            .collect();
        let pred = |n: usize| residues.contains(&(n % l));
        let mut from = threshold;
        while from > ranks.min && fires_at(from - 1, f) == pred(from - 1) {
            from -= 1;
        }
        let verdict = if residues.len() == l {
            Verdict::Present { from }
        } else {
            Verdict::PresentCongruent {
                from,
                modulus: l,
                residues,
            }
        };
        claims.push(Claim {
            code: f.code,
            site: f.site,
            key: f.key.clone(),
            severity: Some(f.severity),
            verdict,
        });
    }

    // Absence claims: for each proved property and site (plus the region
    // level), "fires at no N ≥ from" — the quantified clean verdict.
    let mut slots: Vec<Option<u32>> = spec.body.iter().map(|p| Some(p.site)).collect();
    slots.push(None);
    for site in slots {
        for code in PROVED_CODES {
            if above.iter().any(|f| f.code == code && f.site == site) {
                continue;
            }
            let last_fire = (ranks.min..threshold)
                .rev()
                .find(|n| outcomes[n].iter().any(|f| f.code == code && f.site == site));
            let from = last_fire.map(|n| n + 1).unwrap_or(ranks.min);
            claims.push(Claim {
                code,
                site,
                key: "*".to_string(),
                severity: None,
                verdict: Verdict::Absent { from },
            });
        }
    }

    // Stamp the merged diagnostics from the matching claim; a finding that
    // only fired below the threshold keeps the honest sweep stamp.
    let mut diags = merge_diags(&per_count);
    for d in &mut diags {
        let claim = claims.iter().find(|c| {
            c.code == d.code && c.site == d.site && c.key == d.key && c.severity == Some(d.severity)
        });
        d.verification = Some(match claim.map(|c| &c.verdict) {
            Some(Verdict::Present { from }) => Verification::Proved { from: *from },
            Some(Verdict::PresentCongruent {
                from,
                modulus,
                residues,
            }) => Verification::ProvedCongruent {
                from: *from,
                modulus: *modulus,
                residues: residues.clone(),
            },
            _ => Verification::Swept {
                min: ranks.min,
                max: hi,
            },
        });
    }

    let rc = RegionCert {
        region,
        eligible: true,
        reason: None,
        lcm: l,
        boundary: b,
        threshold,
        base_min: ranks.min,
        checked_max: hi,
        sites,
        outcomes: nonempty_outcomes(&outcomes),
        claims,
    };
    (diags, rc)
}

fn sort_diags(diags: &mut [Diag]) {
    // Same ordering commlint reports in: most severe first, then stable
    // source order.
    diags.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then(a.code.cmp(&b.code))
            .then(a.region.cmp(&b.region))
            .then(a.site.cmp(&b.site))
            .then(a.key.cmp(&b.key))
    });
}

/// Prove a list of regions directly (no pragma source). This is the entry
/// point the property tests drive with builder-made specs.
pub fn prove_regions(
    file: &str,
    regions: &[ParamsSpec],
    ranks: RankRange,
    vars: &HashMap<String, i64>,
) -> (Vec<Diag>, Certificate) {
    let site_spans = HashMap::new();
    let mut diags = Vec::new();
    let mut certs = Vec::new();
    for (ri, spec) in regions.iter().enumerate() {
        let (ds, rc) = prove_region(ri, spec, &site_spans, ranks, vars);
        diags.extend(ds);
        certs.push(rc);
    }
    sort_diags(&mut diags);
    let certificate = Certificate {
        schema: CERT_SCHEMA,
        file: file.to_string(),
        ranks,
        regions: certs,
    };
    (diags, certificate)
}

/// Prove every region of a parsed source. Parse-level diagnostics
/// (`CI000`) are syntactic and rank-count independent, so they are
/// stamped proved from the sweep minimum.
pub fn prove_parsed(
    file: &str,
    parsed: &Parsed,
    ranks: RankRange,
    vars: &HashMap<String, i64>,
) -> ProveReport {
    let site_spans: HashMap<u32, SrcSpan> = parsed
        .site_spans()
        .into_iter()
        .filter_map(|(site, span)| span.map(|sp| (site, sp)))
        .collect();
    let mut seen: HashSet<(LintCode, usize, Option<u32>, String)> = HashSet::new();
    let mut diags: Vec<Diag> = Vec::new();
    for d in &parsed.diagnostics {
        if let Some(mut diag) = map_parse_diag(d) {
            diag.verification = Some(Verification::Proved { from: ranks.min });
            if seen.insert((diag.code, diag.region, diag.site, diag.key.clone())) {
                diags.push(diag);
            }
        }
    }
    let regions: Vec<ParamsSpec> = parsed.items.iter().filter_map(region_view).collect();
    let mut certs = Vec::new();
    for (ri, spec) in regions.iter().enumerate() {
        let (ds, rc) = prove_region(ri, spec, &site_spans, ranks, vars);
        diags.extend(ds);
        certs.push(rc);
    }
    sort_diags(&mut diags);
    ProveReport {
        report: LintReport { ranks, diags },
        certificate: Certificate {
            schema: CERT_SCHEMA,
            file: file.to_string(),
            ranks,
            regions: certs,
        },
    }
}

/// Parse and prove one source, honoring the same `// @decl` / `// @var` /
/// `// @ranks` annotations `commlint` scans.
pub fn prove_source(
    file: &str,
    src: &str,
    symbols: &SymbolTable,
    opts: &LintOptions,
) -> Result<ProveReport, ParseError> {
    let ann = scan_annotations(src);
    let mut symbols = symbols.clone();
    commlint::apply_decls(&mut symbols, &ann);
    let mut vars = opts.vars.clone();
    vars.extend(ann.vars);
    let ranks = ann.ranks.unwrap_or(opts.ranks);
    let parsed = parse(src, &symbols)?;
    Ok(prove_parsed(file, &parsed, ranks, &vars))
}

/// Render the proof summary (region verdicts and claims) followed by the
/// diagnostics in `commlint`'s text format.
pub fn render_prove_text(path: &str, rep: &ProveReport) -> String {
    let mut out = String::new();
    for r in &rep.certificate.regions {
        if r.eligible {
            out.push_str(&format!(
                "{path}: region {}: in the affine-congruence class (period L={}, boundary \
                 B={}, threshold N0={}, checked {}..={})\n",
                r.region, r.lcm, r.boundary, r.threshold, r.base_min, r.checked_max
            ));
        } else {
            out.push_str(&format!(
                "{path}: region {}: outside the decidable class ({}); swept {}..={}\n",
                r.region,
                r.reason.as_deref().unwrap_or("unknown"),
                r.base_min,
                r.checked_max
            ));
        }
        for c in &r.claims {
            let site = match c.site {
                Some(s) => format!("site {s}"),
                None => "region".to_string(),
            };
            out.push_str(&format!(
                "{path}: region {}:   {} {} @{site} key `{}`: {}\n",
                r.region,
                c.code.code(),
                c.code.name(),
                c.key,
                c.verdict
            ));
        }
    }
    out.push_str(&commlint::render_text(path, &rep.report));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use commint::buffer::{BufMeta, ElemKind};
    use commint::clause::{ClauseSet, Severity};
    use commint::dir::P2pSpec;
    use commint::expr::RankExpr;
    use mpisim::dtype::BasicType;

    fn meta(name: &str, lo: usize, bytes: usize) -> BufMeta {
        BufMeta {
            name: name.to_string(),
            elem: ElemKind::Prim(BasicType::U8),
            len: bytes,
            addr: (lo, lo + bytes),
        }
    }

    fn p2p(clauses: ClauseSet) -> P2pSpec {
        P2pSpec {
            clauses,
            sbuf: vec![meta("s", 0, 8)],
            rbuf: vec![meta("r", 100, 8)],
            has_overlap_body: false,
            site: 1,
            spans: Default::default(),
        }
    }

    fn ring_spec() -> ParamsSpec {
        ParamsSpec {
            clauses: ClauseSet {
                sender: Some(
                    (RankExpr::rank() - RankExpr::lit(1) + RankExpr::nranks()) % RankExpr::nranks(),
                ),
                receiver: Some((RankExpr::rank() + RankExpr::lit(1)) % RankExpr::nranks()),
                ..ClauseSet::default()
            },
            body: vec![p2p(ClauseSet::default())],
            spans: Default::default(),
        }
    }

    #[test]
    fn ring_proves_for_all_n() {
        let ranks = RankRange { min: 2, max: 16 };
        let (diags, cert) = prove_regions("ring", &[ring_spec()], ranks, &HashMap::new());
        let r = &cert.regions[0];
        assert!(r.eligible, "{:?}", r.reason);
        assert_eq!(r.lcm, 1);
        // Ring params: sender (rank+nprocs-1) mod nprocs -> B = 3 (|1|+|1|+|1|)
        // + nprocs-modulus 1; receiver (rank+1) mod nprocs -> 2 + 1. B = 7.
        assert_eq!(r.boundary, 7);
        assert_eq!(r.threshold, 16);
        assert_eq!(r.checked_max, 19);
        // The advisory CI002 note is proved present for every N >= 2 at the
        // site (the region level, where nothing fires, gets its absence
        // claim) ...
        let ci002 = claims_of(r, LintCode::BlockingDeadlockCycle);
        assert_eq!(ci002.len(), 2);
        assert!(ci002
            .iter()
            .any(|c| c.site == Some(1) && c.verdict == Verdict::Present { from: 2 }));
        assert!(ci002
            .iter()
            .any(|c| c.site.is_none() && c.verdict == Verdict::Absent { from: 2 }));
        // ... and the four other properties are proved absent.
        for code in [
            LintCode::UnmatchedSend,
            LintCode::SizeMismatch,
            LintCode::SendwhenPairing,
            LintCode::ConsolidationUnsafeOverlap,
        ] {
            let cs = claims_of(r, code);
            assert!(!cs.is_empty(), "{code:?}");
            assert!(
                cs.iter()
                    .all(|c| matches!(c.verdict, Verdict::Absent { from: 2 })),
                "{code:?}: {cs:?}"
            );
        }
        // The lone diagnostic carries the quantified stamp.
        assert_eq!(diags.len(), 1);
        assert_eq!(
            diags[0].verification,
            Some(Verification::Proved { from: 2 })
        );
    }

    fn claims_of(r: &RegionCert, code: LintCode) -> Vec<&Claim> {
        r.claims.iter().filter(|c| c.code == code).collect()
    }

    #[test]
    fn off_by_one_yields_congruent_or_counterexample() {
        // receiver((rank+1) % (nprocs-1)): rank N-1 collides with rank 0's
        // target — unmatched traffic at every N with a concrete witness.
        let spec = ParamsSpec {
            clauses: ClauseSet {
                sender: Some(
                    (RankExpr::rank() - RankExpr::lit(1) + RankExpr::nranks()) % RankExpr::nranks(),
                ),
                receiver: Some(
                    (RankExpr::rank() + RankExpr::lit(1)) % (RankExpr::nranks() - RankExpr::lit(1)),
                ),
                ..ClauseSet::default()
            },
            body: vec![p2p(ClauseSet::default())],
            spans: Default::default(),
        };
        let ranks = RankRange { min: 2, max: 16 };
        let (diags, cert) = prove_regions("broken", &[spec], ranks, &HashMap::new());
        let r = &cert.regions[0];
        assert!(r.eligible, "{:?}", r.reason);
        let ci001 = claims_of(r, LintCode::UnmatchedSend);
        assert!(
            ci001.iter().any(|c| matches!(
                c.verdict,
                Verdict::Present { .. } | Verdict::PresentCongruent { .. }
            )),
            "{ci001:?}"
        );
        // The report carries a concrete (N, rank) counterexample commlint's
        // sweep can reproduce.
        let d = diags
            .iter()
            .find(|d| d.code == LintCode::UnmatchedSend && d.severity == Severity::Error)
            .expect("CI001");
        let w = d.witness.as_ref().expect("witness");
        assert!(w.nranks >= 2 && !w.ranks.is_empty());
    }

    #[test]
    fn opaque_region_degrades_to_sweep() {
        let spec = ParamsSpec {
            clauses: ClauseSet {
                sender: Some(RankExpr::opaque("route", |e| (e.rank + 1) % e.nranks)),
                receiver: Some((RankExpr::rank() + RankExpr::lit(1)) % RankExpr::nranks()),
                ..ClauseSet::default()
            },
            body: vec![p2p(ClauseSet::default())],
            spans: Default::default(),
        };
        let ranks = RankRange { min: 2, max: 8 };
        let (diags, cert) = prove_regions("opaque", &[spec], ranks, &HashMap::new());
        let r = &cert.regions[0];
        assert!(!r.eligible);
        assert!(
            r.reason.as_deref().unwrap().contains("opaque"),
            "{:?}",
            r.reason
        );
        assert_eq!((r.base_min, r.checked_max), (2, 8));
        assert!(r
            .claims
            .iter()
            .all(|c| matches!(c.verdict, Verdict::Swept { min: 2, max: 8 })));
        assert!(diags
            .iter()
            .all(|d| d.verification == Some(Verification::Swept { min: 2, max: 8 })));
        // The CI008 opaque diagnostic fires exactly once for the site.
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.code == LintCode::UnresolvedClause && d.key.ends_with(":opaque"))
                .count(),
            1
        );
    }

    #[test]
    fn certificate_predicts_concrete_outcomes() {
        // The certificate's predict() must agree with lint_region_at at
        // every count, including far beyond the checked window.
        let spec = ring_spec();
        let ranks = RankRange { min: 2, max: 16 };
        let (_, cert) = prove_regions("ring", std::slice::from_ref(&spec), ranks, &HashMap::new());
        let r = &cert.regions[0];
        for n in 2..=64usize {
            let mut fired: Vec<Finding> = lint_region_at(0, &spec, n, &HashMap::new())
                .iter()
                .map(finding_of)
                .collect();
            fired.sort();
            fired.dedup();
            assert_eq!(r.predict(n).expect("covered"), fired, "N={n}");
        }
    }

    #[test]
    fn source_level_prove_and_render() {
        let src = "\
// @decl buf1: double[16]
// @decl buf2: double[16]
// @ranks 2..=16
#pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) \
  sbuf(buf1) rbuf(buf2) count(16)";
        let rep = prove_source(
            "ring.comm",
            src,
            &SymbolTable::new(),
            &LintOptions::default(),
        )
        .unwrap();
        assert!(rep.certificate.regions[0].eligible);
        assert!(!rep.report.gate_fails());
        let text = render_prove_text("ring.comm", &rep);
        assert!(text.contains("affine-congruence class"), "{text}");
        assert!(text.contains("absent ∀N≥2"), "{text}");
        assert!(text.contains("[proved ∀N≥2]"), "{text}");
        let json = cert_is_stable(&rep.certificate);
        assert!(json.contains("\"kind\": \"absent\""), "{json}");
    }

    fn cert_is_stable(cert: &Certificate) -> String {
        let a = cert.to_json();
        let b = cert.to_json();
        assert_eq!(a, b);
        a
    }
}
