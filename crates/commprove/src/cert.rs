//! Machine-checkable certificates for parametric lint verdicts.
//!
//! A certificate records, per region, the case analysis that justifies a
//! quantified claim: the normal forms of every clause, the case-split
//! parameters (`lcm`, `boundary`, `threshold`), the concrete lint outcomes
//! at every rank count the prover checked, and the claims extrapolated
//! from them. The independent checker ([`crate::check`]) re-derives the
//! parameters from source, replays [`commint::diag::lint_region_at`] at
//! every listed count, and verifies the claims are entailed — so a prover
//! bug cannot silently upgrade a verdict.
//!
//! Rank counts in `base_min..=checked_max` with no `outcomes` entry fired
//! nothing: empty outcomes are omitted, not implied unknown.

use std::fmt;

use commint::clause::Severity;
use commint::diag::{LintCode, SrcSpan};
use commlint::json::escape;
use commlint::RankRange;

/// Certificate schema version (kept in lockstep with the commlint JSON
/// report schema).
pub const CERT_SCHEMA: u32 = 2;

/// One fired lint finding, as recorded in an outcome: the sweep-merge
/// identity plus severity (severity can differ across rank counts for the
/// same identity, e.g. CI002's note/warning split).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Lint code.
    pub code: LintCode,
    /// `comm_p2p` site id, `None` for region-level findings.
    pub site: Option<u32>,
    /// Stable identity key within `(code, site)`.
    pub key: String,
    /// Severity at this rank count.
    pub severity: Severity,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code.code())?;
        match self.site {
            Some(s) => write!(f, "@site{}", s)?,
            None => write!(f, "@region")?,
        }
        write!(f, ":{} ({})", self.key, self.severity.keyword())
    }
}

/// Normal forms of one `comm_p2p` site's clauses, for provenance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SiteCert {
    /// Site id.
    pub site: u32,
    /// Directive span in the pragma source, when available.
    pub span: Option<SrcSpan>,
    /// `(clause keyword, normal form)` pairs in clause order.
    pub forms: Vec<(String, String)>,
}

/// Concrete lint outcome at one rank count: the findings that fired.
/// Only non-empty outcomes are recorded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Outcome {
    /// Communicator size.
    pub nranks: usize,
    /// Findings, sorted.
    pub fired: Vec<Finding>,
}

/// A quantified (or sweep-limited) claim about one finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The finding fires at no `N >= from`.
    Absent {
        /// Smallest size the claim covers.
        from: usize,
    },
    /// The finding fires at every `N >= from`.
    Present {
        /// Smallest size the claim covers.
        from: usize,
    },
    /// For `N >= from`, the finding fires exactly when `N mod modulus`
    /// is in `residues`.
    PresentCongruent {
        /// Smallest size the claim covers.
        from: usize,
        /// Case-split modulus (the region's `lcm`).
        modulus: usize,
        /// Firing residues of `N`.
        residues: Vec<usize>,
    },
    /// Only the finite sweep `min..=max` was checked (ineligible region).
    Swept {
        /// First swept size.
        min: usize,
        /// Last swept size.
        max: usize,
    },
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Absent { from } => write!(f, "absent ∀N≥{from}"),
            Verdict::Present { from } => write!(f, "present ∀N≥{from}"),
            Verdict::PresentCongruent {
                from,
                modulus,
                residues,
            } => {
                let rs = residues
                    .iter()
                    .map(|r| r.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                write!(f, "present ∀N≥{from} with N≡{rs} (mod {modulus})")
            }
            Verdict::Swept { min, max } => write!(f, "swept {min}..={max}"),
        }
    }
}

/// One claim: a finding pattern plus its verdict. Absence claims use
/// `key == "*"` (any key under the `(code, site)`) and carry no severity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Claim {
    /// Lint code the claim is about.
    pub code: LintCode,
    /// Site, `None` for region-level.
    pub site: Option<u32>,
    /// Identity key, or `"*"` for an absence claim over the whole
    /// `(code, site)`.
    pub key: String,
    /// Severity of the claimed finding (absent for absence claims).
    pub severity: Option<Severity>,
    /// The verdict.
    pub verdict: Verdict,
}

/// Per-region case analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionCert {
    /// Region index within the file (0-based).
    pub region: usize,
    /// Whether every clause normalized into the affine-congruence class.
    pub eligible: bool,
    /// Why not, when ineligible (also set when the prover downgraded an
    /// eligible region whose outcomes failed the periodicity check).
    pub reason: Option<String>,
    /// Case-split period `L` (1 for ineligible regions).
    pub lcm: usize,
    /// Boundary width `B`.
    pub boundary: usize,
    /// Threshold `N0 = max(base_min, 2B + 2)`: outcomes are claimed
    /// periodic in `N` with period `lcm` from here up.
    pub threshold: usize,
    /// First rank count checked (the configured sweep minimum).
    pub base_min: usize,
    /// Last rank count checked (`threshold + PERIODS * lcm` when eligible,
    /// the sweep maximum otherwise).
    pub checked_max: usize,
    /// Per-site clause normal forms (empty for ineligible regions).
    pub sites: Vec<SiteCert>,
    /// Non-empty concrete outcomes, ascending `nranks`.
    pub outcomes: Vec<Outcome>,
    /// Claims over the findings.
    pub claims: Vec<Claim>,
}

impl RegionCert {
    /// Findings recorded at rank count `n` (empty when none fired).
    pub fn outcome_at(&self, n: usize) -> &[Finding] {
        self.outcomes
            .iter()
            .find(|o| o.nranks == n)
            .map(|o| o.fired.as_slice())
            .unwrap_or(&[])
    }

    /// What the certificate says fires at rank count `n`: the recorded
    /// outcome inside the checked window, the claims' extrapolation above
    /// it (eligible regions only — `None` means the certificate makes no
    /// statement about `n`).
    pub fn predict(&self, n: usize) -> Option<Vec<Finding>> {
        if n < self.base_min {
            return None;
        }
        if n <= self.checked_max {
            return Some(self.outcome_at(n).to_vec());
        }
        if !self.eligible {
            return None;
        }
        let mut fired = Vec::new();
        for c in &self.claims {
            let hit = match &c.verdict {
                Verdict::Present { from } => n >= *from,
                Verdict::PresentCongruent {
                    from,
                    modulus,
                    residues,
                } => n >= *from && residues.contains(&(n % *modulus.max(&1))),
                Verdict::Absent { .. } | Verdict::Swept { .. } => false,
            };
            if hit {
                fired.push(Finding {
                    code: c.code,
                    site: c.site,
                    key: c.key.clone(),
                    severity: c.severity.unwrap_or(Severity::Note),
                });
            }
        }
        fired.sort();
        Some(fired)
    }
}

/// A full certificate for one pragma source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// Schema version ([`CERT_SCHEMA`]).
    pub schema: u32,
    /// Source path as given to the prover.
    pub file: String,
    /// Configured sweep range (per-file `@ranks` already applied).
    pub ranks: RankRange,
    /// One entry per linted region, in source order.
    pub regions: Vec<RegionCert>,
}

// ---------------------------------------------------------------------------
// JSON rendering (hand-rolled, stable, golden-diffable)
// ---------------------------------------------------------------------------

fn opt_str(s: &Option<String>) -> String {
    match s {
        Some(s) => format!("\"{}\"", escape(s)),
        None => "null".to_string(),
    }
}

fn site_json(s: &Option<u32>) -> String {
    match s {
        Some(s) => s.to_string(),
        None => "null".to_string(),
    }
}

fn span_json(s: &Option<SrcSpan>) -> String {
    match s {
        Some(sp) => format!("{{ \"line\": {}, \"col\": {} }}", sp.line, sp.col),
        None => "null".to_string(),
    }
}

fn finding_json(f: &Finding) -> String {
    format!(
        "{{ \"code\": \"{}\", \"severity\": \"{}\", \"site\": {}, \"key\": \"{}\" }}",
        f.code.code(),
        f.severity.keyword(),
        site_json(&f.site),
        escape(&f.key)
    )
}

fn verdict_json(v: &Verdict) -> String {
    match v {
        Verdict::Absent { from } => format!("{{ \"kind\": \"absent\", \"from\": {from} }}"),
        Verdict::Present { from } => format!("{{ \"kind\": \"present\", \"from\": {from} }}"),
        Verdict::PresentCongruent {
            from,
            modulus,
            residues,
        } => {
            let rs: Vec<String> = residues.iter().map(|r| r.to_string()).collect();
            format!(
                "{{ \"kind\": \"present-congruent\", \"from\": {from}, \"modulus\": {modulus}, \
                 \"residues\": [{}] }}",
                rs.join(", ")
            )
        }
        Verdict::Swept { min, max } => {
            format!("{{ \"kind\": \"swept\", \"min\": {min}, \"max\": {max} }}")
        }
    }
}

fn claim_json(c: &Claim, indent: &str) -> String {
    let severity = match c.severity {
        Some(s) => format!("\"{}\"", s.keyword()),
        None => "null".to_string(),
    };
    format!(
        "{indent}{{ \"code\": \"{}\", \"site\": {}, \"key\": \"{}\", \"severity\": {severity}, \
         \"verdict\": {} }}",
        c.code.code(),
        site_json(&c.site),
        escape(&c.key),
        verdict_json(&c.verdict)
    )
}

fn list_json(entries: Vec<String>, indent: &str) -> String {
    if entries.is_empty() {
        "[]".to_string()
    } else {
        format!("[\n{}\n{indent}]", entries.join(",\n"))
    }
}

fn region_json(r: &RegionCert, indent: &str) -> String {
    let sub = format!("{indent}  ");
    let subsub = format!("{indent}    ");
    let sites = list_json(
        r.sites
            .iter()
            .map(|s| {
                let forms: Vec<String> = s
                    .forms
                    .iter()
                    .map(|(kw, nf)| format!("[\"{}\", \"{}\"]", escape(kw), escape(nf)))
                    .collect();
                format!(
                    "{subsub}{{ \"site\": {}, \"span\": {}, \"forms\": [{}] }}",
                    s.site,
                    span_json(&s.span),
                    forms.join(", ")
                )
            })
            .collect(),
        &sub,
    );
    let outcomes = list_json(
        r.outcomes
            .iter()
            .map(|o| {
                let fired: Vec<String> = o.fired.iter().map(finding_json).collect();
                format!(
                    "{subsub}{{ \"nranks\": {}, \"fired\": [{}] }}",
                    o.nranks,
                    fired.join(", ")
                )
            })
            .collect(),
        &sub,
    );
    let claims = list_json(
        r.claims.iter().map(|c| claim_json(c, &subsub)).collect(),
        &sub,
    );
    format!(
        "{indent}{{\n\
         {sub}\"region\": {},\n\
         {sub}\"eligible\": {},\n\
         {sub}\"reason\": {},\n\
         {sub}\"lcm\": {},\n\
         {sub}\"boundary\": {},\n\
         {sub}\"threshold\": {},\n\
         {sub}\"base_min\": {},\n\
         {sub}\"checked_max\": {},\n\
         {sub}\"sites\": {sites},\n\
         {sub}\"outcomes\": {outcomes},\n\
         {sub}\"claims\": {claims}\n\
         {indent}}}",
        r.region,
        r.eligible,
        opt_str(&r.reason),
        r.lcm,
        r.boundary,
        r.threshold,
        r.base_min,
        r.checked_max,
    )
}

impl Certificate {
    /// Render as a stable, pretty-printed JSON document (trailing newline,
    /// two-space indent) suitable for golden-file byte diffs.
    pub fn to_json(&self) -> String {
        let regions = list_json(
            self.regions
                .iter()
                .map(|r| region_json(r, "    "))
                .collect(),
            "  ",
        );
        format!(
            "{{\n  \"schema\": {},\n  \"file\": \"{}\",\n  \"ranks\": {{ \"min\": {}, \"max\": {} }},\n  \"regions\": {regions}\n}}\n",
            self.schema,
            escape(&self.file),
            self.ranks.min,
            self.ranks.max,
        )
    }
}

/// Parse a `CIxxx` code string back into a [`LintCode`].
pub fn code_from_str(s: &str) -> Option<LintCode> {
    LintCode::ALL.into_iter().find(|c| c.code() == s)
}

/// Parse a severity keyword back into a [`Severity`].
pub fn severity_from_keyword(s: &str) -> Option<Severity> {
    [Severity::Note, Severity::Warning, Severity::Error]
        .into_iter()
        .find(|sev| sev.keyword() == s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> RegionCert {
        RegionCert {
            region: 0,
            eligible: true,
            reason: None,
            lcm: 2,
            boundary: 3,
            threshold: 8,
            base_min: 2,
            checked_max: 14,
            sites: vec![SiteCert {
                site: 1,
                span: None,
                forms: vec![("sender".into(), "rank-1".into())],
            }],
            outcomes: vec![Outcome {
                nranks: 9,
                fired: vec![Finding {
                    code: LintCode::UnmatchedSend,
                    site: Some(1),
                    key: "p0:sends".into(),
                    severity: Severity::Error,
                }],
            }],
            claims: vec![Claim {
                code: LintCode::UnmatchedSend,
                site: Some(1),
                key: "p0:sends".into(),
                severity: Some(Severity::Error),
                verdict: Verdict::PresentCongruent {
                    from: 8,
                    modulus: 2,
                    residues: vec![1],
                },
            }],
        }
    }

    #[test]
    fn predict_uses_outcomes_then_extrapolates() {
        let r = region();
        assert_eq!(r.predict(1), None, "below base_min");
        assert_eq!(r.predict(2).unwrap(), vec![], "checked, nothing fired");
        assert_eq!(r.predict(9).unwrap().len(), 1, "recorded outcome");
        // Above checked_max: congruence extrapolation (odd fires).
        assert_eq!(r.predict(101).unwrap().len(), 1);
        assert_eq!(r.predict(100).unwrap(), vec![]);
    }

    #[test]
    fn json_round_keywords() {
        assert_eq!(code_from_str("CI004"), Some(LintCode::SizeMismatch));
        assert_eq!(code_from_str("CI999"), None);
        assert_eq!(severity_from_keyword("warning"), Some(Severity::Warning));
        let cert = Certificate {
            schema: CERT_SCHEMA,
            file: "x.comm".into(),
            ranks: RankRange { min: 2, max: 16 },
            regions: vec![region()],
        };
        let doc = cert.to_json();
        assert!(doc.contains("\"schema\": 2"), "{doc}");
        assert!(doc.contains("\"kind\": \"present-congruent\""), "{doc}");
        assert!(doc.ends_with("}\n"), "{doc}");
    }
}
