//! `commprove` — prove communication-intent properties for all rank counts.
//!
//! ```text
//! commprove [--ranks LO..=HI] [--format text|json] [--var name=value]...
//!           [--buf name:type:len]... [--cert-dir DIR] [--check] FILE...
//! ```
//!
//! Exit status: 0 clean (notes allowed), 1 any warning-or-above finding,
//! 2 usage or parse error, 3 certificate check failure (`--check`).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use commlint::{basic_type_of, json::render_json, LintOptions, RankRange};
use commprove::check::check_cert_bytes;
use commprove::{prove_source, render_prove_text};
use pragma_front::SymbolTable;

const USAGE: &str = "usage: commprove [--ranks LO..=HI] [--format text|json] \
[--var name=value]... [--buf name:type:len]... [--cert-dir DIR] [--check] FILE...";

const HELP: &str = "\
commprove — prove communication-intent properties for all rank counts.

usage: commprove [--ranks LO..=HI] [--format text|json]
                 [--var name=value]... [--buf name:type:len]...
                 [--cert-dir DIR] [--check] FILE...

For specs in the affine-congruence class, every commlint finding is decided
parametrically in N: verdicts read `proved ∀N≥N0` (or `proved ∀N≥N0,
N≡r (mod L)` when the answer depends on N's residue) instead of commlint's
`swept LO..=HI`, and each file gets a machine-checkable certificate.
Out-of-class specs (opaque host code, unbound variables, non-affine
expressions) degrade to the concrete sweep over --ranks, exactly as
commlint behaves.

flags:
  --ranks LO..=HI   sweep range for out-of-class regions and the smallest
                    size quantified verdicts cover (default 2..=16;
                    per-file // @ranks overrides)
  --format FMT      text (default; proof summary + findings) or json
                    (the commlint schema-2 report document)
  --var, --buf      bind clause variables / declare buffers, as commlint
  --cert-dir DIR    write one <stem>.cert.json certificate per input
                    (with --check: read certificates from here instead)
  --check           validate existing certificates against the sources:
                    re-derive the case analysis, replay every checked
                    rank count, and verify each claim is entailed

exit status:
  0  clean — no finding above note severity (the CI gate passes)
  1  at least one warning- or error-severity finding (the CI gate fails)
  2  usage error, unreadable input, or pragma parse error
  3  certificate check failure (--check)";

fn fail(msg: &str) -> ExitCode {
    eprintln!("commprove: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn cert_path(dir: &Path, file: &str) -> PathBuf {
    let stem = Path::new(file)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "out".to_string());
    dir.join(format!("{stem}.cert.json"))
}

fn main() -> ExitCode {
    let mut opts = LintOptions::default();
    let mut symbols = SymbolTable::new();
    let mut format = "text".to_string();
    let mut cert_dir: Option<PathBuf> = None;
    let mut check = false;
    let mut files: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ranks" => {
                let Some(spec) = args.next() else {
                    return fail("--ranks needs a value");
                };
                let Some(r) = RankRange::parse(&spec) else {
                    return fail(&format!("bad --ranks `{spec}` (want LO..=HI, LO>=1)"));
                };
                opts.ranks = r;
            }
            "--format" => {
                let Some(f) = args.next() else {
                    return fail("--format needs a value");
                };
                if f != "text" && f != "json" {
                    return fail(&format!("bad --format `{f}` (want text or json)"));
                }
                format = f;
            }
            "--var" => {
                let Some(spec) = args.next() else {
                    return fail("--var needs name=value");
                };
                let Some((name, value)) = spec.split_once('=') else {
                    return fail(&format!("bad --var `{spec}` (want name=value)"));
                };
                let Ok(value) = value.trim().parse::<i64>() else {
                    return fail(&format!("bad --var value in `{spec}`"));
                };
                opts.vars.insert(name.trim().to_string(), value);
            }
            "--buf" => {
                let Some(spec) = args.next() else {
                    return fail("--buf needs name:type:len");
                };
                let parts: Vec<&str> = spec.split(':').collect();
                let [name, ty, len] = parts.as_slice() else {
                    return fail(&format!("bad --buf `{spec}` (want name:type:len)"));
                };
                let Some(bt) = basic_type_of(ty) else {
                    return fail(&format!("unknown --buf type `{ty}`"));
                };
                let Ok(len) = len.parse::<usize>() else {
                    return fail(&format!("bad --buf length in `{spec}`"));
                };
                symbols.declare_prim(name, bt, len);
            }
            "--cert-dir" => {
                let Some(dir) = args.next() else {
                    return fail("--cert-dir needs a directory");
                };
                cert_dir = Some(PathBuf::from(dir));
            }
            "--check" => check = true,
            "--help" | "-h" => {
                println!("{HELP}");
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with("--") => {
                return fail(&format!("unknown flag `{arg}`"));
            }
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        return fail("no input files");
    }
    if check && cert_dir.is_none() {
        return fail("--check needs --cert-dir to locate the certificates");
    }

    if check {
        let dir = cert_dir.unwrap();
        let mut failed = false;
        for path in &files {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => return fail(&format!("cannot read `{path}`: {e}")),
            };
            let cpath = cert_path(&dir, path);
            let doc = match std::fs::read(&cpath) {
                Ok(s) => s,
                Err(e) => return fail(&format!("cannot read `{}`: {e}", cpath.display())),
            };
            // The binary is a thin wrapper over the library checker — the
            // same entry point the analysis daemon validates its
            // certificate store with.
            match check_cert_bytes(&src, &symbols, &opts, &doc) {
                Ok(cert) => println!(
                    "commprove: {path}: certificate OK ({} region(s), {} claim(s))",
                    cert.regions.len(),
                    cert.regions.iter().map(|r| r.claims.len()).sum::<usize>()
                ),
                Err(errors) => {
                    failed = true;
                    for e in errors {
                        eprintln!("commprove: {path}: {e}");
                    }
                }
            }
        }
        return if failed {
            ExitCode::from(3)
        } else {
            ExitCode::SUCCESS
        };
    }

    let mut reports = Vec::new();
    for path in &files {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => return fail(&format!("cannot read `{path}`: {e}")),
        };
        match prove_source(path, &src, &symbols, &opts) {
            Ok(rep) => reports.push((path.clone(), rep)),
            Err(e) => {
                eprintln!("commprove: {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if let Some(dir) = &cert_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            return fail(&format!("cannot create `{}`: {e}", dir.display()));
        }
        for (path, rep) in &reports {
            let cpath = cert_path(dir, path);
            if let Err(e) = std::fs::write(&cpath, rep.certificate.to_json()) {
                return fail(&format!("cannot write `{}`: {e}", cpath.display()));
            }
        }
    }

    let gate_fails = reports.iter().any(|(_, r)| r.report.gate_fails());
    if format == "json" {
        let lint_reports: Vec<(String, commlint::LintReport)> = reports
            .iter()
            .map(|(p, r)| (p.clone(), r.report.clone()))
            .collect();
        print!("{}", render_json(&lint_reports));
    } else {
        for (path, rep) in &reports {
            print!("{}", render_prove_text(path, rep));
        }
        let proved: usize = reports
            .iter()
            .flat_map(|(_, r)| &r.certificate.regions)
            .filter(|r| r.eligible)
            .count();
        let total: usize = reports
            .iter()
            .map(|(_, r)| r.certificate.regions.len())
            .sum();
        eprintln!(
            "commprove: {} file(s), {proved}/{total} region(s) decided for all N",
            reports.len()
        );
    }
    if gate_fails {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
