//! # pragma-front — source-level front-end for the commint directives
//!
//! Parses the paper's literal directive syntax (`#pragma comm_parameters`,
//! `#pragma comm_p2p`, Listings 1–3/5/7 of the paper) into the `commint`
//! IR, runs the compiler-style analyses over it, and renders the translated
//! library calls per target — the role the Open64 lowering pass plays in
//! the paper.
//!
//! ```
//! use pragma_front::{analyze, SymbolTable};
//! use mpisim::dtype::BasicType;
//!
//! let mut syms = SymbolTable::new();
//! syms.declare_prim("buf1", BasicType::F64, 16)
//!     .declare_prim("buf2", BasicType::F64, 16);
//! let report = analyze(
//!     "#pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) \
//!      sbuf(buf1) rbuf(buf2)",
//!     &syms,
//!     8,
//! )
//! .unwrap();
//! assert!(report.render().contains("cyclic shift by 1"));
//! ```

pub mod lex;
pub mod parse;

use std::collections::HashMap;

use commint::analysis::{
    buffer_independence, classify, deadlock_report, resolve_graph, sync_report, Pattern,
};
use commint::clause::{Diagnostic, Target};
use commint::dir::ParamsSpec;
use commint::lower::lower;

pub use parse::{parse, Item, ParseError, Parsed, SymbolTable};

/// Analysis results for one `comm_p2p` instance.
#[derive(Clone, Debug)]
pub struct P2pReport {
    /// Rendered source location hint (site id). This is the same
    /// `netsim::SiteId` namespace carried on runtime trace events and
    /// metrics (and on `commlint` report JSON), so static findings and
    /// dynamic profiles for a directive join on this value.
    pub site: u32,
    /// Classified pattern at the requested rank count.
    pub pattern: Pattern,
    /// Unmatched sends/receives (statically detected mismatches).
    pub unmatched_sends: usize,
    pub unmatched_recvs: usize,
    /// Ranks unresolvable without executing (opaque/unknown vars).
    pub unresolved_ranks: usize,
    /// The generated code is structurally deadlock-free.
    pub nonblocking_safe: bool,
}

/// Whole-source analysis report.
#[derive(Clone, Debug)]
pub struct Report {
    /// Parse/validation diagnostics.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-region: p2p reports plus consolidation info.
    pub regions: Vec<RegionReport>,
    /// Collective-directive reports.
    pub collectives: Vec<CollReport>,
}

/// Analysis of one collective directive.
#[derive(Clone, Debug)]
pub struct CollReport {
    /// Kind keyword.
    pub kind: String,
    /// Resolved participant count at the analyzed rank count.
    pub group_size: usize,
    /// Total payload bytes moved per execution (sum over participants).
    pub volume_bytes: usize,
}

/// Per-region analysis.
#[derive(Clone, Debug)]
pub struct RegionReport {
    /// Per-instance analyses.
    pub p2ps: Vec<P2pReport>,
    /// Whether buffers across the region's p2ps are independent (sync
    /// consolidation legal).
    pub buffers_independent: bool,
    /// Wait calls a per-request translation would make on the busiest rank.
    pub naive_wait_calls: usize,
    /// Calls after consolidation.
    pub consolidated_calls: usize,
}

impl Report {
    /// Render a human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{d}\n"));
        }
        for (i, r) in self.regions.iter().enumerate() {
            out.push_str(&format!("region #{i}:\n"));
            out.push_str(&format!(
                "  buffers independent: {} (sync consolidation {})\n",
                r.buffers_independent,
                if r.buffers_independent {
                    "legal"
                } else {
                    "suppressed"
                }
            ));
            out.push_str(&format!(
                "  sync calls: {} naive -> {} consolidated\n",
                r.naive_wait_calls, r.consolidated_calls
            ));
            for p in &r.p2ps {
                out.push_str(&format!(
                    "  p2p site {}: pattern = {}, unmatched sends/recvs = {}/{}, unresolved ranks = {}, nonblocking-safe = {}\n",
                    p.site,
                    render_pattern(p.pattern),
                    p.unmatched_sends,
                    p.unmatched_recvs,
                    p.unresolved_ranks,
                    p.nonblocking_safe,
                ));
            }
        }
        for c in &self.collectives {
            out.push_str(&format!(
                "collective {}: group of {}, {} bytes per execution\n",
                c.kind, c.group_size, c.volume_bytes
            ));
        }
        out
    }
}

fn render_pattern(p: Pattern) -> String {
    match p {
        Pattern::Empty => "empty".to_string(),
        Pattern::CyclicShift { k } => format!("cyclic shift by {k} (ring)"),
        Pattern::LinearShift { k } => format!("linear shift by {k}"),
        Pattern::DisjointPairs => "disjoint sender/receiver pairs".to_string(),
        Pattern::FanOut { root } => format!("fan-out from rank {root}"),
        Pattern::FanIn { root } => format!("fan-in to rank {root}"),
        Pattern::Exchange => "pairwise exchange".to_string(),
        Pattern::Irregular => "irregular".to_string(),
    }
}

fn region_of(item: &Item) -> Option<ParamsSpec> {
    match item {
        Item::Region(r) => Some(r.clone()),
        Item::P2p(p) => Some(ParamsSpec {
            clauses: Default::default(),
            body: vec![p.clone()],
            spans: p.spans.clone(),
        }),
        Item::Coll(_) => None,
    }
}

fn coll_report(
    spec: &commint::dir::CollSpec,
    nranks: usize,
    vars: &HashMap<String, i64>,
) -> CollReport {
    let mut group = 0usize;
    for r in 0..nranks {
        let env = commint::expr::EvalEnv {
            rank: r as i64,
            nranks: nranks as i64,
            vars: vars.into(),
        };
        let participates = match &spec.groupwhen {
            Some(c) => c.eval(&env).unwrap_or(false),
            None => true,
        };
        if participates {
            group += 1;
        }
    }
    let count = spec
        .count
        .as_ref()
        .and_then(|e| {
            e.eval(&commint::expr::EvalEnv {
                rank: 0,
                nranks: nranks as i64,
                vars: vars.into(),
            })
            .ok()
        })
        .map(|v| v.max(0) as usize)
        .or_else(|| spec.sbuf.iter().chain(&spec.rbuf).map(|b| b.len).min())
        .unwrap_or(0);
    let elem = spec
        .sbuf
        .first()
        .or_else(|| spec.rbuf.first())
        .map(|b| b.elem.packed_size())
        .unwrap_or(1);
    use commint::coll::CollKind;
    let volume = match spec.kind {
        CollKind::Bcast | CollKind::Scatter | CollKind::Gather | CollKind::Reduce(_) => {
            group.saturating_sub(1) * count * elem
        }
        CollKind::AllToAll => group * group.saturating_sub(1) * count * elem,
    };
    CollReport {
        kind: spec.kind.keyword().to_string(),
        group_size: group,
        volume_bytes: volume,
    }
}

/// Parse and analyze pragma source at a given rank count.
pub fn analyze(src: &str, symbols: &SymbolTable, nranks: usize) -> Result<Report, ParseError> {
    analyze_with_vars(src, symbols, nranks, &HashMap::new())
}

/// [`analyze`] with clause variables bound.
pub fn analyze_with_vars(
    src: &str,
    symbols: &SymbolTable,
    nranks: usize,
    vars: &HashMap<String, i64>,
) -> Result<Report, ParseError> {
    let parsed = parse(src, symbols)?;
    let mut regions = Vec::new();
    let mut collectives = Vec::new();
    for item in &parsed.items {
        if let Item::Coll(c) = item {
            collectives.push(coll_report(c, nranks, vars));
            continue;
        }
        let spec = region_of(item).expect("non-coll items have a region view");
        let independence = buffer_independence(&spec);
        let sync = sync_report(&spec, nranks, vars);
        let mut p2ps = Vec::new();
        for p in &spec.body {
            let g = resolve_graph(p, Some(&spec.clauses), nranks, vars);
            let dl = deadlock_report(&g);
            p2ps.push(P2pReport {
                site: p.site,
                pattern: classify(&g, nranks),
                unmatched_sends: g.unmatched_sends().len(),
                unmatched_recvs: g.unmatched_recvs().len(),
                unresolved_ranks: g.unresolved.len(),
                nonblocking_safe: dl.nonblocking_safe,
            });
        }
        regions.push(RegionReport {
            p2ps,
            buffers_independent: independence.independent(),
            naive_wait_calls: sync.naive_wait_calls,
            consolidated_calls: sync.consolidated_calls,
        });
    }
    Ok(Report {
        diagnostics: parsed.diagnostics,
        regions,
        collectives,
    })
}

/// Sites pinned by `// @pin` source annotations: each pin comment applies
/// to the next directive below it (by line), and marks that site as
/// off-limits to the tuner — `commtune` must emit `Keep` for it and later
/// passes must not change it. Returns the pinned site ids in source order;
/// pins with no directive below them are ignored (they pin nothing).
pub fn pinned_sites(src: &str, parsed: &Parsed) -> Vec<u32> {
    let spans = parsed.site_spans();
    let mut pinned = Vec::new();
    for (i, line) in src.lines().enumerate() {
        let lineno = i + 1;
        let Some(comment) = line.split("//").nth(1) else {
            continue;
        };
        if !comment.split_whitespace().any(|w| w == "@pin") {
            continue;
        }
        // The nearest directive at or below the pin line.
        let target = spans
            .iter()
            .filter_map(|(site, sp)| sp.as_ref().map(|s| (*site, s.line)))
            .filter(|&(_, l)| l >= lineno)
            .min_by_key(|&(_, l)| l);
        if let Some((site, _)) = target {
            if !pinned.contains(&site) {
                pinned.push(site);
            }
        }
    }
    pinned
}

/// Parse pragma source and render the translated library calls for each
/// directive under `target` — the paper's compiler lowering, as text.
pub fn translate(src: &str, symbols: &SymbolTable, target: Target) -> Result<String, ParseError> {
    let parsed = parse(src, symbols)?;
    let mut out = String::new();
    for (i, item) in parsed.items.iter().enumerate() {
        out.push_str(&format!(
            "/* ===== directive #{i} -> {} ===== */\n",
            target.keyword()
        ));
        match region_of(item) {
            Some(spec) => out.push_str(&lower(&spec, target).render()),
            None => {
                let Item::Coll(c) = item else { unreachable!() };
                out.push_str(&commint::lower::lower_coll(c, target).render());
            }
        }
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::dtype::BasicType;

    fn syms() -> SymbolTable {
        let mut s = SymbolTable::new();
        s.declare_prim("buf1", BasicType::F64, 16)
            .declare_prim("buf2", BasicType::F64, 16);
        s
    }

    const RING: &str = "#pragma comm_p2p sender((rank-1+nprocs)%nprocs) \
                        receiver((rank+1)%nprocs) sbuf(buf1) rbuf(buf2)";

    #[test]
    fn analyze_ring_end_to_end() {
        let report = analyze(RING, &syms(), 8).unwrap();
        assert_eq!(report.regions.len(), 1);
        let p = &report.regions[0].p2ps[0];
        assert_eq!(p.pattern, Pattern::CyclicShift { k: 1 });
        assert_eq!(p.unmatched_sends, 0);
        assert!(p.nonblocking_safe);
        assert!(report.render().contains("cyclic shift by 1"));
    }

    #[test]
    fn translate_ring_to_all_targets() {
        let mpi2 = translate(RING, &syms(), Target::Mpi2Side).unwrap();
        assert!(mpi2.contains("MPI_Isend(buf1"));
        assert!(mpi2.contains("MPI_Waitall"));

        let mpi1 = translate(RING, &syms(), Target::Mpi1Side).unwrap();
        assert!(mpi1.contains("MPI_Put(buf1"));
        assert!(mpi1.contains("MPI_Win_fence"));

        let shmem = translate(RING, &syms(), Target::Shmem).unwrap();
        assert!(shmem.contains("shmem_put64(buf1_sym"));
        assert!(shmem.contains("shmem_barrier_all"));
    }

    #[test]
    fn mismatched_program_reported() {
        let src = "#pragma comm_p2p sender(rank-2) receiver(rank+1) \
                   sendwhen(rank==0) receivewhen(rank==1) sbuf(buf1) rbuf(buf2)";
        let report = analyze(src, &syms(), 4).unwrap();
        let p = &report.regions[0].p2ps[0];
        assert!(p.unmatched_sends > 0 || p.unresolved_ranks > 0);
    }

    #[test]
    fn region_sync_savings_reported() {
        let src = r#"
#pragma comm_parameters sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs)
{
    #pragma comm_p2p sbuf(buf1) rbuf(buf2)
    { }
}
"#;
        let report = analyze(src, &syms(), 8).unwrap();
        let r = &report.regions[0];
        assert!(r.buffers_independent);
        // Every rank sends once and receives once: 2 naive waits -> 1.
        assert_eq!(r.naive_wait_calls, 2);
        assert_eq!(r.consolidated_calls, 1);
    }

    #[test]
    fn collective_directive_parses_analyzes_translates() {
        let mut s = SymbolTable::new();
        s.declare_prim("params", BasicType::F64, 32)
            .declare_prim("contrib", BasicType::F64, 4)
            .declare_prim("all", BasicType::F64, 128);
        // One-to-many: parameter broadcast from rank 0 to even ranks.
        let src = "#pragma comm_bcast root(0) groupwhen(rank%2==0) count(32) rbuf(params)";
        let report = analyze(src, &s, 8).unwrap();
        assert_eq!(report.collectives.len(), 1);
        assert_eq!(report.collectives[0].kind, "BCAST");
        assert_eq!(report.collectives[0].group_size, 4);
        assert_eq!(report.collectives[0].volume_bytes, 3 * 32 * 8);
        assert!(report.render().contains("collective BCAST"));

        let mpi = translate(src, &s, Target::Mpi2Side).unwrap();
        assert!(
            mpi.contains("MPI_Bcast(params, 32, MPI_DOUBLE, 0, group_comm);"),
            "{mpi}"
        );
        assert!(mpi.contains("MPI_Comm_split"));
        let shm = translate(src, &s, Target::Shmem).unwrap();
        assert!(shm.contains("shmem_put64"));
        assert!(shm.contains("shmem_barrier"));

        // Many-to-one with an operator.
        let src = "#pragma comm_reduce root(0) op(MAX) count(4) sbuf(contrib) rbuf(all)";
        let mpi = translate(src, &s, Target::Mpi2Side).unwrap();
        assert!(
            mpi.contains("MPI_Reduce(contrib, all, 4, MPI_DOUBLE, MPI_MAX, 0, comm);"),
            "{mpi}"
        );

        // All-to-all.
        let src = "#pragma comm_alltoall count(4) sbuf(all) rbuf(all)";
        let mpi = translate(src, &s, Target::Mpi2Side).unwrap();
        assert!(mpi.contains("MPI_Alltoall"));
    }

    #[test]
    fn collective_missing_root_diagnosed() {
        let mut s = SymbolTable::new();
        s.declare_prim("b", BasicType::F64, 4);
        let parsed = parse("#pragma comm_gather sbuf(b) rbuf(b)", &s).unwrap();
        assert!(parsed.has_errors());
        assert!(parsed
            .diagnostics
            .iter()
            .any(|d| d.message.contains("`root` missing")));
    }

    #[test]
    fn pin_annotations_map_to_next_directive() {
        let src = r#"
// @pin keep this site exactly as written
#pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(buf1) rbuf(buf2)

#pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(buf1) rbuf(buf2)
"#;
        let parsed = parse(src, &syms()).unwrap();
        // Sites are assigned in source order; only the first is pinned.
        let sites: Vec<u32> = parsed.site_spans().iter().map(|(site, _)| *site).collect();
        assert_eq!(pinned_sites(src, &parsed), vec![sites[0]]);
        assert!(!pinned_sites(src, &parsed).contains(&sites[1]));
    }

    #[test]
    fn pin_without_directive_below_is_ignored() {
        let src = "#pragma comm_p2p sender((rank-1+nprocs)%nprocs) \
                   receiver((rank+1)%nprocs) sbuf(buf1) rbuf(buf2)\n// @pin trailing";
        let parsed = parse(src, &syms()).unwrap();
        assert!(pinned_sites(src, &parsed).is_empty());
    }

    #[test]
    fn variables_bound_at_analysis_time() {
        let src = "#pragma comm_p2p sender(root) receiver(dest) \
                   sendwhen(rank==root) receivewhen(rank==dest) sbuf(buf1) rbuf(buf2)";
        let vars: HashMap<String, i64> = [("root".to_string(), 0), ("dest".to_string(), 3)].into();
        let report = analyze_with_vars(src, &syms(), 6, &vars).unwrap();
        let p = &report.regions[0].p2ps[0];
        assert_eq!(p.unresolved_ranks, 0);
        assert_eq!(p.unmatched_sends, 0);
    }
}
