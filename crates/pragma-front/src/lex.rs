//! Tokenizer for the pragma directive syntax and its C-subset clause
//! expressions.

use std::fmt;

/// A source position (byte offset + 1-based line/column) for diagnostics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Byte offset in the input.
    pub offset: usize,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// `#pragma`
    Pragma,
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `&` (address-of in buffer expressions like `&buf1[p]`)
    Amp,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `.` (member access in buffer expressions)
    Dot,
    /// `;` (statement separator in skipped code)
    Semi,
    /// `=` (assignment in skipped code)
    Assign,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Pragma => write!(f, "#pragma"),
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::Comma => write!(f, ","),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
            Tok::Percent => write!(f, "%"),
            Tok::EqEq => write!(f, "=="),
            Tok::NotEq => write!(f, "!="),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::AndAnd => write!(f, "&&"),
            Tok::OrOr => write!(f, "||"),
            Tok::Bang => write!(f, "!"),
            Tok::Amp => write!(f, "&"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::Dot => write!(f, "."),
            Tok::Semi => write!(f, ";"),
            Tok::Assign => write!(f, "="),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub span: Span,
}

/// A lexical error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Offending character.
    pub ch: char,
    /// Where.
    pub span: Span,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unexpected character `{}` at {}", self.ch, self.span)
    }
}

impl std::error::Error for LexError {}

/// Tokenize `input`. `//` line comments and `/* */` block comments are
/// skipped; `#pragma` is recognized as one token.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;

    macro_rules! span {
        () => {
            Span {
                offset: i,
                line,
                col,
            }
        };
    }

    macro_rules! bump {
        ($n:expr) => {{
            for _ in 0..$n {
                if i < bytes.len() {
                    if bytes[i] == b'\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
        }};
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        // Whitespace (pragma line continuations `\` + newline included).
        if c.is_whitespace() || c == '\\' {
            bump!(1);
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < bytes.len() {
            if bytes[i + 1] == b'/' {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!(1);
                }
                continue;
            }
            if bytes[i + 1] == b'*' {
                bump!(2);
                while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                    bump!(1);
                }
                bump!(2);
                continue;
            }
        }
        let sp = span!();
        // #pragma
        if c == '#' {
            let rest = &input[i..];
            if rest.starts_with("#pragma") {
                out.push(Token {
                    tok: Tok::Pragma,
                    span: sp,
                });
                bump!(7);
                continue;
            }
            return Err(LexError { ch: c, span: sp });
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                bump!(1);
            }
            out.push(Token {
                tok: Tok::Ident(input[start..i].to_string()),
                span: sp,
            });
            continue;
        }
        // Integers.
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                bump!(1);
            }
            let v: i64 = input[start..i].parse().expect("digits parse");
            out.push(Token {
                tok: Tok::Int(v),
                span: sp,
            });
            continue;
        }
        // Multi-char operators.
        let two = if i + 1 < bytes.len() {
            &input[i..i + 2]
        } else {
            ""
        };
        let (tok, len) = match two {
            "==" => (Tok::EqEq, 2),
            "!=" => (Tok::NotEq, 2),
            "<=" => (Tok::Le, 2),
            ">=" => (Tok::Ge, 2),
            "&&" => (Tok::AndAnd, 2),
            "||" => (Tok::OrOr, 2),
            _ => match c {
                '(' => (Tok::LParen, 1),
                ')' => (Tok::RParen, 1),
                '{' => (Tok::LBrace, 1),
                '}' => (Tok::RBrace, 1),
                ',' => (Tok::Comma, 1),
                '+' => (Tok::Plus, 1),
                '-' => (Tok::Minus, 1),
                '*' => (Tok::Star, 1),
                '/' => (Tok::Slash, 1),
                '%' => (Tok::Percent, 1),
                '<' => (Tok::Lt, 1),
                '>' => (Tok::Gt, 1),
                '!' => (Tok::Bang, 1),
                '&' => (Tok::Amp, 1),
                '[' => (Tok::LBracket, 1),
                ']' => (Tok::RBracket, 1),
                '.' => (Tok::Dot, 1),
                ';' => (Tok::Semi, 1),
                '=' => (Tok::Assign, 1),
                _ => return Err(LexError { ch: c, span: sp }),
            },
        };
        out.push(Token { tok, span: sp });
        bump!(len);
    }
    out.push(Token {
        tok: Tok::Eof,
        span: span!(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn listing1_tokens() {
        let toks = kinds("#pragma comm_p2p sender(prev) receiver(next)\n  sbuf(buf1) rbuf(buf2)");
        assert_eq!(toks[0], Tok::Pragma);
        assert_eq!(toks[1], Tok::Ident("comm_p2p".into()));
        assert_eq!(toks[2], Tok::Ident("sender".into()));
        assert_eq!(toks[3], Tok::LParen);
        assert_eq!(toks[4], Tok::Ident("prev".into()));
        assert!(toks.contains(&Tok::Ident("rbuf".into())));
        assert_eq!(*toks.last().unwrap(), Tok::Eof);
    }

    #[test]
    fn operators_and_numbers() {
        let toks = kinds("(rank-1+nprocs)%nprocs == 0 && rank != 2");
        assert!(toks.contains(&Tok::Percent));
        assert!(toks.contains(&Tok::EqEq));
        assert!(toks.contains(&Tok::AndAnd));
        assert!(toks.contains(&Tok::NotEq));
        assert!(toks.contains(&Tok::Int(1)));
        assert!(toks.contains(&Tok::Int(0)));
    }

    #[test]
    fn comments_and_continuations_skipped() {
        let toks = kinds(
            "#pragma comm_p2p \\\n  sender(prev) // tail comment\n  /* block */ receiver(next)",
        );
        assert_eq!(
            toks.iter().filter(|t| matches!(t, Tok::Ident(_))).count(),
            5
        );
    }

    #[test]
    fn spans_track_lines() {
        let toks = lex("#pragma\ncomm_p2p").unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[1].span.col, 1);
    }

    #[test]
    fn address_and_index_tokens() {
        let toks = kinds("sbuf(&ev[3*p])");
        assert!(toks.contains(&Tok::Amp));
        assert!(toks.contains(&Tok::LBracket));
        assert!(toks.contains(&Tok::Star));
    }

    #[test]
    fn bad_character_reports_position() {
        let err = lex("sender(@)").unwrap_err();
        assert_eq!(err.ch, '@');
        assert_eq!(err.span.col, 8);
    }
}
