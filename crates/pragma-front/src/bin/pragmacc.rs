//! `pragmacc` — the directive compiler driver, as a command-line tool.
//!
//! Reads pragma-annotated source (a file argument or stdin), runs the
//! static analyses, and/or emits the translated library calls:
//!
//! ```text
//! pragmacc input.c --nranks 16 --analyze
//! pragmacc input.c --emit TARGET_COMM_SHMEM
//! pragmacc input.c --emit all --var n=4
//! echo '#pragma comm_p2p ...' | pragmacc - --analyze
//! ```
//!
//! Buffers referenced by the directives are declared with repeated
//! `--buf name:type:len` options (the symbol-table role the host compiler
//! plays); undeclared buffers are assumed `char[0]` with a warning.

use std::collections::HashMap;
use std::io::Read;
use std::process::ExitCode;

use commint::clause::Target;
use mpisim::dtype::BasicType;
use pragma_front::{analyze_with_vars, translate, SymbolTable};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: pragmacc <file|-> [--nranks N] [--analyze] [--emit TARGET|all] \
             [--var name=value]... [--buf name:type:len]..."
        );
        return ExitCode::from(2);
    }

    let mut input: Option<String> = None;
    let mut nranks = 8usize;
    let mut do_analyze = false;
    let mut emit: Vec<Target> = Vec::new();
    let mut vars: HashMap<String, i64> = HashMap::new();
    let mut symbols = SymbolTable::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--nranks" => {
                i += 1;
                nranks = args.get(i).and_then(|v| v.parse().ok()).unwrap_or(8);
            }
            "--analyze" => do_analyze = true,
            "--emit" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("all") => emit.extend(Target::ALL),
                    Some(kw) => match Target::from_keyword(kw) {
                        Some(t) => emit.push(t),
                        None => {
                            eprintln!("pragmacc: unknown target `{kw}`");
                            return ExitCode::from(2);
                        }
                    },
                    None => {
                        eprintln!("pragmacc: --emit needs a target keyword or `all`");
                        return ExitCode::from(2);
                    }
                }
            }
            "--var" => {
                i += 1;
                let Some((name, value)) = args.get(i).and_then(|v| v.split_once('=')) else {
                    eprintln!("pragmacc: --var expects name=value");
                    return ExitCode::from(2);
                };
                let Ok(value) = value.parse::<i64>() else {
                    eprintln!("pragmacc: --var value must be an integer");
                    return ExitCode::from(2);
                };
                vars.insert(name.to_string(), value);
            }
            "--buf" => {
                i += 1;
                let spec = args.get(i).cloned().unwrap_or_default();
                let parts: Vec<&str> = spec.split(':').collect();
                if parts.len() != 3 {
                    eprintln!("pragmacc: --buf expects name:type:len");
                    return ExitCode::from(2);
                }
                let ty = match parts[1] {
                    "char" | "u8" => BasicType::U8,
                    "int" | "i32" => BasicType::I32,
                    "long" | "i64" => BasicType::I64,
                    "float" | "f32" => BasicType::F32,
                    "double" | "f64" => BasicType::F64,
                    other => {
                        eprintln!("pragmacc: unknown buffer type `{other}`");
                        return ExitCode::from(2);
                    }
                };
                let Ok(len) = parts[2].parse::<usize>() else {
                    eprintln!("pragmacc: buffer length must be an integer");
                    return ExitCode::from(2);
                };
                symbols.declare_prim(parts[0], ty, len);
            }
            path if input.is_none() => input = Some(path.to_string()),
            other => {
                eprintln!("pragmacc: unexpected argument `{other}`");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    let Some(path) = input else {
        eprintln!("pragmacc: no input");
        return ExitCode::from(2);
    };
    let source = if path == "-" {
        let mut s = String::new();
        if std::io::stdin().read_to_string(&mut s).is_err() {
            eprintln!("pragmacc: failed to read stdin");
            return ExitCode::FAILURE;
        }
        s
    } else {
        match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("pragmacc: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    if !do_analyze && emit.is_empty() {
        do_analyze = true; // default action
    }

    if do_analyze {
        match analyze_with_vars(&source, &symbols, nranks, &vars) {
            Ok(report) => {
                println!("== analysis @ {nranks} ranks ==");
                print!("{}", report.render());
                if report
                    .diagnostics
                    .iter()
                    .any(|d| d.severity == commint::Severity::Error)
                {
                    return ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("pragmacc: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    for target in emit {
        match translate(&source, &symbols, target) {
            Ok(code) => print!("{code}"),
            Err(e) => {
                eprintln!("pragmacc: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
