//! Recursive-descent parser: pragma text → `commint` directive IR.
//!
//! Accepts the paper's literal syntax (Listings 1–3, 5, 7):
//!
//! ```c
//! #pragma comm_parameters sender(rank-1) receiver(rank+1)
//!     sendwhen(rank%2==0) receivewhen(rank%2==1) count(size)
//!     max_comm_iter(n) place_sync(END_PARAM_REGION)
//! {
//!     #pragma comm_p2p sbuf(&buf1[p]) rbuf(&buf2[p])
//!     { }
//! }
//! ```
//!
//! Buffer element kinds and lengths come from a caller-supplied
//! [`SymbolTable`] (the role the compiler's symbol table plays); unknown
//! buffers produce a diagnostic and a byte-typed placeholder.

use std::collections::HashMap;

use commint::buffer::{BufMeta, ElemKind};
use commint::clause::{ClauseSet, Diagnostic, PlaceSync, Target};
use commint::coll::{CollKind, ReduceOp};
use commint::diag::{DirSpans, SrcSpan};
use commint::dir::{CollSpec, P2pSpec, ParamsSpec};
use commint::expr::{CondExpr, RankExpr};
use mpisim::dtype::BasicType;

use crate::lex::{lex, Span, Tok, Token};

/// Convert a lexer span into the IR-level source span.
fn src_span(s: Span) -> SrcSpan {
    SrcSpan {
        offset: s.offset,
        line: s.line,
        col: s.col,
    }
}

/// Buffer declarations: name → (element kind, length in elements).
#[derive(Clone, Debug, Default)]
pub struct SymbolTable {
    entries: HashMap<String, (ElemKind, usize)>,
    /// Backing-memory size in bytes where it differs from `len * extent`
    /// (strided views over a larger array).
    mem_bytes: HashMap<String, usize>,
}

impl SymbolTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a primitive-array buffer.
    pub fn declare_prim(&mut self, name: &str, ty: BasicType, len: usize) -> &mut Self {
        self.entries
            .insert(name.to_string(), (ElemKind::Prim(ty), len));
        self
    }

    /// Declare a strided view: `len` logical elements of `blocklen`
    /// contiguous `ty` values every `stride`, carved out of a backing
    /// array of `mem_elems` values of `ty`.
    pub fn declare_strided(
        &mut self,
        name: &str,
        ty: BasicType,
        blocklen: usize,
        stride: usize,
        len: usize,
        mem_elems: usize,
    ) -> &mut Self {
        self.entries.insert(
            name.to_string(),
            (
                ElemKind::Strided {
                    ty,
                    blocklen,
                    stride,
                },
                len,
            ),
        );
        self.mem_bytes
            .insert(name.to_string(), mem_elems * ty.size());
        self
    }

    /// Declare a composite buffer.
    pub fn declare_composite(
        &mut self,
        name: &str,
        layout: commint::buffer::CompositeLayout,
        len: usize,
    ) -> &mut Self {
        self.entries
            .insert(name.to_string(), (ElemKind::Composite(layout), len));
        self
    }

    fn lookup(&self, name: &str) -> Option<&(ElemKind, usize)> {
        self.entries.get(name)
    }

    fn mem_size(&self, name: &str) -> Option<usize> {
        self.mem_bytes.get(name).copied()
    }
}

/// A parse error with position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Message.
    pub message: String,
    /// Where.
    pub span: Span,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

/// One parsed top-level directive.
#[derive(Clone, Debug)]
pub enum Item {
    /// A `comm_parameters` region with its body.
    Region(ParamsSpec),
    /// A standalone `comm_p2p`.
    P2p(P2pSpec),
    /// A collective directive (`comm_bcast` / `comm_gather` /
    /// `comm_scatter` / `comm_alltoall` / `comm_reduce`).
    Coll(CollSpec),
}

/// Parse result: items plus accumulated diagnostics (undeclared buffers,
/// clause violations).
#[derive(Clone, Debug, Default)]
pub struct Parsed {
    /// Parsed directives in source order.
    pub items: Vec<Item>,
    /// Diagnostics (validation of each directive included).
    pub diagnostics: Vec<Diagnostic>,
}

impl Parsed {
    /// Whether any diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        ClauseSet::has_errors(&self.diagnostics)
    }

    /// Certificate provenance: every `comm_p2p` site id paired with its
    /// best source span (the directive keyword), in source order. Region
    /// bodies contribute their sites; collectives have none. Lets
    /// downstream provers (`commprove`) anchor per-site claims back to the
    /// pragma text without re-walking the IR.
    pub fn site_spans(&self) -> Vec<(u32, Option<SrcSpan>)> {
        let mut out = Vec::new();
        for item in &self.items {
            match item {
                Item::Region(r) => {
                    for p in &r.body {
                        out.push((p.site, p.spans.directive.or(r.spans.directive)));
                    }
                }
                Item::P2p(p) => out.push((p.site, p.spans.directive)),
                Item::Coll(_) => {}
            }
        }
        out
    }
}

/// Parse pragma source text against a symbol table.
pub fn parse(src: &str, symbols: &SymbolTable) -> Result<Parsed, ParseError> {
    let tokens = lex(src).map_err(|e| ParseError {
        message: e.to_string(),
        span: e.span,
    })?;
    let mut p = Parser {
        toks: tokens,
        pos: 0,
        symbols,
        diagnostics: Vec::new(),
        buf_addr_cursor: 0x1000,
        buf_addrs: HashMap::new(),
        site_counter: 0,
    };
    let mut items = Vec::new();
    while !p.at(&Tok::Eof) {
        items.push(p.item()?);
    }
    // Validation of every directive.
    for item in &items {
        match item {
            Item::Region(spec) => p.diagnostics.extend(spec.validate()),
            Item::P2p(spec) => p.diagnostics.extend(spec.validate(None)),
            Item::Coll(spec) => p.diagnostics.extend(spec.validate()),
        }
    }
    Ok(Parsed {
        items,
        diagnostics: p.diagnostics,
    })
}

struct Parser<'s> {
    toks: Vec<Token>,
    pos: usize,
    symbols: &'s SymbolTable,
    diagnostics: Vec<Diagnostic>,
    /// Synthesized stable addresses: same buffer name → same range, so the
    /// independence analysis sees aliasing through names.
    buf_addr_cursor: usize,
    buf_addrs: HashMap<String, (usize, usize)>,
    site_counter: u32,
}

impl Parser<'_> {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn at(&self, t: &Tok) -> bool {
        self.peek() == t
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Tok) -> Result<(), ParseError> {
        if self.at(t) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {t}, found {}", self.peek())))
        }
    }

    fn err(&self, message: String) -> ParseError {
        ParseError {
            message,
            span: self.span(),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    // -- directives -----------------------------------------------------------

    fn item(&mut self) -> Result<Item, ParseError> {
        let dspan = self.span();
        self.expect(&Tok::Pragma)?;
        let name = self.ident()?;
        match name.as_str() {
            "comm_parameters" => self.region(dspan).map(Item::Region),
            "comm_p2p" => self.p2p(dspan).map(Item::P2p),
            "comm_bcast" => self.coll(CollKind::Bcast).map(Item::Coll),
            "comm_gather" => self.coll(CollKind::Gather).map(Item::Coll),
            "comm_scatter" => self.coll(CollKind::Scatter).map(Item::Coll),
            "comm_alltoall" => self.coll(CollKind::AllToAll).map(Item::Coll),
            "comm_reduce" => self.coll(CollKind::Reduce(ReduceOp::Sum)).map(Item::Coll),
            other => Err(self.err(format!("unknown directive `{other}`"))),
        }
    }

    /// Parse a collective directive's clause list.
    fn coll(&mut self, mut kind: CollKind) -> Result<CollSpec, ParseError> {
        let mut spec = CollSpec {
            kind,
            root: None,
            groupwhen: None,
            count: None,
            target: None,
            sbuf: Vec::new(),
            rbuf: Vec::new(),
        };
        while let Tok::Ident(name) = self.peek().clone() {
            self.bump();
            self.expect(&Tok::LParen)?;
            match name.as_str() {
                "root" => spec.root = Some(self.expr()?),
                "groupwhen" => spec.groupwhen = Some(self.cond()?),
                "count" => spec.count = Some(self.expr()?),
                "target" => {
                    let kw = self.ident()?;
                    spec.target = Some(
                        Target::from_keyword(&kw)
                            .ok_or_else(|| self.err(format!("unknown target keyword `{kw}`")))?,
                    );
                }
                "op" => {
                    let kw = self.ident()?;
                    let op = match kw.as_str() {
                        "SUM" => ReduceOp::Sum,
                        "MAX" => ReduceOp::Max,
                        "MIN" => ReduceOp::Min,
                        other => return Err(self.err(format!("unknown reduce op `{other}`"))),
                    };
                    if !matches!(kind, CollKind::Reduce(_)) {
                        return Err(self.err("`op` may only be used with comm_reduce".to_string()));
                    }
                    kind = CollKind::Reduce(op);
                    spec.kind = kind;
                }
                "sbuf" => spec.sbuf = self.buf_list()?.0,
                "rbuf" => spec.rbuf = self.buf_list()?.0,
                other => return Err(self.err(format!("unknown clause `{other}`"))),
            }
            self.expect(&Tok::RParen)?;
        }
        // Optional empty body.
        if self.at(&Tok::LBrace) {
            self.bump();
            let mut depth = 1usize;
            while depth > 0 {
                match self.bump() {
                    Tok::LBrace => depth += 1,
                    Tok::RBrace => depth -= 1,
                    Tok::Eof => return Err(self.err("unterminated comm_coll body".into())),
                    _ => {}
                }
            }
        }
        Ok(spec)
    }

    fn region(&mut self, dspan: Span) -> Result<ParamsSpec, ParseError> {
        let (clauses, _, _, mut spans) = self.clauses()?;
        spans.directive = Some(src_span(dspan));
        let mut body = Vec::new();
        self.expect(&Tok::LBrace)?;
        loop {
            match self.peek() {
                Tok::RBrace => {
                    self.bump();
                    break;
                }
                Tok::Pragma => {
                    let p2p_span = self.span();
                    self.bump();
                    let name = self.ident()?;
                    if name != "comm_p2p" {
                        return Err(self.err(format!(
                            "only comm_p2p may appear inside a comm_parameters region, found `{name}`"
                        )));
                    }
                    body.push(self.p2p(p2p_span)?);
                }
                Tok::Eof => return Err(self.err("unterminated comm_parameters region".into())),
                _ => {
                    // Arbitrary computation statements between directives:
                    // skip one balanced token.
                    self.skip_statement_token()?;
                }
            }
        }
        Ok(ParamsSpec {
            clauses,
            body,
            spans,
        })
    }

    fn p2p(&mut self, dspan: Span) -> Result<P2pSpec, ParseError> {
        let (clauses, sbuf, rbuf, mut spans) = self.clauses()?;
        spans.directive = Some(src_span(dspan));
        self.site_counter += 1;
        let mut has_overlap_body = false;
        // Optional body: `{ ... }` (overlapped computation).
        if self.at(&Tok::LBrace) {
            self.bump();
            let mut depth = 1usize;
            let mut any = false;
            while depth > 0 {
                match self.bump() {
                    Tok::LBrace => depth += 1,
                    Tok::RBrace => depth -= 1,
                    Tok::Eof => return Err(self.err("unterminated comm_p2p body".into())),
                    _ => any = true,
                }
            }
            has_overlap_body = any;
        }
        Ok(P2pSpec {
            clauses,
            sbuf,
            rbuf,
            has_overlap_body,
            site: self.site_counter,
            spans,
        })
    }

    fn skip_statement_token(&mut self) -> Result<(), ParseError> {
        match self.bump() {
            Tok::LBrace => {
                let mut depth = 1usize;
                while depth > 0 {
                    match self.bump() {
                        Tok::LBrace => depth += 1,
                        Tok::RBrace => depth -= 1,
                        Tok::Eof => return Err(self.err("unbalanced braces".into())),
                        _ => {}
                    }
                }
                Ok(())
            }
            Tok::Eof => Err(self.err("unexpected end of input".into())),
            _ => Ok(()),
        }
    }

    // -- clauses ---------------------------------------------------------------

    #[allow(clippy::type_complexity)]
    fn clauses(&mut self) -> Result<(ClauseSet, Vec<BufMeta>, Vec<BufMeta>, DirSpans), ParseError> {
        let mut clauses = ClauseSet::default();
        let mut sbuf = Vec::new();
        let mut rbuf = Vec::new();
        let mut spans = DirSpans::default();
        while let Tok::Ident(name) = self.peek().clone() {
            // The clause-keyword token locates the clause in diagnostics.
            let kw_span = src_span(self.span());
            self.bump();
            self.expect(&Tok::LParen)?;
            match name.as_str() {
                "sender" => {
                    clauses.sender = Some(self.expr()?);
                    spans.sender = Some(kw_span);
                }
                "receiver" => {
                    clauses.receiver = Some(self.expr()?);
                    spans.receiver = Some(kw_span);
                }
                "count" => {
                    clauses.count = Some(self.expr()?);
                    spans.count = Some(kw_span);
                }
                "max_comm_iter" => {
                    clauses.max_comm_iter = Some(self.expr()?);
                    spans.max_comm_iter = Some(kw_span);
                }
                "sendwhen" => {
                    clauses.sendwhen = Some(self.cond()?);
                    spans.sendwhen = Some(kw_span);
                }
                "receivewhen" => {
                    clauses.receivewhen = Some(self.cond()?);
                    spans.receivewhen = Some(kw_span);
                }
                "target" => {
                    let kw = self.ident()?;
                    clauses.target = Some(
                        Target::from_keyword(&kw)
                            .ok_or_else(|| self.err(format!("unknown target keyword `{kw}`")))?,
                    );
                    spans.target = Some(kw_span);
                }
                "place_sync" => {
                    let kw = self.ident()?;
                    clauses.place_sync =
                        Some(PlaceSync::from_keyword(&kw).ok_or_else(|| {
                            self.err(format!("unknown place_sync keyword `{kw}`"))
                        })?);
                    spans.place_sync = Some(kw_span);
                }
                "sbuf" | "vsbuf" => (sbuf, spans.sbuf) = self.buf_list()?,
                "rbuf" => (rbuf, spans.rbuf) = self.buf_list()?,
                other => {
                    return Err(self.err(format!("unknown clause `{other}`")));
                }
            }
            self.expect(&Tok::RParen)?;
        }
        Ok((clauses, sbuf, rbuf, spans))
    }

    fn buf_list(&mut self) -> Result<(Vec<BufMeta>, Vec<SrcSpan>), ParseError> {
        let mut spans = vec![src_span(self.span())];
        let mut out = vec![self.buf_expr()?];
        while self.at(&Tok::Comma) {
            self.bump();
            spans.push(src_span(self.span()));
            out.push(self.buf_expr()?);
        }
        Ok((out, spans))
    }

    /// Buffer expression: `name`, `&name[expr]`, `&a.b[i].c[0]`, ...
    /// The *base name* indexes the symbol table; the rendered text is the
    /// display name.
    fn buf_expr(&mut self) -> Result<BufMeta, ParseError> {
        let start = src_span(self.span());
        let mut display = String::new();
        if self.at(&Tok::Amp) {
            self.bump();
            display.push('&');
        }
        let base = self.ident()?;
        display.push_str(&base);
        // Trailing member/index accesses (rendered, not interpreted).
        loop {
            match self.peek() {
                Tok::Dot => {
                    self.bump();
                    let m = self.ident()?;
                    display.push('.');
                    display.push_str(&m);
                }
                Tok::LBracket => {
                    self.bump();
                    let e = self.expr()?;
                    display.push('[');
                    display.push_str(&e.to_string());
                    display.push(']');
                    self.expect(&Tok::RBracket)?;
                }
                _ => break,
            }
        }
        let (elem, len) = match self.symbols.lookup(&base) {
            Some((k, l)) => (k.clone(), *l),
            None => {
                self.diagnostics.push(
                    Diagnostic::warning(format!(
                        "buffer `{base}` not declared in the symbol table; assuming char[0]"
                    ))
                    .at(start),
                );
                (ElemKind::Prim(BasicType::U8), 0)
            }
        };
        let addr = *self.buf_addrs.entry(base.clone()).or_insert_with(|| {
            let lo = self.buf_addr_cursor;
            let size = self
                .symbols
                .mem_size(&base)
                .unwrap_or(len * elem.extent())
                .max(1);
            self.buf_addr_cursor = lo + size + 64;
            (lo, lo + size)
        });
        Ok(BufMeta {
            name: display,
            elem,
            len,
            addr,
        })
    }

    // -- expressions -------------------------------------------------------------

    fn expr(&mut self) -> Result<RankExpr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            match self.peek() {
                Tok::Plus => {
                    self.bump();
                    lhs = lhs + self.term()?;
                }
                Tok::Minus => {
                    self.bump();
                    lhs = lhs - self.term()?;
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn term(&mut self) -> Result<RankExpr, ParseError> {
        let mut lhs = self.factor()?;
        loop {
            match self.peek() {
                Tok::Star => {
                    self.bump();
                    lhs = lhs * self.factor()?;
                }
                Tok::Slash => {
                    self.bump();
                    lhs = lhs / self.factor()?;
                }
                Tok::Percent => {
                    self.bump();
                    lhs = lhs % self.factor()?;
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn factor(&mut self) -> Result<RankExpr, ParseError> {
        match self.peek().clone() {
            Tok::Minus => {
                self.bump();
                Ok(-self.factor()?)
            }
            Tok::Int(v) => {
                self.bump();
                Ok(RankExpr::Const(v))
            }
            Tok::Ident(name) => {
                self.bump();
                Ok(match name.as_str() {
                    "rank" => RankExpr::Rank,
                    "nprocs" | "nranks" => RankExpr::NRanks,
                    _ => RankExpr::Var(name),
                })
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            other => Err(self.err(format!("expected expression, found {other}"))),
        }
    }

    // -- conditions ----------------------------------------------------------------

    fn cond(&mut self) -> Result<CondExpr, ParseError> {
        let mut lhs = self.cond_and()?;
        while self.at(&Tok::OrOr) {
            self.bump();
            lhs = lhs.or(self.cond_and()?);
        }
        Ok(lhs)
    }

    fn cond_and(&mut self) -> Result<CondExpr, ParseError> {
        let mut lhs = self.cond_primary()?;
        while self.at(&Tok::AndAnd) {
            self.bump();
            lhs = lhs.and(self.cond_primary()?);
        }
        Ok(lhs)
    }

    fn cond_primary(&mut self) -> Result<CondExpr, ParseError> {
        if self.at(&Tok::Bang) {
            self.bump();
            return Ok(self.cond_primary()?.not());
        }
        // '(' is ambiguous: try parenthesized condition, fall back to
        // arithmetic comparison.
        if self.at(&Tok::LParen) {
            let save = self.pos;
            self.bump();
            if let Ok(inner) = self.cond() {
                if self.at(&Tok::RParen) {
                    self.bump();
                    // Could continue as a comparison of a parenthesized
                    // *expression*; only accept if next is a boolean
                    // connective or the end of the clause.
                    if matches!(
                        self.peek(),
                        Tok::AndAnd | Tok::OrOr | Tok::RParen | Tok::Eof
                    ) {
                        return Ok(inner);
                    }
                }
            }
            self.pos = save;
        }
        let lhs = self.expr()?;
        let op = self.bump();
        let rhs = self.expr()?;
        Ok(match op {
            Tok::EqEq => lhs.eq(rhs),
            Tok::NotEq => lhs.ne(rhs),
            Tok::Lt => lhs.lt(rhs),
            Tok::Le => lhs.le(rhs),
            Tok::Gt => lhs.gt(rhs),
            Tok::Ge => lhs.ge(rhs),
            other => return Err(self.err(format!("expected comparison operator, found {other}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commint::expr::EvalEnv;

    fn symbols() -> SymbolTable {
        let mut s = SymbolTable::new();
        s.declare_prim("buf1", BasicType::F64, 16)
            .declare_prim("buf2", BasicType::F64, 16)
            .declare_prim("ev", BasicType::F64, 48)
            .declare_prim("evec", BasicType::F64, 3);
        s
    }

    #[test]
    fn listing1_ring() {
        let src = "#pragma comm_p2p sender(prev) receiver(next) sbuf(buf1) rbuf(buf2)";
        let parsed = parse(src, &symbols()).unwrap();
        assert_eq!(parsed.items.len(), 1);
        let Item::P2p(p) = &parsed.items[0] else {
            panic!("expected p2p")
        };
        assert_eq!(p.clauses.sender.as_ref().unwrap().to_string(), "prev");
        assert_eq!(p.sbuf[0].name, "buf1");
        assert_eq!(p.rbuf[0].len, 16);
        assert!(!parsed.has_errors());
    }

    #[test]
    fn site_spans_cover_region_bodies_and_standalone_p2ps() {
        let src = "\
#pragma comm_parameters sender(rank-1) receiver(rank+1)
{
    #pragma comm_p2p sbuf(buf1) rbuf(buf2)
    { }
}
#pragma comm_p2p sender(prev) receiver(next) sbuf(buf1) rbuf(buf2)";
        let parsed = parse(src, &symbols()).unwrap();
        let spans = parsed.site_spans();
        assert_eq!(spans.len(), 2, "one site per comm_p2p: {spans:?}");
        // Sites are distinct and every span points into the source.
        assert_ne!(spans[0].0, spans[1].0);
        assert_eq!(spans[0].1.unwrap().line, 3);
        assert_eq!(spans[1].1.unwrap().line, 6);
    }

    #[test]
    fn listing2_even_odd() {
        let src = "#pragma comm_p2p sbuf(buf1) rbuf(buf2) \
                   sender(rank-1) receiver(rank+1) \
                   sendwhen(rank%2==0) receivewhen(rank%2==1)";
        let parsed = parse(src, &symbols()).unwrap();
        let Item::P2p(p) = &parsed.items[0] else {
            panic!()
        };
        let sw = p.clauses.sendwhen.as_ref().unwrap();
        assert!(sw.eval(&EvalEnv::new(2, 8)).unwrap());
        assert!(!sw.eval(&EvalEnv::new(3, 8)).unwrap());
    }

    #[test]
    fn listing3_region_with_loop_body() {
        let src = r#"
#pragma comm_parameters sender(rank-1)
    receiver(rank+1) sendwhen(rank%2==0)
    receivewhen(rank%2==1) count(size)
    max_comm_iter(n) place_sync(END_PARAM_REGION)
{
    for(p=0; p < n; p++)
    #pragma comm_p2p sbuf(&buf1[p]) rbuf(&buf2[p])
    { }
}
"#;
        // `for(...)` parses as unknown tokens? The region body skipper eats
        // non-pragma tokens, including the loop header.
        let mut syms = symbols();
        syms.declare_prim("size", BasicType::I32, 1);
        let parsed = parse(src, &syms).unwrap();
        let Item::Region(r) = &parsed.items[0] else {
            panic!()
        };
        assert_eq!(r.clauses.place_sync, Some(PlaceSync::EndParamRegion));
        assert_eq!(r.clauses.max_comm_iter.as_ref().unwrap().to_string(), "n");
        assert_eq!(r.body.len(), 1);
        assert_eq!(r.body[0].sbuf[0].name, "&buf1[p]");
    }

    #[test]
    fn listing5_buffer_lists_and_vsbuf() {
        let mut syms = SymbolTable::new();
        syms.declare_prim("vr", BasicType::F64, 100)
            .declare_prim("rhotot", BasicType::F64, 100)
            .declare_prim("ec", BasicType::F64, 50)
            .declare_prim("nc", BasicType::I32, 50)
            .declare_prim("lc", BasicType::I32, 50)
            .declare_prim("kc", BasicType::I32, 50)
            .declare_prim("scalaratomdata", BasicType::U8, 160);
        let src = r#"
#pragma comm_parameters sendwhen(rank==from_rank)
    receivewhen(rank==to_rank)
    sender(from_rank) receiver(to_rank)
{
    #pragma comm_p2p sbuf(scalaratomdata) rbuf(scalaratomdata) count(1)
    { }
    #pragma comm_p2p vsbuf(vr,rhotot) rbuf(vr,rhotot) count(size1)
    { }
    #pragma comm_p2p sbuf(ec,nc,lc,kc) rbuf(ec,nc,lc,kc) count(size2)
    { }
}
"#;
        let parsed = parse(src, &syms).unwrap();
        let Item::Region(r) = &parsed.items[0] else {
            panic!()
        };
        assert_eq!(r.body.len(), 3);
        assert_eq!(r.body[1].sbuf.len(), 2);
        assert_eq!(r.body[2].sbuf.len(), 4);
        assert_eq!(r.body[2].sbuf[1].name, "nc");
        // nc (i32) paired with nc (i32) — compatible; no errors.
        assert!(!parsed.has_errors(), "{:?}", parsed.diagnostics);
    }

    #[test]
    fn complex_conditions_parse() {
        let src = "#pragma comm_p2p sender(rank0) receiver(rcv_rank) \
                   sendwhen(rank == 0) receivewhen(rank != 0 && recv_p < num_local) \
                   sbuf(&ev[3*send_p]) rbuf(evec) count(3)";
        let parsed = parse(src, &symbols()).unwrap();
        let Item::P2p(p) = &parsed.items[0] else {
            panic!()
        };
        let rw = p.clauses.receivewhen.as_ref().unwrap();
        let env = EvalEnv::new(3, 8).with("recv_p", 0).with("num_local", 1);
        assert!(rw.eval(&env).unwrap());
        let env = EvalEnv::new(0, 8).with("recv_p", 0).with("num_local", 1);
        assert!(!rw.eval(&env).unwrap());
        assert_eq!(p.sbuf[0].name, "&ev[(3*send_p)]");
    }

    #[test]
    fn parenthesized_condition_groups() {
        let src = "#pragma comm_p2p sender(a) receiver(b) \
                   sendwhen((rank == 0 || rank == 1) && rank != 2) receivewhen(rank > 1) \
                   sbuf(buf1) rbuf(buf2)";
        let parsed = parse(src, &symbols()).unwrap();
        let Item::P2p(p) = &parsed.items[0] else {
            panic!()
        };
        let sw = p.clauses.sendwhen.as_ref().unwrap();
        assert!(sw.eval(&EvalEnv::new(1, 4)).unwrap());
        assert!(!sw.eval(&EvalEnv::new(2, 4)).unwrap());
    }

    #[test]
    fn undeclared_buffer_warns() {
        let src = "#pragma comm_p2p sender(a) receiver(b) sbuf(ghost) rbuf(buf2)";
        let parsed = parse(src, &symbols()).unwrap();
        let d = parsed
            .diagnostics
            .iter()
            .find(|d| d.message.contains("`ghost` not declared"))
            .expect("undeclared-buffer warning");
        // The diagnostic points at the buffer token (1-based line:col).
        let span = d.span.expect("warning carries the token span");
        assert_eq!(span.line, 1);
        assert_eq!(span.col, 1 + src.find("ghost").unwrap());
    }

    #[test]
    fn clause_spans_recorded() {
        let src =
            "#pragma comm_p2p sender(prev) receiver(next)\n    sbuf(buf1) rbuf(buf2) count(4)";
        let parsed = parse(src, &symbols()).unwrap();
        let Item::P2p(p) = &parsed.items[0] else {
            panic!()
        };
        let dir = p.spans.directive.expect("directive span");
        assert_eq!((dir.line, dir.col), (1, 1));
        let sender = p.spans.sender.expect("sender span");
        assert_eq!(sender.col, 1 + src.find("sender").unwrap());
        let count = p.spans.count.expect("count span");
        assert_eq!(count.line, 2);
        assert_eq!(p.spans.sbuf.len(), 1);
        assert_eq!(p.spans.rbuf.len(), 1);
        assert_eq!(p.spans.sbuf[0].line, 2);
    }

    #[test]
    fn violation_diagnostics_carry_clause_spans() {
        let src = "#pragma comm_p2p sender(a) receiver(b) sbuf(buf1) rbuf(buf2) \
                   place_sync(END_PARAM_REGION)";
        let parsed = parse(src, &symbols()).unwrap();
        let d = parsed
            .diagnostics
            .iter()
            .find(|d| d.message.contains("place_sync"))
            .expect("place_sync violation");
        let span = d.span.expect("violation points at the clause keyword");
        assert_eq!(span.col, 1 + src.find("place_sync").unwrap());
    }

    #[test]
    fn clause_violations_surface_as_diagnostics() {
        // place_sync on comm_p2p is illegal.
        let src = "#pragma comm_p2p sender(a) receiver(b) sbuf(buf1) rbuf(buf2) \
                   place_sync(END_PARAM_REGION)";
        let parsed = parse(src, &symbols()).unwrap();
        assert!(parsed.has_errors());
        assert!(parsed
            .diagnostics
            .iter()
            .any(|d| d.message.contains("place_sync")));
    }

    #[test]
    fn sendwhen_without_receivewhen_rejected() {
        let src = "#pragma comm_p2p sender(a) receiver(b) sendwhen(rank==0) sbuf(buf1) rbuf(buf2)";
        let parsed = parse(src, &symbols()).unwrap();
        assert!(parsed.has_errors());
    }

    #[test]
    fn bad_keyword_is_parse_error() {
        let src = "#pragma comm_p2p target(TARGET_COMM_PVM) sbuf(buf1) rbuf(buf2)";
        let err = parse(src, &symbols()).unwrap_err();
        assert!(err.message.contains("TARGET_COMM_PVM"));
    }

    #[test]
    fn same_name_buffers_alias() {
        let src = r#"
#pragma comm_parameters sender(a) receiver(b)
{
    #pragma comm_p2p sbuf(buf1) rbuf(buf2)
    { }
    #pragma comm_p2p sbuf(buf2) rbuf(buf1)
    { }
}
"#;
        let parsed = parse(src, &symbols()).unwrap();
        let Item::Region(r) = &parsed.items[0] else {
            panic!()
        };
        // p2p#0 writes buf2; p2p#1 reads buf2 — dependent buffers.
        let rep = commint::analysis::buffer_independence(r);
        assert!(!rep.independent());
    }

    #[test]
    fn overlap_body_flag() {
        let src = "#pragma comm_p2p sender(a) receiver(b) sbuf(buf1) rbuf(buf2) \
                   { calculateCoreState(comm, lsms, local); }";
        let parsed = parse(src, &symbols()).unwrap();
        let Item::P2p(p) = &parsed.items[0] else {
            panic!()
        };
        assert!(p.has_overlap_body);

        let src2 = "#pragma comm_p2p sender(a) receiver(b) sbuf(buf1) rbuf(buf2) { }";
        let parsed2 = parse(src2, &symbols()).unwrap();
        let Item::P2p(p2) = &parsed2.items[0] else {
            panic!()
        };
        assert!(!p2.has_overlap_body);
    }
}
