//! One-sided communication: `MPI_Win` windows with `MPI_Put` and fence
//! synchronization — the `TARGET_COMM_MPI_1SIDE` translation target of the
//! directives.

use std::sync::Arc;

use netsim::{RankCtx, SegId, Time};

use crate::comm::Comm;
use crate::pod::{as_bytes, as_bytes_mut, Pod};

/// An RMA window: symmetric memory exposed by every rank of a communicator.
#[derive(Clone, Debug)]
pub struct Win {
    seg: SegId,
    group: Arc<Vec<usize>>,
    bytes: usize,
}

impl Win {
    /// Collective window creation over `comm` (`MPI_Win_create`); every
    /// member allocates `bytes` of exposed memory. Synchronizes the group.
    pub fn create(ctx: &mut RankCtx, comm: &Comm, bytes: usize) -> Win {
        let m = ctx.machine().mpi;
        let group = comm.sorted_globals();
        let seg = ctx.sym_alloc(&group, bytes, &m);
        Win {
            seg,
            group: Arc::new(group),
            bytes,
        }
    }

    /// Window size per rank in bytes.
    pub fn len(&self) -> usize {
        self.bytes
    }

    /// Whether the window is zero-sized.
    pub fn is_empty(&self) -> bool {
        self.bytes == 0
    }

    /// The underlying segment id (for interop with the directive engine).
    pub fn segment(&self) -> SegId {
        self.seg
    }

    /// `MPI_Put` of raw bytes into `target` (global rank) at byte offset
    /// `disp`. Charges the MPI one-sided initiation cost; completion is
    /// deferred to the next fence. Returns the virtual arrival time.
    pub fn put(&self, ctx: &mut RankCtx, target: usize, disp: usize, data: &[u8]) -> Time {
        let m = ctx.machine().mpi;
        ctx.put(self.seg, target, disp, data, &m, true)
    }

    /// Typed `MPI_Put` of a `Pod` slice.
    pub fn put_slice<T: Pod>(
        &self,
        ctx: &mut RankCtx,
        target: usize,
        elem_disp: usize,
        data: &[T],
    ) -> Time {
        self.put(
            ctx,
            target,
            elem_disp * std::mem::size_of::<T>(),
            as_bytes(data),
        )
    }

    /// `MPI_Get` of raw bytes from `target` at byte offset `disp`
    /// (blocking round trip in this simulator).
    pub fn get(&self, ctx: &mut RankCtx, target: usize, disp: usize, out: &mut [u8]) {
        let m = ctx.machine().mpi;
        ctx.get(self.seg, target, disp, out, &m);
    }

    /// `MPI_Win_fence`: complete all outstanding puts and synchronize the
    /// group, reconciling clocks.
    pub fn fence(&self, ctx: &mut RankCtx) {
        let m = ctx.machine().mpi;
        ctx.quiet(&m);
        ctx.barrier_group(&self.group, &m);
    }

    /// Read this rank's own window memory.
    pub fn read_local<T: Pod>(&self, ctx: &RankCtx, elem_disp: usize, out: &mut [T]) {
        ctx.read_local(
            self.seg,
            elem_disp * std::mem::size_of::<T>(),
            as_bytes_mut(out),
        );
    }

    /// Write this rank's own window memory.
    pub fn write_local<T: Pod>(&self, ctx: &RankCtx, elem_disp: usize, data: &[T]) {
        ctx.write_local(
            self.seg,
            elem_disp * std::mem::size_of::<T>(),
            as_bytes(data),
        );
    }

    /// Physically wait for `count` signalled deliveries into this rank's
    /// window, returning the virtual arrival time of the last one (used by
    /// the directive engine; does not advance the clock).
    pub fn wait_deliveries_raw(&self, ctx: &RankCtx, count: usize) -> Time {
        ctx.wait_signals_raw(self.seg, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{run, SimConfig};

    #[test]
    fn put_fence_read() {
        run(SimConfig::new(2), |ctx| {
            let w = Comm::world(ctx);
            let win = Win::create(ctx, &w, 64);
            if w.rank(ctx) == 0 {
                win.put_slice(ctx, 1, 2, &[3.5f64, 4.5]);
            }
            win.fence(ctx);
            if w.rank(ctx) == 1 {
                let mut out = [0f64; 2];
                win.read_local(ctx, 2, &mut out);
                assert_eq!(out, [3.5, 4.5]);
            }
        });
    }

    #[test]
    fn fence_reconciles_clocks() {
        let res = run(SimConfig::new(3), |ctx| {
            let w = Comm::world(ctx);
            let win = Win::create(ctx, &w, 8);
            if w.rank(ctx) == 2 {
                ctx.compute(Time::from_micros(500));
            }
            win.fence(ctx);
            ctx.now()
        });
        let t0 = res.per_rank[0];
        assert!(res.per_rank.iter().all(|&t| t == t0));
        assert!(t0 >= Time::from_micros(500));
    }

    #[test]
    fn get_round_trip() {
        run(SimConfig::new(2), |ctx| {
            let w = Comm::world(ctx);
            let win = Win::create(ctx, &w, 16);
            if w.rank(ctx) == 1 {
                win.write_local(ctx, 0, &[7i64, 8]);
            }
            win.fence(ctx);
            if w.rank(ctx) == 0 {
                let before = ctx.now();
                let mut out = [0u8; 16];
                win.get(ctx, 1, 0, &mut out);
                assert!(ctx.now() > before, "get must charge a round trip");
                let vals: Vec<i64> = crate::pod::vec_from_bytes(&out);
                assert_eq!(vals, vec![7, 8]);
            }
        });
    }
}
