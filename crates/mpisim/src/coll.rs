//! Minimal collective operations built from point-to-point messages.
//!
//! The paper's directives cover point-to-point only, with collectives named
//! as future work; WL-LSMS and the benchmark harness still need a few
//! (parameter broadcast, result reduction), so we provide tree-based
//! implementations on top of [`Comm`].

use bytes::Bytes;
use netsim::RankCtx;

use crate::comm::Comm;
use crate::pod::{as_bytes, copy_from_bytes, Pod};

/// Reserved user-tag base for collectives (top of the user tag space).
const COLL_TAG: i32 = (1 << 20) - 16;

/// Binomial-tree broadcast from local rank `root`; `buf` is the source on
/// the root and the destination elsewhere.
pub fn bcast<T: Pod>(ctx: &mut RankCtx, comm: &Comm, root: usize, buf: &mut [T]) {
    let n = comm.size();
    if n <= 1 {
        return;
    }
    let me = comm.rank(ctx);
    // Rotate so the root is virtual rank 0.
    let vrank = (me + n - root) % n;
    let mut mask = 1usize;
    // Receive phase: find my parent.
    while mask < n {
        if vrank & mask != 0 {
            let parent = (vrank - mask + root) % n;
            comm.recv_into(ctx, Some(parent), Some(COLL_TAG), buf);
            break;
        }
        mask <<= 1;
    }
    // Send phase: fan out to children below my lowest set bit. One physical
    // copy of the payload, refcount-shared across children (the virtual
    // charges — o_send + per-child wait — are unchanged).
    let mut child_mask = mask >> 1;
    let mut shared: Option<Bytes> = None;
    while child_mask > 0 {
        let vchild = vrank + child_mask;
        if vchild < n {
            let child = (vchild + root) % n;
            let payload = shared
                .get_or_insert_with(|| Bytes::copy_from_slice(as_bytes(buf)))
                .clone();
            let req = comm.isend_bytes(ctx, child, COLL_TAG, payload);
            comm.wait_send(ctx, &req);
        }
        child_mask >>= 1;
    }
}

/// Binomial-tree reduction to local rank `root` with operator `op`
/// (elementwise). `buf` holds this rank's contribution on entry; on the
/// root it holds the reduced result on exit.
pub fn reduce<T: Pod>(
    ctx: &mut RankCtx,
    comm: &Comm,
    root: usize,
    buf: &mut [T],
    mut op: impl FnMut(T, T) -> T,
) {
    let n = comm.size();
    if n <= 1 {
        return;
    }
    let me = comm.rank(ctx);
    let vrank = (me + n - root) % n;
    let mut mask = 1usize;
    let mut scratch = vec![buf[0]; buf.len()];
    while mask < n {
        if vrank & mask == 0 {
            let vsrc = vrank | mask;
            if vsrc < n {
                let src = (vsrc + root) % n;
                comm.recv_into(ctx, Some(src), Some(COLL_TAG + 1), &mut scratch);
                for (b, s) in buf.iter_mut().zip(scratch.iter()) {
                    *b = op(*b, *s);
                }
            }
        } else {
            let vdst = vrank & !mask;
            let dst = (vdst + root) % n;
            comm.send(ctx, dst, COLL_TAG + 1, as_bytes(buf));
            return;
        }
        mask <<= 1;
    }
}

/// Reduce-to-root followed by broadcast: every rank ends with the result.
pub fn allreduce<T: Pod>(ctx: &mut RankCtx, comm: &Comm, buf: &mut [T], op: impl FnMut(T, T) -> T) {
    reduce(ctx, comm, 0, buf, op);
    bcast(ctx, comm, 0, buf);
}

/// Linear gather of equal-size contributions to local rank `root`.
/// On the root, `recv` must have `comm.size() * send.len()` elements.
pub fn gather<T: Pod>(ctx: &mut RankCtx, comm: &Comm, root: usize, send: &[T], recv: &mut [T]) {
    let n = comm.size();
    let me = comm.rank(ctx);
    let k = send.len();
    if me == root {
        assert_eq!(recv.len(), n * k, "gather buffer size mismatch");
        recv[root * k..(root + 1) * k].copy_from_slice(send);
        let mut reqs = Vec::new();
        let mut order = Vec::new();
        for src in (0..n).filter(|&r| r != root) {
            reqs.push(comm.irecv(ctx, Some(src), Some(COLL_TAG + 2)));
            order.push(src);
        }
        let outs = comm.waitall(ctx, &[], &reqs);
        for (src, out) in order.into_iter().zip(outs) {
            copy_from_bytes(&mut recv[src * k..(src + 1) * k], &out.data);
        }
    } else {
        comm.send(ctx, root, COLL_TAG + 2, as_bytes(send));
    }
}

/// Linear scatter of equal-size pieces from local rank `root`.
/// On the root, `send` must have `comm.size() * recv.len()` elements.
pub fn scatter<T: Pod>(ctx: &mut RankCtx, comm: &Comm, root: usize, send: &[T], recv: &mut [T]) {
    let n = comm.size();
    let me = comm.rank(ctx);
    let k = recv.len();
    if me == root {
        assert_eq!(send.len(), n * k, "scatter buffer size mismatch");
        let mut reqs = Vec::new();
        for dst in (0..n).filter(|&r| r != root) {
            reqs.push(comm.isend(
                ctx,
                dst,
                COLL_TAG + 3,
                as_bytes(&send[dst * k..(dst + 1) * k]),
            ));
        }
        recv.copy_from_slice(&send[root * k..(root + 1) * k]);
        comm.waitall(ctx, &reqs, &[]);
    } else {
        comm.recv_into(ctx, Some(root), Some(COLL_TAG + 3), recv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{run, SimConfig};

    #[test]
    fn bcast_all_roots_all_sizes() {
        for n in [1usize, 2, 3, 5, 8] {
            for root in 0..n {
                let res = run(SimConfig::new(n), move |ctx| {
                    let w = Comm::world(ctx);
                    let mut v = if w.rank(ctx) == root {
                        [10i64, 20, 30]
                    } else {
                        [0i64; 3]
                    };
                    bcast(ctx, &w, root, &mut v);
                    v
                });
                for v in res.per_rank {
                    assert_eq!(v, [10, 20, 30], "n={n} root={root}");
                }
            }
        }
    }

    #[test]
    fn reduce_sum() {
        for n in [1usize, 2, 4, 7] {
            let res = run(SimConfig::new(n), move |ctx| {
                let w = Comm::world(ctx);
                let mut v = [w.rank(ctx) as f64, 1.0];
                reduce(ctx, &w, 0, &mut v, |a, b| a + b);
                v
            });
            let expect_sum = (0..n).sum::<usize>() as f64;
            assert_eq!(res.per_rank[0], [expect_sum, n as f64]);
        }
    }

    #[test]
    fn allreduce_max() {
        let res = run(SimConfig::new(6), |ctx| {
            let w = Comm::world(ctx);
            let mut v = [(w.rank(ctx) * 7 % 5) as i32];
            allreduce(ctx, &w, &mut v, |a, b| a.max(b));
            v[0]
        });
        assert!(res.per_rank.iter().all(|&v| v == 4));
    }

    #[test]
    fn gather_and_scatter_roundtrip() {
        let n = 5;
        let res = run(SimConfig::new(n), move |ctx| {
            let w = Comm::world(ctx);
            let me = w.rank(ctx);
            let mine = [me as i32 * 2, me as i32 * 2 + 1];
            let mut all = vec![0i32; if me == 1 { n * 2 } else { 0 }];
            gather(ctx, &w, 1, &mine, &mut all);
            let mut back = [0i32; 2];
            let send = if me == 1 { all.clone() } else { Vec::new() };
            scatter(ctx, &w, 1, &send, &mut back);
            back
        });
        for (r, v) in res.per_rank.iter().enumerate() {
            assert_eq!(*v, [r as i32 * 2, r as i32 * 2 + 1]);
        }
    }
}
