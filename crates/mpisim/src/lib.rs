//! # mpisim — an MPI-flavoured message-passing library over `netsim`
//!
//! One of the two communication libraries the `commint` directives translate
//! to (the other is [`shmemsim`](../shmemsim)). Provides the MPI features
//! the paper's translation relies on:
//!
//! * communicators with private tag namespaces ([`comm::Comm`]);
//! * non-blocking `isend`/`irecv` with request objects and the two
//!   completion disciplines whose cost difference drives Figure 4:
//!   per-request `wait` (expensive) and consolidated `waitall` (amortized);
//! * explicit [`pack::PackBuf`] marshalling (`MPI_Pack`/`MPI_Unpack`), the
//!   original WL-LSMS style;
//! * derived [`dtype::Datatype`]s — contiguous, vector and struct — with the
//!   paper's pointer / nested-composite prohibitions and a per-scope commit
//!   cache ([`dtype::DtypeCache`]);
//! * one-sided [`win::Win`] windows with `put` and fence synchronization
//!   (the `TARGET_COMM_MPI_1SIDE` target);
//! * tree-based [`coll`] collectives for app scaffolding.
//!
//! All timing is virtual (see `netsim`); all data movement is real.

pub mod coll;
pub mod comm;
pub mod dtype;
pub mod pack;
pub mod pod;
pub mod win;

pub use comm::{Comm, RecvOut, MAX_USER_TAG, TAG_BITS};
pub use dtype::{BasicType, Datatype, DtypeCache, DtypeError, FieldKind, StructField};
pub use pack::PackBuf;
pub use pod::{as_bytes, as_bytes_mut, copy_from_bytes, vec_from_bytes, Pod};
pub use win::Win;

use netsim::{RankCtx, SendRequest};

/// Send `count` elements of raw memory through a (possibly derived)
/// datatype: gathers the payload per the datatype's layout, charges the
/// datatype per-byte cost (cheaper than an explicit pack) and the one-time
/// commit via `cache`, then posts a non-blocking send.
///
/// This is the call sequence the directive translator generates for
/// composite buffers instead of the original `MPI_Pack` chain.
#[allow(clippy::too_many_arguments)] // mirrors the generated MPI call sequence
pub fn isend_typed(
    ctx: &mut RankCtx,
    comm: &Comm,
    dst: usize,
    tag: i32,
    raw: &[u8],
    count: usize,
    dt: &Datatype,
    cache: &mut DtypeCache,
) -> SendRequest {
    let m = comm.model(ctx);
    cache.ensure_committed(ctx, dt, &m);
    let mut payload = Vec::with_capacity(count * dt.packed_size());
    dt.gather(raw, count, &mut payload);
    ctx.charge(m.byte_cost(m.datatype_per_byte, payload.len()));
    comm.isend_bytes(ctx, dst, tag, bytes::Bytes::from(payload))
}

/// Receive into raw memory through a datatype: posts a blocking receive,
/// scatters the payload per the layout, charging the datatype per-byte cost.
#[allow(clippy::too_many_arguments)] // mirrors the generated MPI call sequence
pub fn recv_typed(
    ctx: &mut RankCtx,
    comm: &Comm,
    src: Option<usize>,
    tag: Option<i32>,
    raw: &mut [u8],
    count: usize,
    dt: &Datatype,
    cache: &mut DtypeCache,
) -> RecvOut {
    let m = comm.model(ctx);
    cache.ensure_committed(ctx, dt, &m);
    let out = comm.recv(ctx, src, tag);
    dt.scatter(&out.data, count, raw);
    ctx.charge(m.byte_cost(m.datatype_per_byte, out.data.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{run, SimConfig};

    #[test]
    fn typed_struct_send_recv() {
        // Mimic sending two "atoms" of {i32 id; f64 x; f64 y;} (with padding)
        // through a derived struct type.
        #[repr(C)]
        #[derive(Clone, Copy, PartialEq, Debug)]
        struct P {
            id: i32,
            // 4 bytes padding
            x: f64,
            y: f64,
        }
        let dt = Datatype::try_struct(
            &[
                ("id", 0, 1, FieldKind::Basic(BasicType::I32)),
                ("x", 8, 1, FieldKind::Basic(BasicType::F64)),
                ("y", 16, 1, FieldKind::Basic(BasicType::F64)),
            ],
            std::mem::size_of::<P>(),
        )
        .unwrap();
        assert_eq!(dt.extent(), 24);

        let res = run(SimConfig::new(2), move |ctx| {
            let w = Comm::world(ctx);
            let mut cache = DtypeCache::new();
            if w.rank(ctx) == 0 {
                let atoms = [
                    P {
                        id: 1,
                        x: 1.0,
                        y: 2.0,
                    },
                    P {
                        id: 2,
                        x: 3.0,
                        y: 4.0,
                    },
                ];
                // SAFETY: we only *read* field ranges described by the
                // datatype, all of which are initialized.
                let raw = unsafe {
                    std::slice::from_raw_parts(
                        atoms.as_ptr().cast::<u8>(),
                        std::mem::size_of_val(&atoms),
                    )
                };
                let raw = raw.to_vec();
                let req = isend_typed(ctx, &w, 1, 0, &raw, 2, &dt, &mut cache);
                w.wait_send(ctx, &req);
                // Reuse: second send with the same layout must not re-commit.
                let req = isend_typed(ctx, &w, 1, 1, &raw, 2, &dt, &mut cache);
                w.wait_send(ctx, &req);
                ctx.stats.datatype_commits
            } else {
                let mut atoms = [P {
                    id: 0,
                    x: 0.0,
                    y: 0.0,
                }; 2];
                for tag in [0, 1] {
                    let raw = unsafe {
                        std::slice::from_raw_parts_mut(
                            atoms.as_mut_ptr().cast::<u8>(),
                            std::mem::size_of_val(&atoms),
                        )
                    };
                    recv_typed(ctx, &w, Some(0), Some(tag), raw, 2, &dt, &mut cache);
                }
                assert_eq!(
                    atoms[0],
                    P {
                        id: 1,
                        x: 1.0,
                        y: 2.0
                    }
                );
                assert_eq!(
                    atoms[1],
                    P {
                        id: 2,
                        x: 3.0,
                        y: 4.0
                    }
                );
                ctx.stats.datatype_commits
            }
        });
        // Each side committed the struct type exactly once.
        assert_eq!(res.per_rank, vec![1, 1]);
    }
}
