//! `MPI_Pack` / `MPI_Unpack`: the explicit marshalling style the original
//! WL-LSMS code uses (paper Listing 4) and the baseline the directive
//! translation's derived-datatype path is compared against in Figure 3.
//!
//! Each pack/unpack charges the per-byte copy cost from the cost model, so
//! the virtual-time difference between "pack everything then send" and
//! "send through a committed MPI struct" is measurable.

use netsim::{CostModel, RankCtx};

use crate::pod::{as_bytes, as_bytes_mut, Pod};

/// A pack buffer with an explicit position cursor, mirroring
/// `MPI_Pack(..., buf, size, &pos, comm)`.
#[derive(Debug)]
pub struct PackBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl PackBuf {
    /// Allocate a pack buffer of `size` bytes (like the `s`-sized staging
    /// buffer in the original code).
    pub fn with_capacity(size: usize) -> Self {
        PackBuf {
            buf: vec![0u8; size],
            pos: 0,
        }
    }

    /// Wrap received bytes for unpacking.
    pub fn from_bytes(data: &[u8]) -> Self {
        PackBuf {
            buf: data.to_vec(),
            pos: 0,
        }
    }

    /// Current cursor position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Reset the cursor (reuse the buffer).
    pub fn reset(&mut self) {
        self.pos = 0;
    }

    /// The packed bytes so far.
    pub fn packed(&self) -> &[u8] {
        &self.buf[..self.pos]
    }

    /// Full backing buffer (for sending `size` bytes like the original
    /// code's `MPI_Send(buf, s, MPI_PACKED, ...)`).
    pub fn as_full_slice(&self) -> &[u8] {
        &self.buf
    }

    /// `MPI_Pack`: append `count` elements from `src`, charging the copy.
    pub fn pack<T: Pod>(&mut self, ctx: &mut RankCtx, src: &[T], model: &CostModel) {
        let bytes = as_bytes(src);
        assert!(
            self.pos + bytes.len() <= self.buf.len(),
            "pack overflow: {} + {} > {}",
            self.pos,
            bytes.len(),
            self.buf.len()
        );
        self.buf[self.pos..self.pos + bytes.len()].copy_from_slice(bytes);
        self.pos += bytes.len();
        ctx.charge_pack(bytes.len(), model);
    }

    /// `MPI_Pack` of a single value.
    pub fn pack_one<T: Pod>(&mut self, ctx: &mut RankCtx, v: &T, model: &CostModel) {
        self.pack(ctx, std::slice::from_ref(v), model);
    }

    /// `MPI_Unpack`: extract `out.len()` elements, charging the copy.
    pub fn unpack<T: Pod>(&mut self, ctx: &mut RankCtx, out: &mut [T], model: &CostModel) {
        let dst = as_bytes_mut(out);
        assert!(
            self.pos + dst.len() <= self.buf.len(),
            "unpack underflow: {} + {} > {}",
            self.pos,
            dst.len(),
            self.buf.len()
        );
        dst.copy_from_slice(&self.buf[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
        ctx.charge_pack(dst.len(), model);
    }

    /// `MPI_Unpack` of a single value.
    pub fn unpack_one<T: Pod>(&mut self, ctx: &mut RankCtx, model: &CostModel) -> T {
        let mut v = [unsafe { std::mem::zeroed::<T>() }];
        self.unpack(ctx, &mut v, model);
        v[0]
    }
}

/// Wire framing for coalesced (batched) messages: each piece travels as a
/// little-endian `u32` length prefix followed by its bytes. Used by the
/// directive engine's small-message aggregation path — the sender frames
/// each directive instance's payload into one growing batch buffer, the
/// receiver peels pieces back off in order.
pub fn frame_piece(buf: &mut Vec<u8>, piece: &[u8]) {
    buf.extend_from_slice(&(piece.len() as u32).to_le_bytes());
    buf.extend_from_slice(piece);
}

/// Peel the next framed piece out of a coalesced payload, advancing `pos`.
/// Returns `None` once the payload is exhausted. Panics on a truncated
/// frame (a malformed batch is a programming error, not a recoverable
/// condition — both framing and peeling live in this module).
pub fn peel_piece<'a>(payload: &'a [u8], pos: &mut usize) -> Option<&'a [u8]> {
    if *pos >= payload.len() {
        return None;
    }
    assert!(
        *pos + 4 <= payload.len(),
        "truncated coalesced frame header"
    );
    let len = u32::from_le_bytes(payload[*pos..*pos + 4].try_into().unwrap()) as usize;
    *pos += 4;
    assert!(
        *pos + len <= payload.len(),
        "truncated coalesced frame body"
    );
    let piece = &payload[*pos..*pos + len];
    *pos += len;
    Some(piece)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{run, SimConfig};

    #[test]
    fn frame_and_peel_roundtrip() {
        let mut buf = Vec::new();
        frame_piece(&mut buf, b"alpha");
        frame_piece(&mut buf, b"");
        frame_piece(&mut buf, &[7u8; 32]);
        let mut pos = 0;
        assert_eq!(peel_piece(&buf, &mut pos), Some(b"alpha".as_slice()));
        assert_eq!(peel_piece(&buf, &mut pos), Some(b"".as_slice()));
        assert_eq!(peel_piece(&buf, &mut pos), Some([7u8; 32].as_slice()));
        assert_eq!(peel_piece(&buf, &mut pos), None);
        assert_eq!(pos, buf.len());
    }

    #[test]
    #[should_panic(expected = "truncated coalesced frame")]
    fn truncated_frame_panics() {
        let mut buf = Vec::new();
        frame_piece(&mut buf, b"abcdef");
        buf.truncate(buf.len() - 2);
        let mut pos = 0;
        peel_piece(&buf, &mut pos);
    }

    #[test]
    fn pack_unpack_roundtrip_with_charges() {
        let res = run(SimConfig::new(1), |ctx| {
            let m = ctx.machine().mpi;
            let mut pb = PackBuf::with_capacity(64);
            pb.pack_one(ctx, &42i32, &m);
            pb.pack(ctx, &[1.5f64, 2.5], &m);
            pb.pack(ctx, b"abc".as_slice(), &m);
            assert_eq!(pb.position(), 4 + 16 + 3);

            let mut rb = PackBuf::from_bytes(pb.packed());
            let i: i32 = rb.unpack_one(ctx, &m);
            let mut d = [0f64; 2];
            rb.unpack(ctx, &mut d, &m);
            let mut s = [0u8; 3];
            rb.unpack(ctx, &mut s, &m);
            assert_eq!(i, 42);
            assert_eq!(d, [1.5, 2.5]);
            assert_eq!(&s, b"abc");
            ctx.now()
        });
        // 2 * 23 bytes copied at pack_per_byte.
        assert!(res.per_rank[0] > netsim::Time::ZERO);
        assert_eq!(res.stats[0].packed_bytes, 46);
    }

    #[test]
    fn reset_reuses_buffer() {
        run(SimConfig::new(1), |ctx| {
            let m = ctx.machine().mpi;
            let mut pb = PackBuf::with_capacity(8);
            pb.pack_one(ctx, &1u64, &m);
            pb.reset();
            pb.pack_one(ctx, &2u64, &m);
            assert_eq!(pb.position(), 8);
            let mut rb = PackBuf::from_bytes(pb.packed());
            assert_eq!(rb.unpack_one::<u64>(ctx, &m), 2);
        });
    }

    #[test]
    #[should_panic(expected = "pack overflow")]
    fn overflow_panics() {
        run(SimConfig::new(1), |ctx| {
            let m = ctx.machine().mpi;
            let mut pb = PackBuf::with_capacity(4);
            pb.pack_one(ctx, &1u64, &m);
        });
    }
}
