//! Communicators and two-sided point-to-point operations.
//!
//! A [`Comm`] is a group of global ranks with its own rank numbering and a
//! private tag namespace (the communicator id is folded into the wire tag,
//! so traffic on different communicators can never match — including under
//! `ANY_SOURCE`/`ANY_TAG`). WL-LSMS uses this structure directly: a world
//! communicator for the Wang–Landau master plus one sub-communicator per
//! LSMS instance.

use std::sync::Arc;

use bytes::Bytes;
use netsim::{CostModel, RankCtx, RecvDone, RecvRequest, SendRequest, SrcSel, TagSel};

use crate::pod::{as_bytes, copy_from_bytes, Pod};

/// Number of tag bits available to users within a communicator.
pub const TAG_BITS: u32 = 20;
/// Maximum user tag value (exclusive).
pub const MAX_USER_TAG: i32 = 1 << TAG_BITS;

/// A communicator: an ordered group of global ranks plus a tag namespace.
#[derive(Clone, Debug)]
pub struct Comm {
    /// `ranks[local] = global`; ascending is not required, but ranks must be
    /// distinct.
    ranks: Arc<Vec<usize>>,
    /// Namespace id folded into wire tags. World is 0.
    id: i32,
}

impl Comm {
    /// The world communicator over all ranks of the machine.
    pub fn world(ctx: &RankCtx) -> Comm {
        Comm {
            ranks: Arc::new((0..ctx.nranks()).collect()),
            id: 0,
        }
    }

    /// Build a sub-communicator from *local* ranks of this communicator.
    /// Every member must call with identical arguments; `id` must be unique
    /// per live communicator (1..=2047) and is the caller's responsibility —
    /// deterministic SPMD code assigns these statically (e.g. LSMS instance
    /// index + 1).
    pub fn subset(&self, id: i32, locals: &[usize]) -> Comm {
        assert!(id > 0 && id < (1 << 11), "communicator id out of range");
        let globals: Vec<usize> = locals.iter().map(|&l| self.ranks[l]).collect();
        let mut dedup = globals.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), globals.len(), "duplicate ranks in subset");
        Comm {
            ranks: Arc::new(globals),
            id,
        }
    }

    /// Number of ranks in this communicator.
    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    /// The local rank of the calling context, if it is a member.
    pub fn maybe_rank(&self, ctx: &RankCtx) -> Option<usize> {
        self.ranks.iter().position(|&g| g == ctx.rank())
    }

    /// The local rank of the calling context; panics if not a member.
    pub fn rank(&self, ctx: &RankCtx) -> usize {
        self.maybe_rank(ctx)
            .unwrap_or_else(|| panic!("rank {} not in communicator", ctx.rank()))
    }

    /// Translate a local rank to a global rank.
    pub fn global(&self, local: usize) -> usize {
        self.ranks[local]
    }

    /// The member global ranks, ascending (for barriers/segments).
    pub fn sorted_globals(&self) -> Vec<usize> {
        let mut g = self.ranks.as_ref().clone();
        g.sort_unstable();
        g
    }

    /// Whether the calling context is a member.
    pub fn contains(&self, ctx: &RankCtx) -> bool {
        self.maybe_rank(ctx).is_some()
    }

    fn wire_tag(&self, user: i32) -> i32 {
        assert!(
            (0..MAX_USER_TAG).contains(&user),
            "user tag {user} out of range 0..{MAX_USER_TAG}"
        );
        (self.id << TAG_BITS) | user
    }

    fn tag_sel(&self, user: Option<i32>) -> TagSel {
        match user {
            Some(t) => TagSel::Exact(self.wire_tag(t)),
            None => TagSel::Range {
                lo: self.id << TAG_BITS,
                hi: (self.id + 1) << TAG_BITS,
            },
        }
    }

    fn src_sel(&self, src: Option<usize>) -> SrcSel {
        match src {
            Some(local) => SrcSel::Exact(self.global(local)),
            None => SrcSel::Any,
        }
    }

    /// The MPI cost model of the machine.
    pub fn model(&self, ctx: &RankCtx) -> CostModel {
        ctx.machine().mpi
    }

    // -- raw-byte operations -------------------------------------------------

    /// Non-blocking send of raw bytes to local rank `dst` (`MPI_Isend`).
    pub fn isend(&self, ctx: &mut RankCtx, dst: usize, tag: i32, data: &[u8]) -> SendRequest {
        let m = self.model(ctx);
        ctx.isend(self.global(dst), self.wire_tag(tag), data, &m)
    }

    /// Non-blocking send taking ownership of the payload.
    pub fn isend_bytes(&self, ctx: &mut RankCtx, dst: usize, tag: i32, data: Bytes) -> SendRequest {
        let m = self.model(ctx);
        ctx.isend_bytes(self.global(dst), self.wire_tag(tag), data, &m)
    }

    /// Coalesced non-blocking send: charge `MPI_Pack` for copying the
    /// framed batch into the wire buffer, then post one send for the whole
    /// batch. This is the engine entry point for the directive layer's
    /// small-message aggregation (tuning overlays); the per-batch pack
    /// charge is what makes `packed_bytes` observable for coalesced runs.
    pub fn isend_packed(
        &self,
        ctx: &mut RankCtx,
        dst: usize,
        tag: i32,
        data: Bytes,
    ) -> SendRequest {
        let m = self.model(ctx);
        ctx.charge_pack(data.len(), &m);
        ctx.isend_bytes(self.global(dst), self.wire_tag(tag), data, &m)
    }

    /// Non-blocking receive (`MPI_Irecv`). `src`/`tag` of `None` mean
    /// `ANY_SOURCE`/`ANY_TAG` (scoped to this communicator).
    pub fn irecv(&self, ctx: &mut RankCtx, src: Option<usize>, tag: Option<i32>) -> RecvRequest {
        let m = self.model(ctx);
        ctx.irecv(self.src_sel(src), self.tag_sel(tag), &m)
    }

    /// Blocking send (`MPI_Send`).
    pub fn send(&self, ctx: &mut RankCtx, dst: usize, tag: i32, data: &[u8]) {
        let req = self.isend(ctx, dst, tag, data);
        self.wait_send(ctx, &req);
    }

    /// Blocking receive (`MPI_Recv`); returns payload and envelope info.
    pub fn recv(&self, ctx: &mut RankCtx, src: Option<usize>, tag: Option<i32>) -> RecvOut {
        let req = self.irecv(ctx, src, tag);
        self.wait_recv(ctx, &req)
    }

    /// `MPI_Wait` on a send request (per-call overhead).
    pub fn wait_send(&self, ctx: &mut RankCtx, req: &SendRequest) {
        let m = self.model(ctx);
        ctx.wait_send(req, &m);
    }

    /// `MPI_Wait` on a receive request (per-call overhead).
    pub fn wait_recv(&self, ctx: &mut RankCtx, req: &RecvRequest) -> RecvOut {
        let m = self.model(ctx);
        let done = ctx.wait_recv(req, &m);
        self.recv_out(done)
    }

    /// `MPI_Waitall` over mixed requests (consolidated overhead).
    pub fn waitall(
        &self,
        ctx: &mut RankCtx,
        sends: &[SendRequest],
        recvs: &[RecvRequest],
    ) -> Vec<RecvOut> {
        let m = self.model(ctx);
        ctx.waitall(sends, recvs, &m)
            .into_iter()
            .map(|d| self.recv_out(d))
            .collect()
    }

    fn recv_out(&self, done: RecvDone) -> RecvOut {
        let src_local = self
            .ranks
            .iter()
            .position(|&g| g == done.src)
            .expect("message from outside communicator matched inside it");
        RecvOut {
            data: done.payload,
            src: src_local,
            tag: done.tag & (MAX_USER_TAG - 1),
            unexpected: done.unexpected,
        }
    }

    // -- typed convenience ----------------------------------------------------

    /// Non-blocking send of a `Pod` slice.
    pub fn isend_slice<T: Pod>(
        &self,
        ctx: &mut RankCtx,
        dst: usize,
        tag: i32,
        data: &[T],
    ) -> SendRequest {
        self.isend(ctx, dst, tag, as_bytes(data))
    }

    /// Blocking send of a `Pod` slice.
    pub fn send_slice<T: Pod>(&self, ctx: &mut RankCtx, dst: usize, tag: i32, data: &[T]) {
        self.send(ctx, dst, tag, as_bytes(data));
    }

    /// Blocking receive into a `Pod` slice (length must match exactly).
    pub fn recv_into<T: Pod>(
        &self,
        ctx: &mut RankCtx,
        src: Option<usize>,
        tag: Option<i32>,
        out: &mut [T],
    ) -> RecvOut {
        let r = self.recv(ctx, src, tag);
        copy_from_bytes(out, &r.data);
        r
    }

    /// Barrier over this communicator (`MPI_Barrier`), reconciling clocks.
    pub fn barrier(&self, ctx: &mut RankCtx) {
        let m = self.model(ctx);
        ctx.barrier_group(&self.sorted_globals(), &m);
    }

    /// `MPI_Sendrecv`: a combined send/receive with one consolidated
    /// completion — the deadlock-free shift primitive.
    #[allow(clippy::too_many_arguments)] // mirrors the MPI_Sendrecv signature
    pub fn sendrecv<T: Pod>(
        &self,
        ctx: &mut RankCtx,
        dst: usize,
        send_tag: i32,
        send: &[T],
        src: usize,
        recv_tag: i32,
        recv: &mut [T],
    ) {
        let sreq = self.isend(ctx, dst, send_tag, as_bytes(send));
        let rreq = self.irecv(ctx, Some(src), Some(recv_tag));
        let outs = self.waitall(ctx, &[sreq], std::slice::from_ref(&rreq));
        copy_from_bytes(recv, &outs[0].data);
    }
}

/// Result of a completed receive, in communicator-local terms.
#[derive(Clone, Debug)]
pub struct RecvOut {
    /// The payload bytes.
    pub data: Bytes,
    /// Local rank of the sender.
    pub src: usize,
    /// User tag.
    pub tag: i32,
    /// Whether the unexpected-message copy was paid.
    pub unexpected: bool,
}

impl RecvOut {
    /// Decode the payload as a `Pod` vector.
    pub fn to_vec<T: Pod>(&self) -> Vec<T> {
        crate::pod::vec_from_bytes(&self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{run, SimConfig};

    #[test]
    fn world_membership() {
        run(SimConfig::new(3), |ctx| {
            let w = Comm::world(ctx);
            assert_eq!(w.size(), 3);
            assert_eq!(w.rank(ctx), ctx.rank());
            assert_eq!(w.global(2), 2);
        });
    }

    #[test]
    fn typed_ping_pong() {
        run(SimConfig::new(2), |ctx| {
            let w = Comm::world(ctx);
            if w.rank(ctx) == 0 {
                w.send_slice(ctx, 1, 5, &[1.5f64, 2.5, 3.5]);
                let mut back = [0f64; 1];
                w.recv_into(ctx, Some(1), Some(6), &mut back);
                assert_eq!(back[0], 7.5);
            } else {
                let r = w.recv(ctx, Some(0), Some(5));
                let v: Vec<f64> = r.to_vec();
                assert_eq!(v, vec![1.5, 2.5, 3.5]);
                w.send_slice(ctx, 0, 6, &[v.iter().sum::<f64>()]);
            }
        });
    }

    #[test]
    fn sub_communicator_renumbers_and_isolates_tags() {
        run(SimConfig::new(4), |ctx| {
            let w = Comm::world(ctx);
            // Two disjoint sub-communicators with the same user tags.
            let a = w.subset(1, &[0, 1]);
            let b = w.subset(2, &[2, 3]);
            let my = ctx.rank();
            if a.contains(ctx) {
                let r = a.rank(ctx);
                assert_eq!(r, my);
                if r == 0 {
                    a.send_slice(ctx, 1, 9, &[my as i64]);
                } else {
                    let got = a.recv(ctx, None, None);
                    assert_eq!(got.to_vec::<i64>(), vec![0i64]);
                    assert_eq!(got.src, 0);
                    assert_eq!(got.tag, 9);
                }
            } else {
                let r = b.rank(ctx);
                assert_eq!(r, my - 2);
                if r == 0 {
                    b.send_slice(ctx, 1, 9, &[my as i64]);
                } else {
                    let got = b.recv(ctx, None, None);
                    // Must receive 2's message, never rank 0's (same tag,
                    // different communicator).
                    assert_eq!(got.to_vec::<i64>(), vec![2i64]);
                }
            }
        });
    }

    #[test]
    fn waitall_returns_in_request_order() {
        run(SimConfig::new(3), |ctx| {
            let w = Comm::world(ctx);
            match w.rank(ctx) {
                0 => {
                    let r2 = w.irecv(ctx, Some(2), Some(0));
                    let r1 = w.irecv(ctx, Some(1), Some(0));
                    let outs = w.waitall(ctx, &[], &[r2, r1]);
                    assert_eq!(outs[0].src, 2);
                    assert_eq!(outs[1].src, 1);
                }
                r => {
                    w.send_slice(ctx, 0, 0, &[r as i32]);
                }
            }
        });
    }

    #[test]
    fn ring_shift() {
        let n = 8;
        let res = run(SimConfig::new(n), |ctx| {
            let w = Comm::world(ctx);
            let me = w.rank(ctx);
            let next = (me + 1) % n;
            let prev = (me + n - 1) % n;
            let sreq = w.isend_slice(ctx, next, 0, &[me as i32]);
            let rreq = w.irecv(ctx, Some(prev), Some(0));
            let outs = w.waitall(ctx, &[sreq], &[rreq]);
            outs[0].to_vec::<i32>()[0]
        });
        for (r, &got) in res.per_rank.iter().enumerate() {
            assert_eq!(got as usize, (r + n - 1) % n);
        }
    }

    #[test]
    fn sendrecv_ring_no_deadlock() {
        let n = 6;
        let res = run(SimConfig::new(n), move |ctx| {
            let w = Comm::world(ctx);
            let me = w.rank(ctx);
            let send = [me as i64; 3];
            let mut recv = [0i64; 3];
            w.sendrecv(ctx, (me + 1) % n, 4, &send, (me + n - 1) % n, 4, &mut recv);
            recv[0]
        });
        for (r, &v) in res.per_rank.iter().enumerate() {
            assert_eq!(v as usize, (r + n - 1) % n);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_tag_rejected() {
        run(SimConfig::new(1), |ctx| {
            let w = Comm::world(ctx);
            w.isend(ctx, 0, MAX_USER_TAG, b"x");
        });
    }
}
