//! Derived datatypes — the MPI feature the directive translation leans on.
//!
//! The paper's translator replaces explicit `MPI_Pack` sequences with an
//! automatically-constructed *MPI struct*: "information about the type is
//! extracted at compile time ... for each element in the composite type, its
//! displacement within the type, block length and correlating MPI basic type
//! are accumulated into corresponding arrays ... MPI library calls are
//! generated to create and commit an MPI struct type. Pointers within a
//! composite type are prohibited as well as recursively nested composite
//! types. This new MPI data type is reused within the function scope."
//!
//! This module implements exactly that: [`Datatype`] with basic, contiguous,
//! vector and struct constructors; the pointer / nested-composite
//! prohibitions as typed errors; gather/scatter through the datatype; and a
//! per-scope [`DtypeCache`] so the commit cost is charged once per layout.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use netsim::{CostModel, RankCtx};

/// MPI basic types supported in composite layouts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BasicType {
    /// `MPI_CHAR` / `MPI_BYTE`
    U8,
    /// `MPI_INT`
    I32,
    /// `MPI_LONG_LONG`
    I64,
    /// `MPI_FLOAT`
    F32,
    /// `MPI_DOUBLE`
    F64,
}

impl BasicType {
    /// Size of one element in bytes.
    #[inline]
    pub const fn size(self) -> usize {
        match self {
            BasicType::U8 => 1,
            BasicType::I32 | BasicType::F32 => 4,
            BasicType::I64 | BasicType::F64 => 8,
        }
    }

    /// MPI-style display name.
    pub const fn mpi_name(self) -> &'static str {
        match self {
            BasicType::U8 => "MPI_CHAR",
            BasicType::I32 => "MPI_INT",
            BasicType::I64 => "MPI_LONG_LONG",
            BasicType::F32 => "MPI_FLOAT",
            BasicType::F64 => "MPI_DOUBLE",
        }
    }
}

/// What a would-be field of a composite type contains. Used by the checked
/// constructor to reproduce the paper's prohibitions with diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FieldKind {
    /// A block of basic-typed elements — allowed.
    Basic(BasicType),
    /// A pointer — prohibited ("Pointers within a composite type are
    /// prohibited").
    Pointer,
    /// A nested composite — prohibited ("as well as recursively nested
    /// composite types").
    Composite,
}

/// One `(displacement, block length, basic type)` triple of an MPI struct.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StructField {
    /// Byte displacement of the block within the composite.
    pub offset: usize,
    /// Number of consecutive `ty` elements.
    pub blocklen: usize,
    /// Element type of the block.
    pub ty: BasicType,
}

/// Errors from datatype construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DtypeError {
    /// A composite field was a pointer.
    PointerField { field: String },
    /// A composite field was itself a composite.
    NestedComposite { field: String },
    /// A field block overlaps a previous one or exceeds the extent.
    BadLayout { field: String, reason: String },
}

impl std::fmt::Display for DtypeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DtypeError::PointerField { field } => {
                write!(
                    f,
                    "pointer field `{field}` prohibited in composite datatype"
                )
            }
            DtypeError::NestedComposite { field } => write!(
                f,
                "recursively nested composite `{field}` prohibited in composite datatype"
            ),
            DtypeError::BadLayout { field, reason } => {
                write!(f, "bad layout at field `{field}`: {reason}")
            }
        }
    }
}

impl std::error::Error for DtypeError {}

/// A (possibly derived) MPI datatype.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Datatype {
    /// One basic element.
    Basic(BasicType),
    /// `count` consecutive basic elements (`MPI_Type_contiguous`).
    Contiguous { count: usize, elem: BasicType },
    /// `count` blocks of `blocklen` elements, block starts `stride` elements
    /// apart (`MPI_Type_vector`). Strided matrix rows/columns.
    Vector {
        count: usize,
        blocklen: usize,
        stride: usize,
        elem: BasicType,
    },
    /// An MPI struct: displacement/blocklength/type triples over a memory
    /// extent of `extent` bytes (`MPI_Type_create_struct`).
    Struct {
        fields: Vec<StructField>,
        extent: usize,
    },
}

impl Datatype {
    /// Build a struct datatype from field descriptors, applying the paper's
    /// prohibitions. `fields` are `(name, offset, blocklen, kind)`.
    pub fn try_struct(
        fields: &[(&str, usize, usize, FieldKind)],
        extent: usize,
    ) -> Result<Datatype, DtypeError> {
        let mut out = Vec::with_capacity(fields.len());
        for (name, offset, blocklen, kind) in fields {
            let ty = match kind {
                FieldKind::Basic(t) => *t,
                FieldKind::Pointer => {
                    return Err(DtypeError::PointerField {
                        field: (*name).to_string(),
                    })
                }
                FieldKind::Composite => {
                    return Err(DtypeError::NestedComposite {
                        field: (*name).to_string(),
                    })
                }
            };
            let end = offset + blocklen * ty.size();
            if end > extent {
                return Err(DtypeError::BadLayout {
                    field: (*name).to_string(),
                    reason: format!("block [{offset}, {end}) exceeds extent {extent}"),
                });
            }
            out.push(StructField {
                offset: *offset,
                blocklen: *blocklen,
                ty,
            });
        }
        // Overlap check (sorted sweep).
        let mut sorted = out.clone();
        sorted.sort_by_key(|f| f.offset);
        for w in sorted.windows(2) {
            let prev_end = w[0].offset + w[0].blocklen * w[0].ty.size();
            if prev_end > w[1].offset {
                return Err(DtypeError::BadLayout {
                    field: format!("@{}", w[1].offset),
                    reason: "field blocks overlap".to_string(),
                });
            }
        }
        Ok(Datatype::Struct {
            fields: out,
            extent,
        })
    }

    /// Number of payload bytes one element of this datatype contributes.
    pub fn packed_size(&self) -> usize {
        match self {
            Datatype::Basic(t) => t.size(),
            Datatype::Contiguous { count, elem } => count * elem.size(),
            Datatype::Vector {
                count,
                blocklen,
                elem,
                ..
            } => count * blocklen * elem.size(),
            Datatype::Struct { fields, .. } => {
                fields.iter().map(|f| f.blocklen * f.ty.size()).sum()
            }
        }
    }

    /// Memory extent (bytes from the start of one element to the start of
    /// the next).
    pub fn extent(&self) -> usize {
        match self {
            Datatype::Basic(t) => t.size(),
            Datatype::Contiguous { count, elem } => count * elem.size(),
            Datatype::Vector {
                count,
                blocklen,
                stride,
                elem,
            } => {
                if *count == 0 {
                    0
                } else {
                    ((count - 1) * stride + blocklen) * elem.size()
                }
            }
            Datatype::Struct { extent, .. } => *extent,
        }
    }

    /// Whether the packed representation equals the memory representation.
    pub fn is_contiguous(&self) -> bool {
        self.packed_size() == self.extent()
    }

    /// Gather (pack) `count` elements starting at `src` (raw memory image,
    /// at least `count * extent` bytes) into `out`.
    pub fn gather(&self, src: &[u8], count: usize, out: &mut Vec<u8>) {
        let extent = self.extent();
        assert!(
            src.len() >= count * extent,
            "gather source too small: {} < {}",
            src.len(),
            count * extent
        );
        match self {
            Datatype::Basic(_) | Datatype::Contiguous { .. } => {
                out.extend_from_slice(&src[..count * extent]);
            }
            Datatype::Vector {
                count: vcount,
                blocklen,
                stride,
                elem,
            } => {
                let es = elem.size();
                for e in 0..count {
                    let base = e * extent;
                    for b in 0..*vcount {
                        let start = base + b * stride * es;
                        out.extend_from_slice(&src[start..start + blocklen * es]);
                    }
                }
            }
            Datatype::Struct { fields, extent } => {
                for e in 0..count {
                    let base = e * extent;
                    for f in fields {
                        let start = base + f.offset;
                        let len = f.blocklen * f.ty.size();
                        out.extend_from_slice(&src[start..start + len]);
                    }
                }
            }
        }
    }

    /// Scatter (unpack) packed bytes into `count` elements at `dst` (raw
    /// memory image, at least `count * extent` bytes).
    pub fn scatter(&self, packed: &[u8], count: usize, dst: &mut [u8]) {
        let extent = self.extent();
        assert!(
            dst.len() >= count * extent,
            "scatter destination too small: {} < {}",
            dst.len(),
            count * extent
        );
        assert!(
            packed.len() >= count * self.packed_size(),
            "scatter source too small: {} < {}",
            packed.len(),
            count * self.packed_size()
        );
        let mut pos = 0usize;
        match self {
            Datatype::Basic(_) | Datatype::Contiguous { .. } => {
                dst[..count * extent].copy_from_slice(&packed[..count * extent]);
            }
            Datatype::Vector {
                count: vcount,
                blocklen,
                stride,
                elem,
            } => {
                let es = elem.size();
                for e in 0..count {
                    let base = e * extent;
                    for b in 0..*vcount {
                        let start = base + b * stride * es;
                        let len = blocklen * es;
                        dst[start..start + len].copy_from_slice(&packed[pos..pos + len]);
                        pos += len;
                    }
                }
            }
            Datatype::Struct { fields, extent } => {
                for e in 0..count {
                    let base = e * extent;
                    for f in fields {
                        let start = base + f.offset;
                        let len = f.blocklen * f.ty.size();
                        dst[start..start + len].copy_from_slice(&packed[pos..pos + len]);
                        pos += len;
                    }
                }
            }
        }
    }

    /// A stable hash identifying this layout, used as the cache key for
    /// commit-once-per-scope reuse.
    pub fn layout_key(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }

    /// Emit the MPI calls a compiler would generate to build this type
    /// (for the pragma front-end's code generator and for documentation).
    pub fn describe_mpi_calls(&self, var: &str) -> Vec<String> {
        match self {
            Datatype::Basic(t) => vec![format!("/* {var}: basic {} */", t.mpi_name())],
            Datatype::Contiguous { count, elem } => vec![format!(
                "MPI_Type_contiguous({count}, {}, &{var});",
                elem.mpi_name()
            )],
            Datatype::Vector {
                count,
                blocklen,
                stride,
                elem,
            } => vec![format!(
                "MPI_Type_vector({count}, {blocklen}, {stride}, {}, &{var});",
                elem.mpi_name()
            )],
            Datatype::Struct { fields, .. } => {
                let mut lines = Vec::new();
                let n = fields.len();
                let blocklens: Vec<String> =
                    fields.iter().map(|f| f.blocklen.to_string()).collect();
                let disps: Vec<String> = fields.iter().map(|f| f.offset.to_string()).collect();
                let types: Vec<String> =
                    fields.iter().map(|f| f.ty.mpi_name().to_string()).collect();
                lines.push(format!(
                    "int {var}_blocklens[{n}] = {{{}}};",
                    blocklens.join(", ")
                ));
                lines.push(format!(
                    "MPI_Aint {var}_disps[{n}] = {{{}}};",
                    disps.join(", ")
                ));
                lines.push(format!(
                    "MPI_Datatype {var}_types[{n}] = {{{}}};",
                    types.join(", ")
                ));
                lines.push(format!(
                    "MPI_Type_create_struct({n}, {var}_blocklens, {var}_disps, {var}_types, &{var});"
                ));
                lines.push(format!("MPI_Type_commit(&{var});"));
                lines
            }
        }
    }
}

/// Per-scope cache of committed datatypes: the commit cost is charged only
/// the first time a layout is used, matching the paper's "reused within the
/// function scope for any communication directive with buffers of the same
/// type".
#[derive(Default)]
pub struct DtypeCache {
    committed: HashMap<u64, ()>,
}

impl DtypeCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensure `dt` is committed under `model`, charging the commit cost on
    /// first use. Returns `true` if this call performed the commit.
    pub fn ensure_committed(
        &mut self,
        ctx: &mut RankCtx,
        dt: &Datatype,
        model: &CostModel,
    ) -> bool {
        if matches!(dt, Datatype::Basic(_)) {
            return false; // basic types are predefined, never committed
        }
        let key = dt.layout_key();
        if let std::collections::hash_map::Entry::Vacant(e) = self.committed.entry(key) {
            e.insert(());
            ctx.charge_datatype_commit(model);
            true
        } else {
            ctx.note_dtype_cache_hit();
            false
        }
    }

    /// Number of distinct layouts committed in this scope.
    pub fn len(&self) -> usize {
        self.committed.len()
    }

    /// Whether nothing has been committed yet.
    pub fn is_empty(&self) -> bool {
        self.committed.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(Datatype::Basic(BasicType::F64).packed_size(), 8);
        let c = Datatype::Contiguous {
            count: 5,
            elem: BasicType::I32,
        };
        assert_eq!(c.packed_size(), 20);
        assert_eq!(c.extent(), 20);
        assert!(c.is_contiguous());
    }

    #[test]
    fn vector_extent_and_pack() {
        // 3 blocks of 2 f32, stride 4 elements => extent (2*4+2)*4 = 40
        let v = Datatype::Vector {
            count: 3,
            blocklen: 2,
            stride: 4,
            elem: BasicType::F32,
        };
        assert_eq!(v.packed_size(), 24);
        assert_eq!(v.extent(), 40);
        assert!(!v.is_contiguous());

        let src: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let raw = crate::pod::as_bytes(&src);
        let mut packed = Vec::new();
        v.gather(raw, 1, &mut packed);
        let vals: Vec<f32> = crate::pod::vec_from_bytes(&packed);
        assert_eq!(vals, vec![0.0, 1.0, 4.0, 5.0, 8.0, 9.0]);

        let mut dst = vec![0f32; 10];
        v.scatter(&packed, 1, crate::pod::as_bytes_mut(&mut dst));
        assert_eq!(&dst[0..2], &[0.0, 1.0]);
        assert_eq!(&dst[4..6], &[4.0, 5.0]);
        assert_eq!(&dst[8..10], &[8.0, 9.0]);
        assert_eq!(dst[2], 0.0);
    }

    #[test]
    fn struct_roundtrip() {
        // A struct resembling {i32 a; f64 b; u8 c[3];} with padding.
        let dt = Datatype::try_struct(
            &[
                ("a", 0, 1, FieldKind::Basic(BasicType::I32)),
                ("b", 8, 1, FieldKind::Basic(BasicType::F64)),
                ("c", 16, 3, FieldKind::Basic(BasicType::U8)),
            ],
            24,
        )
        .unwrap();
        assert_eq!(dt.packed_size(), 4 + 8 + 3);
        assert_eq!(dt.extent(), 24);

        let mut raw = vec![0u8; 48]; // two elements
        raw[0..4].copy_from_slice(&7i32.to_ne_bytes());
        raw[8..16].copy_from_slice(&1.5f64.to_ne_bytes());
        raw[16..19].copy_from_slice(&[1, 2, 3]);
        raw[24..28].copy_from_slice(&9i32.to_ne_bytes());
        raw[32..40].copy_from_slice(&2.5f64.to_ne_bytes());
        raw[40..43].copy_from_slice(&[4, 5, 6]);

        let mut packed = Vec::new();
        dt.gather(&raw, 2, &mut packed);
        assert_eq!(packed.len(), 30);

        let mut back = vec![0u8; 48];
        dt.scatter(&packed, 2, &mut back);
        // Padding differs (stays zero) but all field bytes roundtrip.
        assert_eq!(&back[0..4], &raw[0..4]);
        assert_eq!(&back[8..19], &raw[8..19]);
        assert_eq!(&back[24..28], &raw[24..28]);
        assert_eq!(&back[32..43], &raw[32..43]);
    }

    #[test]
    fn pointer_field_rejected() {
        let err = Datatype::try_struct(
            &[
                ("a", 0, 1, FieldKind::Basic(BasicType::I32)),
                ("p", 8, 1, FieldKind::Pointer),
            ],
            16,
        )
        .unwrap_err();
        assert!(matches!(err, DtypeError::PointerField { .. }));
        assert!(err.to_string().contains("pointer field `p`"));
    }

    #[test]
    fn nested_composite_rejected() {
        let err = Datatype::try_struct(&[("inner", 0, 1, FieldKind::Composite)], 8).unwrap_err();
        assert!(matches!(err, DtypeError::NestedComposite { .. }));
    }

    #[test]
    fn layout_violations_rejected() {
        // Block past extent.
        let err =
            Datatype::try_struct(&[("a", 4, 2, FieldKind::Basic(BasicType::F64))], 16).unwrap_err();
        assert!(matches!(err, DtypeError::BadLayout { .. }));
        // Overlapping blocks.
        let err = Datatype::try_struct(
            &[
                ("a", 0, 2, FieldKind::Basic(BasicType::I32)),
                ("b", 4, 1, FieldKind::Basic(BasicType::I32)),
            ],
            12,
        )
        .unwrap_err();
        assert!(matches!(err, DtypeError::BadLayout { .. }));
    }

    #[test]
    fn layout_key_stable_and_discriminating() {
        let a = Datatype::Contiguous {
            count: 3,
            elem: BasicType::F64,
        };
        let b = Datatype::Contiguous {
            count: 3,
            elem: BasicType::F64,
        };
        let c = Datatype::Contiguous {
            count: 4,
            elem: BasicType::F64,
        };
        assert_eq!(a.layout_key(), b.layout_key());
        assert_ne!(a.layout_key(), c.layout_key());
    }

    #[test]
    fn cache_commits_once_per_layout_and_counts_hits() {
        let cfg = netsim::SimConfig::new(1);
        let res = netsim::run(cfg, |ctx| {
            let model = ctx.machine().mpi;
            let mut cache = DtypeCache::new();
            let vec_t = Datatype::Vector {
                count: 4,
                blocklen: 1,
                stride: 8,
                elem: BasicType::F64,
            };
            let strct =
                Datatype::try_struct(&[("a", 0, 1, FieldKind::Basic(BasicType::I32))], 4).unwrap();
            // First use of each layout commits; every reuse is a cache hit.
            assert!(cache.ensure_committed(ctx, &vec_t, &model));
            assert!(!cache.ensure_committed(ctx, &vec_t, &model));
            assert!(cache.ensure_committed(ctx, &strct, &model));
            for _ in 0..3 {
                assert!(!cache.ensure_committed(ctx, &strct, &model));
            }
            // Basic types are predefined: neither a commit nor a cache hit.
            assert!(!cache.ensure_committed(ctx, &Datatype::Basic(BasicType::F64), &model));
            assert_eq!(cache.len(), 2);
        });
        let stats = res.stats[0];
        assert_eq!(stats.datatype_commits, 2);
        assert_eq!(stats.dtype_cache_hits, 4);
    }

    #[test]
    fn describe_struct_calls() {
        let dt = Datatype::try_struct(
            &[
                ("a", 0, 1, FieldKind::Basic(BasicType::I32)),
                ("b", 8, 2, FieldKind::Basic(BasicType::F64)),
            ],
            24,
        )
        .unwrap();
        let calls = dt.describe_mpi_calls("atom_t");
        assert!(calls.iter().any(|l| l.contains("MPI_Type_create_struct")));
        assert!(calls.iter().any(|l| l.contains("MPI_Type_commit")));
        assert!(calls.iter().any(|l| l.contains("MPI_DOUBLE")));
    }
}
