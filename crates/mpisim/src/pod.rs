//! Plain-old-data marker trait and byte-view helpers.
//!
//! Communication payloads move as raw bytes. [`Pod`] marks the primitive
//! element types (and fixed-size arrays of them) whose in-memory
//! representation has no padding and no invalid bit patterns, so viewing a
//! slice of them as bytes — and back — is sound.

/// Types safely viewable as raw bytes and reconstructible from them.
///
/// # Safety
///
/// Implementors must be `Copy`, contain no padding bytes, no pointers, and
/// every bit pattern of the correct length must be a valid value.
pub unsafe trait Pod: Copy + Send + Sync + 'static {}

unsafe impl Pod for u8 {}
unsafe impl Pod for i8 {}
unsafe impl Pod for u16 {}
unsafe impl Pod for i16 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for i32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for i64 {}
unsafe impl Pod for f32 {}
unsafe impl Pod for f64 {}
unsafe impl<T: Pod, const N: usize> Pod for [T; N] {}

/// View a slice of `Pod` values as bytes (native endianness).
#[inline]
pub fn as_bytes<T: Pod>(slice: &[T]) -> &[u8] {
    // SAFETY: T is Pod (no padding), lifetime and length preserved.
    unsafe { std::slice::from_raw_parts(slice.as_ptr().cast::<u8>(), std::mem::size_of_val(slice)) }
}

/// View a mutable slice of `Pod` values as bytes.
#[inline]
pub fn as_bytes_mut<T: Pod>(slice: &mut [T]) -> &mut [u8] {
    // SAFETY: T is Pod, every bit pattern valid, so arbitrary writes are fine.
    unsafe {
        std::slice::from_raw_parts_mut(
            slice.as_mut_ptr().cast::<u8>(),
            std::mem::size_of_val(slice),
        )
    }
}

/// Copy bytes into a slice of `Pod` values. Panics if lengths mismatch.
#[inline]
pub fn copy_from_bytes<T: Pod>(dst: &mut [T], src: &[u8]) {
    let dst_bytes = as_bytes_mut(dst);
    assert_eq!(
        dst_bytes.len(),
        src.len(),
        "byte length mismatch: dst {} vs src {}",
        dst_bytes.len(),
        src.len()
    );
    dst_bytes.copy_from_slice(src);
}

/// Reinterpret a byte slice as a vector of `Pod` values (copies).
#[inline]
pub fn vec_from_bytes<T: Pod>(src: &[u8]) -> Vec<T> {
    let n = src.len() / std::mem::size_of::<T>();
    assert_eq!(
        n * std::mem::size_of::<T>(),
        src.len(),
        "byte length {} not a multiple of element size {}",
        src.len(),
        std::mem::size_of::<T>()
    );
    let mut out = vec![T::zeroed(); n];
    copy_from_bytes(&mut out, src);
    out
}

/// Internal helper: a zero value of any `Pod` type.
trait Zeroed: Sized {
    fn zeroed() -> Self;
}

impl<T: Pod> Zeroed for T {
    #[inline]
    fn zeroed() -> T {
        // SAFETY: every bit pattern (including all-zeros) is valid for Pod.
        unsafe { std::mem::zeroed() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_f64() {
        let v = [1.5f64, -2.25, 0.0, f64::MAX];
        let bytes = as_bytes(&v);
        assert_eq!(bytes.len(), 32);
        let back: Vec<f64> = vec_from_bytes(bytes);
        assert_eq!(&back, &v);
    }

    #[test]
    fn roundtrip_i32() {
        let v = [i32::MIN, -1, 0, 7, i32::MAX];
        let back: Vec<i32> = vec_from_bytes(as_bytes(&v));
        assert_eq!(&back, &v);
    }

    #[test]
    fn roundtrip_fixed_array_elems() {
        let v = [[1.0f64, 2.0, 3.0], [4.0, 5.0, 6.0]];
        let bytes = as_bytes(&v);
        assert_eq!(bytes.len(), 48);
        let back: Vec<[f64; 3]> = vec_from_bytes(bytes);
        assert_eq!(&back, &v);
    }

    #[test]
    fn copy_into_mutable_slice() {
        let src = [9u32, 8, 7];
        let mut dst = [0u32; 3];
        copy_from_bytes(&mut dst, as_bytes(&src));
        assert_eq!(dst, src);
    }

    #[test]
    #[should_panic(expected = "byte length mismatch")]
    fn mismatched_copy_panics() {
        let mut dst = [0u16; 2];
        copy_from_bytes(&mut dst, &[0u8; 5]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn ragged_vec_from_bytes_panics() {
        let _: Vec<u32> = vec_from_bytes(&[0u8; 6]);
    }
}
