//! Layout-engine benchmark: pack vs derived datatype vs typed put, swept
//! over payload shape × lowering strategy × backend.
//!
//! Usage: `fig_ddt [--ranks N] [--iters I] [--jobs J] [--workers W]
//!                 [--ab] [--min-factor F] [--diff-out FILE] [--stats]
//!                 [--json] [--baseline FILE] [--ledger FILE]`
//!
//! Each point runs a ring exchange of one shaped payload — contiguous,
//! strided, struct, struct-of-arrays, or one-level-nested composite —
//! under a fixed lowering policy (`pack` = the Listing-4 baseline that
//! stages everything through pack/unpack, `ddt` = always derived
//! datatypes, `auto` = the cost-model chooser) on both the MPI two-sided
//! and SHMEM backends. The element-count axis (reported in the JSON
//! `ranks` field) crosses the chooser's split-vs-pack crossover, so `auto`
//! must switch strategies mid-sweep to win everywhere.
//!
//! `--ab` turns the run into a gate: for at least one backend, the `auto`
//! series must be no slower than `pack` at EVERY (shape, count) point and
//! its mean speedup over `pack` must reach `--min-factor` (default 1.3),
//! else exit 2. Virtual times are exact integers, identical across
//! engines and hosts, so `--baseline` diffs are byte-precise.
//!
//! The gate also attaches a site-attributed explanation: each shape runs
//! as its own directive site, so profiling one observed run of all five
//! shapes under `pack` and one under `auto` (MPI two-sided backend, the
//! largest element count) and diffing them with commdiff shows exactly
//! which shapes the chooser won or lost on. The per-site report goes to
//! stderr and the diff JSON to `--diff-out FILE` (default
//! `fig_ddt.ab.diff.json`). `--ledger` appends the `--json` report to the
//! run-history ledger read by `commscope trend`.

use std::time::Instant;

use bench::{
    arg_str, arg_usize, default_jobs, emit_json_report, render_stats, sweep, BenchReport,
    SeriesReport,
};
use commint::buffer::{CompositeLayout, Described, FieldDef, NestedField};
use commint::prelude::*;

use mpisim::dtype::BasicType;
use mpisim::Comm;
use netsim::{run, ExecPolicy, RankStats, SimConfig, Time};

/// Element counts swept per series; the largest crosses the ~5.8 KB
/// struct-of-arrays split-vs-pack crossover on the Gemini MPI model.
const COUNTS: [usize; 3] = [64, 512, 4096];

/// Payload shapes under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Shape {
    Contig,
    Strided,
    Struct,
    Soa,
    Nested,
}

impl Shape {
    const ALL: [Shape; 5] = [
        Shape::Contig,
        Shape::Strided,
        Shape::Struct,
        Shape::Soa,
        Shape::Nested,
    ];

    fn label(self) -> &'static str {
        match self {
            Shape::Contig => "contig",
            Shape::Strided => "strided",
            Shape::Struct => "struct",
            Shape::Soa => "soa",
            Shape::Nested => "nested",
        }
    }

    /// Directive site id carried by this shape's `comm_p2p`: distinct per
    /// shape so traces, profiles, and the A/B diff attribute each shape's
    /// cost to its own row.
    fn site(self) -> u32 {
        match self {
            Shape::Contig => 1,
            Shape::Strided => 2,
            Shape::Struct => 3,
            Shape::Soa => 4,
            Shape::Nested => 5,
        }
    }
}

fn policy_label(p: LoweringPolicy) -> &'static str {
    match p {
        LoweringPolicy::AlwaysPack => "pack",
        LoweringPolicy::AlwaysDatatype => "ddt",
        LoweringPolicy::Auto => "auto",
    }
}

fn backend_label(t: Target) -> &'static str {
    match t {
        Target::Mpi2Side => "mpi2",
        Target::Mpi1Side => "mpi1",
        Target::Shmem => "shmem",
    }
}

commint::comm_datatype! {
    /// The struct shape: a particle-like record with a vector member.
    struct Cell {
        id: i32,
        pos: [f64; 3],
        charge: f64,
    }
}

commint::comm_datatype! {
    /// Inner composite embedded by the nested shape.
    struct Moment {
        m: [f64; 2],
        weight: f64,
    }
}

/// The one-level-nested shape: a composite embedding [`Moment`], flattened
/// by [`CompositeLayout::nested`] into an ordinary struct datatype.
#[repr(C)]
#[derive(Clone, Copy, Debug, PartialEq)]
struct Site {
    tag: i32,
    moment: Moment,
    energy: f64,
}

unsafe impl Described for Site {
    fn layout() -> CompositeLayout {
        CompositeLayout::nested::<Site>(
            "Site",
            vec![
                NestedField::Prim(FieldDef {
                    name: "tag".into(),
                    offset: std::mem::offset_of!(Site, tag),
                    ty: BasicType::I32,
                    blocklen: 1,
                }),
                NestedField::Nested {
                    name: "moment".into(),
                    offset: std::mem::offset_of!(Site, moment),
                    layout: Moment::layout(),
                },
                NestedField::Prim(FieldDef {
                    name: "energy".into(),
                    offset: std::mem::offset_of!(Site, energy),
                    ty: BasicType::F64,
                    blocklen: 1,
                }),
            ],
        )
    }
}

fn ring_params(target: Target) -> CommParams {
    CommParams::new()
        .sender((RankExpr::rank() - RankExpr::lit(1) + RankExpr::nranks()) % RankExpr::nranks())
        .receiver((RankExpr::rank() + RankExpr::lit(1)) % RankExpr::nranks())
        .target(target)
}

/// One ring exchange of `count` elements of `shape` inside an open
/// session. Each shape's `comm_p2p` carries its own site id
/// ([`Shape::site`]), so attribution stays per-shape even though every
/// shape shares this lexical callsite.
fn exchange(session: &mut CommSession<'_>, params: &CommParams, shape: Shape, count: usize) {
    let me = session.rank() as i64;
    let nranks = session.size();
    let prev = (session.rank() + nranks - 1) % nranks;
    match shape {
        Shape::Contig => {
            let src = vec![me as f64; count];
            let mut dst = vec![0f64; count];
            session
                .region(params, |reg| {
                    reg.p2p()
                        .site(shape.site())
                        .count(RankExpr::lit(count as i64))
                        .sbuf(Prim::new("s", &src))
                        .rbuf(PrimMut::new("r", &mut dst))
                        .run()
                        .unwrap();
                })
                .unwrap();
            session.flush();
            assert_eq!(dst[0] as usize, prev, "contig payload corrupted");
        }
        Shape::Strided => {
            // blocklen-2 blocks every 4: half the memory moves.
            let src = vec![me as f64; count * 4];
            let mut dst = vec![-1f64; count * 4];
            session
                .region(params, |reg| {
                    reg.p2p()
                        .site(shape.site())
                        .count(RankExpr::lit(count as i64))
                        .sbuf(PrimStrided::new("s", &src, 2, 4))
                        .rbuf(PrimStridedMut::new("r", &mut dst, 2, 4))
                        .run()
                        .unwrap();
                })
                .unwrap();
            session.flush();
            assert_eq!(dst[0] as usize, prev, "strided payload corrupted");
            assert_eq!(dst[2], -1.0, "strided gap overwritten");
        }
        Shape::Struct => {
            let src = vec![
                Cell {
                    id: me as i32,
                    pos: [me as f64; 3],
                    charge: 1.0,
                };
                count
            ];
            let mut dst = vec![
                Cell {
                    id: -1,
                    pos: [0.0; 3],
                    charge: 0.0,
                };
                count
            ];
            session
                .region(params, |reg| {
                    reg.p2p()
                        .site(shape.site())
                        .count(RankExpr::lit(count as i64))
                        .sbuf(Struc::new("s", &src))
                        .rbuf(StrucMut::new("r", &mut dst))
                        .run()
                        .unwrap();
                })
                .unwrap();
            session.flush();
            assert_eq!(dst[0].id as usize, prev, "struct payload corrupted");
        }
        Shape::Soa => {
            let a = vec![me; count];
            let b = vec![me as f64; count];
            let c = vec![me as i32; count * 2];
            let mut ra = vec![0i64; count];
            let mut rb = vec![0f64; count];
            let mut rc = vec![0i32; count * 2];
            session
                .region(params, |reg| {
                    reg.p2p()
                        .site(shape.site())
                        .count(RankExpr::lit(count as i64))
                        .sbuf(
                            Soa::new("s")
                                .field("a", &a)
                                .field("b", &b)
                                .field_blocks("c", &c, 2),
                        )
                        .rbuf(
                            SoaMut::new("r")
                                .field("a", &mut ra)
                                .field("b", &mut rb)
                                .field_blocks("c", &mut rc, 2),
                        )
                        .run()
                        .unwrap();
                })
                .unwrap();
            session.flush();
            assert_eq!(ra[0] as usize, prev, "soa payload corrupted");
        }
        Shape::Nested => {
            let src = vec![
                Site {
                    tag: me as i32,
                    moment: Moment {
                        m: [me as f64; 2],
                        weight: 0.5,
                    },
                    energy: 2.0,
                };
                count
            ];
            let mut dst = vec![
                Site {
                    tag: -1,
                    moment: Moment {
                        m: [0.0; 2],
                        weight: 0.0,
                    },
                    energy: 0.0,
                };
                count
            ];
            session
                .region(params, |reg| {
                    reg.p2p()
                        .site(shape.site())
                        .count(RankExpr::lit(count as i64))
                        .sbuf(Struc::new("s", &src))
                        .rbuf(StrucMut::new("r", &mut dst))
                        .run()
                        .unwrap();
                })
                .unwrap();
            session.flush();
            assert_eq!(dst[0].tag as usize, prev, "nested payload corrupted");
        }
    }
}

/// Run `iters` ring exchanges of `count` elements of `shape` under the
/// given lowering policy and return (makespan, merged stats).
fn measure(
    shape: Shape,
    policy: LoweringPolicy,
    target: Target,
    count: usize,
    nranks: usize,
    iters: usize,
    exec: ExecPolicy,
) -> (Time, RankStats) {
    let res = run(SimConfig::new(nranks).with_exec(exec), move |ctx| {
        let comm = Comm::world(ctx);
        let mut session = CommSession::new(ctx, comm).with_lowering(policy);
        let params = ring_params(target);
        for _ in 0..iters {
            exchange(&mut session, &params, shape, count);
        }
    });
    (res.makespan(), res.total_stats())
}

/// Observed run for the A/B diff artifact: all five shapes in ONE
/// simulation (each on its own directive site) under `policy`, traced and
/// metered, returned as a commscope profile document.
fn profile_observed(
    policy: LoweringPolicy,
    target: Target,
    count: usize,
    nranks: usize,
    iters: usize,
    exec: ExecPolicy,
) -> commscope::Json {
    let res = run(
        SimConfig::new(nranks)
            .with_exec(exec)
            .with_trace()
            .with_metrics(),
        move |ctx| {
            let comm = Comm::world(ctx);
            let mut session = CommSession::new(ctx, comm).with_lowering(policy);
            let params = ring_params(target);
            for &shape in &Shape::ALL {
                for _ in 0..iters {
                    exchange(&mut session, &params, shape, count);
                }
            }
        },
    );
    let trace = res.trace.as_deref().expect("trace enabled");
    let metrics = res.metrics.as_deref().expect("metrics enabled");
    let analysis = commscope::analyze(trace, nranks, &res.final_times);
    commscope::profile_json(
        "fig_ddt",
        &[
            ("ranks".to_string(), nranks as i64),
            ("iters".to_string(), iters as i64),
            ("count".to_string(), count as i64),
        ],
        &analysis,
        metrics,
    )
}

fn arg_f64(args: &[String], name: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nranks = arg_usize(&args, "--ranks").unwrap_or(8);
    let iters = arg_usize(&args, "--iters").unwrap_or(8);
    let jobs = arg_usize(&args, "--jobs").unwrap_or_else(default_jobs);
    let stats = args.iter().any(|a| a == "--stats");
    let json = args.iter().any(|a| a == "--json");
    let ab = args.iter().any(|a| a == "--ab");
    let baseline = arg_str(&args, "--baseline");
    let min_factor = arg_f64(&args, "--min-factor").unwrap_or(1.3);
    let workers = arg_usize(&args, "--workers");
    let exec = match workers {
        Some(w) => ExecPolicy::bounded(w),
        None => ExecPolicy::threads(),
    };

    let backends = [Target::Mpi2Side, Target::Shmem];
    let policies = [
        LoweringPolicy::AlwaysPack,
        LoweringPolicy::AlwaysDatatype,
        LoweringPolicy::Auto,
    ];
    // One work item per (backend, policy, shape, count) point; results come
    // back in input order, so series assembly below is deterministic.
    let points: Vec<(Target, LoweringPolicy, Shape, usize)> = backends
        .iter()
        .flat_map(|&t| {
            policies.iter().flat_map(move |&p| {
                Shape::ALL
                    .iter()
                    .flat_map(move |&s| COUNTS.iter().map(move |&c| (t, p, s, c)))
            })
        })
        .collect();
    let t0 = Instant::now();
    let results = sweep(&points, jobs, |&(t, p, s, c)| {
        measure(s, p, t, c, nranks, iters, exec)
    });
    let wall_s = t0.elapsed().as_secs_f64();

    // Assemble one series per (backend, policy, shape) with COUNTS as x.
    let mut series = Vec::new();
    let mut stat_lines = Vec::new();
    let mut idx = 0usize;
    for &t in &backends {
        for &p in &policies {
            for &s in &Shape::ALL {
                let runs = &results[idx..idx + COUNTS.len()];
                idx += COUNTS.len();
                let label = format!("{}/{}/{}", s.label(), policy_label(p), backend_label(t));
                let mut total = RankStats::default();
                for (_, st) in runs {
                    total.merge(st);
                }
                series.push(SeriesReport::new(
                    label.clone(),
                    runs.iter().map(|(time, _)| time.as_nanos()).collect(),
                    &total,
                ));
                if stats {
                    stat_lines.push(render_stats(&label, &total));
                }
            }
        }
    }

    // A/B gate: per backend, `auto` must hold every point against `pack`
    // and beat it by `min_factor` on average; one conforming backend
    // passes the gate (the chooser is per-target, so the other backend's
    // margin may legitimately differ).
    if ab {
        let by_label: std::collections::HashMap<&str, &SeriesReport> =
            series.iter().map(|s| (s.label.as_str(), s)).collect();
        let mut any_backend_ok = false;
        for &t in &backends {
            let mut regressed = false;
            let mut factor = 0.0;
            let mut npoints = 0usize;
            for &s in &Shape::ALL {
                let auto = by_label[format!("{}/auto/{}", s.label(), backend_label(t)).as_str()];
                let pack = by_label[format!("{}/pack/{}", s.label(), backend_label(t)).as_str()];
                for (i, (&at, &pt)) in auto.time_ns.iter().zip(&pack.time_ns).enumerate() {
                    if at > pt {
                        eprintln!(
                            "[ab] {}: auto slower than pack for {} at count {}: {} ns > {} ns",
                            backend_label(t),
                            s.label(),
                            COUNTS[i],
                            at,
                            pt
                        );
                        regressed = true;
                    }
                    factor += pt as f64 / at as f64;
                    npoints += 1;
                }
            }
            factor /= npoints as f64;
            let ok = !regressed && factor >= min_factor;
            eprintln!(
                "[ab] {}: mean auto-vs-pack speedup {factor:.3}x over {npoints} points, \
                 regressions: {} (gate {min_factor:.3}x)",
                backend_label(t),
                if regressed { "yes" } else { "no" },
            );
            any_backend_ok |= ok;
        }
        // Site-attributed explanation: one observed run of all five shapes
        // under pack vs auto (MPI two-sided, largest count); each shape is
        // its own directive site, so the diff rows name the shapes the
        // chooser won or lost on.
        let count = *COUNTS.last().expect("non-empty count axis");
        let base = profile_observed(
            LoweringPolicy::AlwaysPack,
            Target::Mpi2Side,
            count,
            nranks,
            iters,
            exec,
        );
        let cand = profile_observed(
            LoweringPolicy::Auto,
            Target::Mpi2Side,
            count,
            nranks,
            iters,
            exec,
        );
        let diff = commscope::diff_profiles(&base, &cand).expect("diff own profiles");
        eprint!("{}", commscope::render_diff_text(&diff));
        let diff_path = arg_str(&args, "--diff-out").unwrap_or("fig_ddt.ab.diff.json");
        std::fs::write(diff_path, diff.render()).expect("write A/B diff artifact");
        eprintln!("[ab] wrote site-attributed diff to {diff_path}");

        if !any_backend_ok {
            eprintln!("[ab] FAILED: no backend is regression-free with mean >= {min_factor:.3}x");
            std::process::exit(2);
        }
        eprintln!("[ab] ok");
    }

    if json {
        let report = BenchReport {
            bench: "fig_ddt".into(),
            args: vec![
                ("ranks".into(), nranks as i64),
                ("iters".into(), iters as i64),
                ("workers".into(), workers.map_or(-1, |w| w as i64)),
            ],
            ranks: COUNTS.to_vec(),
            series,
            wall_s,
        };
        bench::ledger::maybe_record(&args, &report, &bench::ledger::engine_label(workers));
        std::process::exit(emit_json_report(&report, baseline));
    }

    println!(
        "Fig. DDT — layout lowering sweep (virtual ns, ring of {nranks} ranks x {iters} iters)"
    );
    println!(
        "{:<20} {:>14} {:>14} {:>14}",
        "series", COUNTS[0], COUNTS[1], COUNTS[2]
    );
    for s in &series {
        println!(
            "{:<20} {:>14} {:>14} {:>14}",
            s.label, s.time_ns[0], s.time_ns[1], s.time_ns[2]
        );
    }
    for line in stat_lines {
        println!("{line}");
    }
}
