//! Load-test the `commintd` analysis daemon: warm-vs-cold latency,
//! cache behaviour, and byte-identity under concurrency.
//!
//! Usage: `fig_serve [--specs DIR] [--clients C] [--toggles T] [--gate]
//!                   [--min-factor F] [--json] [--ledger FILE]`
//!
//! The bench starts a real daemon on a Unix-domain socket and drives it
//! with the shipped wl-lsms pragma specs:
//!
//! 1. **batch** — the reference cost: one cold batch run over all specs,
//!    invoking the `commlint` + `commprove` CLI binaries (built next to
//!    this bench) exactly as a script would; if the binaries are absent
//!    the in-process library cost is used instead (a *lower* bound on
//!    the batch run, so the reported factors are conservative).
//! 2. **cold** — first daemon `analyze` + `prove` round-trip per spec;
//!    every artifact is built.
//! 3. **warm** — the identical requests again; the per-file response
//!    cache replays the rendered bytes.
//! 4. **fmt** — formatting-only touches of every spec; every structural
//!    hash survives, zero rebuilds, spans re-anchor.
//! 5. **edit** — the headline number: a one-region semantic edit of the
//!    two-region `spin_exchange` spec, toggled `--toggles` times (each
//!    toggle is a fresh edit — the superseded cohort is evicted), and
//!    only the edited file is re-requested, as an editor would. The
//!    acceptance factor is `batch / edit-per-toggle`.
//! 6. **concurrent** — `--clients` connections replay the full request
//!    set simultaneously; the single-flight store dedups the work.
//!
//! Timed windows cover only the framed exchange (analyze + prove
//! pipelined on one connection, as an editor that always wants report
//! and certificate would issue them); responses are parsed and
//! byte-compared against the batch
//! libraries' output *outside* the window, in every phase — an
//! incremental daemon that drifts from the batch CLIs fails the bench,
//! not just a gate. `--gate` requires the single-region-edit re-analysis
//! to beat the batch reference by `--min-factor` (default 5), exit 2
//! otherwise.
//!
//! Wall-clock latencies are printed for humans; the `--json` report and
//! the `--ledger` entry track only the deterministic cache counters
//! (builds and evictions per phase), so `commscope trend --check` gates
//! on cache effectiveness, which is machine-independent.

use std::io::{self, BufReader, BufWriter};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::{arg_str, arg_usize, emit_json_report, ledger, BenchReport, SeriesReport};
use commintd::proto::{read_frame, request_json, write_frame};
use commintd::server::serve_unix;
use commintd::Engine;
use commlint::json::render_json;
use commlint::{lint_source, LintOptions};
use commprove::jsonv::{self, JValue};
use commprove::prove_source;
use netsim::RankStats;
use pragma_front::SymbolTable;

/// The marker edited by the 1-region semantic edit (it sits in one
/// region of the two-region spin_exchange spec).
const EDIT_FROM: &str = "max_comm_iter(45)";
const EDIT_TO: &str = "max_comm_iter(44)";

/// Batch-truth documents for one exact source version.
struct Truth {
    lint: String,
    report: String,
    cert: String,
}

fn truth_for(file: &str, src: &str) -> Truth {
    let symbols = SymbolTable::new();
    let opts = LintOptions::default();
    let report = lint_source(src, &symbols, &opts).expect("spec lints");
    let prove = prove_source(file, src, &symbols, &opts).expect("spec proves");
    Truth {
        lint: render_json(&[(file.to_string(), report)]),
        report: render_json(&[(file.to_string(), prove.report.clone())]),
        cert: prove.certificate.to_json(),
    }
}

/// One spec with its precomputed batch truth.
struct Spec {
    file: String,
    src: String,
    truth: Truth,
}

fn load_specs(dir: &Path) -> io::Result<Vec<Spec>> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "comm"))
        .collect();
    paths.sort();
    let mut specs = Vec::new();
    for path in paths {
        let file = path.to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&path)?;
        specs.push(Spec {
            truth: truth_for(&file, &src),
            file,
            src,
        });
    }
    Ok(specs)
}

/// The cold-batch reference: what getting fresh reports and certificates
/// costs without the daemon. Prefers the real CLI binaries (process
/// spawn included — that is the actual alternative); falls back to the
/// in-process libraries. Best of three runs, to favour the reference.
fn batch_reference(specs: &[Spec]) -> (u64, &'static str) {
    let cli = std::env::current_exe().ok().and_then(|exe| {
        let dir = exe.parent()?.to_path_buf();
        let lint = dir.join("commlint");
        let prove = dir.join("commprove");
        (lint.exists() && prove.exists()).then_some((lint, prove))
    });
    let files: Vec<&str> = specs.iter().map(|s| s.file.as_str()).collect();
    let mut best = u64::MAX;
    for _ in 0..3 {
        let t0 = Instant::now();
        match &cli {
            Some((lint, prove)) => {
                for bin in [lint, prove] {
                    let out = Command::new(bin)
                        .arg("--format")
                        .arg("json")
                        .args(&files)
                        .output()
                        .expect("batch CLI runs");
                    // Gate-failing diagnostics exit nonzero; only a
                    // signal death invalidates the timing.
                    assert!(out.status.code().is_some(), "batch CLI killed");
                }
            }
            None => {
                for s in specs {
                    let _ = truth_for(&s.file, &s.src);
                }
            }
        }
        best = best.min(t0.elapsed().as_nanos() as u64);
    }
    (best.max(1), if cli.is_some() { "cli" } else { "library" })
}

/// A protocol client over one daemon connection.
struct Client {
    r: BufReader<UnixStream>,
    w: BufWriter<UnixStream>,
}

impl Client {
    fn connect(path: &Path) -> io::Result<Client> {
        // The server thread binds asynchronously; retry briefly.
        let mut last = None;
        for _ in 0..100 {
            match UnixStream::connect(path) {
                Ok(s) => {
                    return Ok(Client {
                        r: BufReader::new(s.try_clone()?),
                        w: BufWriter::new(s),
                    })
                }
                Err(e) => last = Some(e),
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        Err(last.unwrap_or_else(|| io::Error::other("connect failed")))
    }

    /// Pipeline both requests on the wire before reading either
    /// response: the protocol answers frames in order on a connection,
    /// so an editor (or this bench) that always wants report + cert
    /// pays one round-trip wait instead of two.
    fn exchange2(&mut self, req_a: &str, req_b: &str) -> io::Result<(String, String)> {
        write_frame(&mut self.w, req_a.as_bytes())?;
        write_frame(&mut self.w, req_b.as_bytes())?;
        Ok((self.read_text()?, self.read_text()?))
    }

    fn read_text(&mut self) -> io::Result<String> {
        let frame = read_frame(&mut self.r)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "daemon hung up"))?;
        String::from_utf8(frame)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response"))
    }
}

fn field<'a>(v: &'a JValue, name: &str) -> &'a str {
    v.get(name).and_then(|f| f.as_str()).unwrap_or("")
}

/// Run analyze + prove for one source version, pipelined on one
/// connection. Only the framed exchange is timed; responses are parsed
/// and byte-checked against the batch truth afterwards.
fn roundtrip(
    client: &mut Client,
    id: &mut i64,
    file: &str,
    src: &str,
    want: &Truth,
    mismatches: &mut Vec<String>,
) -> io::Result<Duration> {
    *id += 2;
    let a_req = request_json("analyze", *id - 1, file, src);
    let p_req = request_json("prove", *id, file, src);
    let t0 = Instant::now();
    let (a_text, p_text) = client.exchange2(&a_req, &p_req)?;
    let dt = t0.elapsed();
    let bad = |what: &str| format!("{file}: {what} differs from batch");
    let a = jsonv::parse(&a_text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))?;
    let p = jsonv::parse(&p_text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))?;
    if field(&a, "report") != want.lint {
        mismatches.push(bad("analyze report"));
    }
    if field(&p, "report") != want.report {
        mismatches.push(bad("prove report"));
    }
    if field(&p, "cert") != want.cert {
        mismatches.push(bad("certificate"));
    }
    Ok(dt)
}

fn main() {
    let cli: Vec<String> = std::env::args().skip(1).collect();
    let specs_dir = PathBuf::from(arg_str(&cli, "--specs").unwrap_or("crates/wl-lsms/pragmas"));
    let clients = arg_usize(&cli, "--clients").unwrap_or(4).max(1);
    // Each toggle repeats the identical steady-state measurement; the
    // reported edit time is the best observed, so more samples tighten
    // the estimate against scheduler noise (the batch side is likewise
    // a best-of-N of repeated spawns).
    let toggles = arg_usize(&cli, "--toggles").unwrap_or(25).max(1);
    let min_factor: f64 = arg_str(&cli, "--min-factor")
        .and_then(|s| s.parse().ok())
        .unwrap_or(5.0);
    let gate = cli.iter().any(|a| a == "--gate");
    let json = cli.iter().any(|a| a == "--json");

    let wall0 = Instant::now();
    let specs = match load_specs(&specs_dir) {
        Ok(s) if !s.is_empty() => s,
        Ok(_) => {
            eprintln!("fig_serve: no .comm specs under {}", specs_dir.display());
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("fig_serve: cannot load specs: {e}");
            std::process::exit(2);
        }
    };
    let (batch_ns, batch_mode) = batch_reference(&specs);

    let engine = Arc::new(Engine::new(
        SymbolTable::new(),
        LintOptions::default(),
        None,
    ));
    let socket = std::env::temp_dir().join(format!("fig_serve-{}.sock", std::process::id()));
    {
        let engine = Arc::clone(&engine);
        let socket = socket.clone();
        std::thread::spawn(move || {
            if let Err(e) = serve_unix(engine, &socket) {
                eprintln!("fig_serve: daemon died: {e}");
                std::process::exit(2);
            }
        });
    }
    let mut client = Client::connect(&socket).unwrap_or_else(|e| {
        eprintln!("fig_serve: cannot connect: {e}");
        std::process::exit(2);
    });

    let mut id = 0i64;
    let mut mismatches: Vec<String> = Vec::new();
    let die = |e: io::Error| -> ! {
        eprintln!("fig_serve: request failed: {e}");
        std::process::exit(2);
    };

    // A full corpus pass: analyze + prove of every spec (src chosen by
    // `variant`), returning per-spec times and build counts.
    let corpus_pass = |client: &mut Client,
                       id: &mut i64,
                       mismatches: &mut Vec<String>,
                       variant: &dyn Fn(&Spec) -> Option<String>|
     -> (Vec<Duration>, Vec<u64>) {
        let mut times = Vec::new();
        let mut builds = Vec::new();
        for spec in &specs {
            let edited = variant(spec);
            let src = edited.as_deref().unwrap_or(&spec.src);
            let truth = edited
                .as_ref()
                .map(|s| truth_for(&spec.file, s))
                .unwrap_or_else(|| Truth {
                    lint: spec.truth.lint.clone(),
                    report: spec.truth.report.clone(),
                    cert: spec.truth.cert.clone(),
                });
            let b0 = engine.stats().misses;
            let dt = roundtrip(client, id, &spec.file, src, &truth, mismatches)
                .unwrap_or_else(|e| die(e));
            times.push(dt);
            builds.push(engine.stats().misses - b0);
        }
        (times, builds)
    };

    let (cold_t, cold_b) = corpus_pass(&mut client, &mut id, &mut mismatches, &|_| None);
    let (warm_t, warm_b) = corpus_pass(&mut client, &mut id, &mut mismatches, &|_| None);
    let (fmt_t, fmt_b) = corpus_pass(&mut client, &mut id, &mut mismatches, &|s| {
        Some(format!("// touched\n{}", s.src))
    });

    // The 1-region edit: toggle the marker back and forth; each toggle
    // is a genuinely new region version (the superseded cohort is
    // evicted), and only the edited file is re-requested.
    let edited_spec = specs.iter().find(|s| s.src.contains(EDIT_FROM));
    if edited_spec.is_none() {
        eprintln!("fig_serve: note: no spec contains `{EDIT_FROM}`; editing the first spec's text");
    }
    let edited_spec = edited_spec.unwrap_or(&specs[0]);
    let variants = [
        edited_spec.src.replace(EDIT_FROM, EDIT_TO),
        edited_spec.src.clone(),
    ];
    let variant_truths = [
        truth_for(&edited_spec.file, &variants[0]),
        Truth {
            lint: edited_spec.truth.lint.clone(),
            report: edited_spec.truth.report.clone(),
            cert: edited_spec.truth.cert.clone(),
        },
    ];
    let mut edit_t = Vec::new();
    let mut edit_b = Vec::new();
    let ev0 = engine.stats().invalidations;
    for t in 0..toggles {
        let b0 = engine.stats().misses;
        let dt = roundtrip(
            &mut client,
            &mut id,
            &edited_spec.file,
            &variants[t % 2],
            &variant_truths[t % 2],
            &mut mismatches,
        )
        .unwrap_or_else(|e| die(e));
        edit_t.push(dt);
        edit_b.push(engine.stats().misses - b0);
    }
    let edit_ev = engine.stats().invalidations - ev0;

    // Concurrent replay of the unedited set: every client must see the
    // batch bytes. The toggles left one region's original cohort
    // evicted; the replay rebuilds it once, shared by single-flight.
    let concurrent_mismatches: usize = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let specs = &specs;
                let socket = &socket;
                s.spawn(move || {
                    let mut client = Client::connect(socket).expect("connect");
                    let mut id = 1_000_000 + (c as i64) * 10_000;
                    let mut bad = Vec::new();
                    for spec in specs.iter() {
                        roundtrip(
                            &mut client,
                            &mut id,
                            &spec.file,
                            &spec.src,
                            &spec.truth,
                            &mut bad,
                        )
                        .expect("concurrent request");
                    }
                    bad.len()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).sum()
    });

    let total = |ts: &[Duration]| ts.iter().map(|t| t.as_nanos() as u64).sum::<u64>().max(1);
    let (cold_ns, warm_ns, fmt_ns) = (total(&cold_t), total(&warm_t), total(&fmt_t));
    // Best observed toggle, mirroring the best-of-three batch reference:
    // min-vs-min keeps scheduler noise on this side of the ratio from
    // reading as a cache regression.
    let edit_ns = edit_t
        .iter()
        .map(|t| t.as_nanos() as u64)
        .min()
        .unwrap_or(1)
        .max(1);
    let edit_mean_ns = (total(&edit_t) / toggles as u64).max(1);
    let warm_factor = batch_ns as f64 / warm_ns as f64;
    let edit_factor = batch_ns as f64 / edit_ns as f64;
    let stats = engine.stats();

    eprintln!(
        "fig_serve: {} spec(s), {} client(s); cold batch reference ({batch_mode}): {:.2} ms",
        specs.len(),
        clients,
        batch_ns as f64 / 1e6,
    );
    eprintln!(
        "fig_serve: daemon cold {:.2} ms, warm {:.3} ms ({warm_factor:.1}x vs batch), \
         fmt touch {:.2} ms",
        cold_ns as f64 / 1e6,
        warm_ns as f64 / 1e6,
        fmt_ns as f64 / 1e6,
    );
    eprintln!(
        "fig_serve: 1-region edit re-analysis {:.3} ms (best of {toggles} toggle(s), \
         mean {:.3} ms) -> {edit_factor:.1}x vs cold batch",
        edit_ns as f64 / 1e6,
        edit_mean_ns as f64 / 1e6,
    );
    eprintln!(
        "fig_serve: store: {} entries, {} hits, {} misses, {} waits, {} invalidations \
         (hit rate {:.1}%)",
        stats.entries,
        stats.hits,
        stats.misses,
        stats.waits,
        stats.invalidations,
        100.0 * stats.hit_rate(),
    );

    for m in &mismatches {
        eprintln!("fig_serve: MISMATCH: {m}");
    }
    if concurrent_mismatches > 0 {
        eprintln!("fig_serve: MISMATCH: {concurrent_mismatches} concurrent response(s) differ");
    }
    if !mismatches.is_empty() || concurrent_mismatches > 0 {
        std::process::exit(1);
    }

    let zero = RankStats::default();
    let report = BenchReport {
        bench: "fig_serve".into(),
        args: vec![
            ("specs".into(), specs.len() as i64),
            ("clients".into(), clients as i64),
            ("toggles".into(), toggles as i64),
        ],
        ranks: (1..=specs.len()).collect(),
        // Deterministic cache counters only: wall latencies vary by
        // machine and must not enter the trend-gated ledger.
        series: vec![
            SeriesReport::new("cold builds", cold_b, &zero),
            SeriesReport::new("warm builds", warm_b, &zero),
            SeriesReport::new("fmt builds", fmt_b, &zero),
            SeriesReport::new("edit rebuilds", edit_b, &zero),
            SeriesReport::new("edit evictions", vec![edit_ev], &zero),
        ],
        wall_s: wall0.elapsed().as_secs_f64(),
    };

    let mut code = 0;
    if json {
        code = emit_json_report(&report, arg_str(&cli, "--baseline"));
    }
    ledger::maybe_record(&cli, &report, "daemon");

    if gate && edit_factor < min_factor {
        eprintln!(
            "fig_serve: GATE: 1-region edit speedup {edit_factor:.2}x below the \
             {min_factor:.2}x floor"
        );
        std::process::exit(2);
    }
    let _ = std::fs::remove_file(&socket);
    std::process::exit(code);
}
