//! Figure 3: experimental results for communication of single atom data
//! (potentials + electron densities).
//!
//! Usage: `fig3 [--stride K] [--jobs J] [--workers W] [--eager-threshold B]
//!              [--stats] [--json] [--baseline FILE] [--ledger FILE]
//!              [--trace-out FILE] [--profile FILE]`
//! (`--eager-threshold` overrides the cost model's eager/rendezvous
//! protocol switch, in bytes; `--ledger` appends the `--json` report to the
//! run-history ledger read by `commscope trend`).

use std::time::Instant;

use bench::{
    arg_str, arg_usize, default_jobs, emit_json_report, emit_observability, paper_ms, render_stats,
    sweep, BenchReport, SeriesReport, SeriesTable,
};
use netsim::{ExecPolicy, RankStats};
use wl_lsms::{
    fig3_single_atom_exec, fig3_single_atom_observed, AtomCommVariant, AtomSizes, Topology,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let stride = arg_usize(&args, "--stride").unwrap_or(1);
    let jobs = arg_usize(&args, "--jobs").unwrap_or_else(default_jobs);
    let stats = args.iter().any(|a| a == "--stats");
    let json = args.iter().any(|a| a == "--json");
    let baseline = arg_str(&args, "--baseline");
    let trace_out = arg_str(&args, "--trace-out");
    let profile = arg_str(&args, "--profile");
    let workers = arg_usize(&args, "--workers");
    let eager = arg_usize(&args, "--eager-threshold");
    let mut exec = match workers {
        Some(w) => ExecPolicy::bounded(w),
        None => ExecPolicy::threads(),
    };
    if let Some(b) = eager {
        exec = exec.with_eager_threshold(b);
    }

    let ms = paper_ms(stride);
    let xs: Vec<usize> = ms
        .iter()
        .map(|&m| Topology::paper(m).total_ranks())
        .collect();
    let mut table = SeriesTable::new(xs.clone());

    let variants = [
        AtomCommVariant::Original,
        AtomCommVariant::DirectiveMpi2,
        AtomCommVariant::DirectiveShmem,
    ];
    let points: Vec<(AtomCommVariant, usize)> = variants
        .iter()
        .flat_map(|&v| ms.iter().map(move |&m| (v, m)))
        .collect();
    let t0 = Instant::now();
    let results = sweep(&points, jobs, |&(variant, m)| {
        let topo = Topology::paper(m);
        let meas = fig3_single_atom_exec(&topo, variant, AtomSizes::default(), exec);
        assert!(meas.correct, "atom data validation failed for {variant:?}");
        meas
    });
    let wall_s = t0.elapsed().as_secs_f64();

    if trace_out.is_some() || profile.is_some() {
        // Observability re-run: directive-MPI at the largest sweep point.
        let m = *ms.last().expect("non-empty sweep");
        let obs = fig3_single_atom_observed(
            &Topology::paper(m),
            AtomCommVariant::DirectiveMpi2,
            AtomSizes::default(),
            exec,
        );
        emit_observability(
            "fig3",
            &[("m".into(), m as i64)],
            &obs,
            trace_out,
            profile,
            None,
        );
    }

    let mut stat_lines = Vec::new();
    let mut series = Vec::new();
    for (vi, variant) in variants.iter().enumerate() {
        let runs = &results[vi * ms.len()..(vi + 1) * ms.len()];
        table.push(variant.label(), runs.iter().map(|r| r.time).collect());
        let mut total = RankStats::default();
        for r in runs {
            total.merge(&r.stats);
        }
        series.push(SeriesReport::new(
            variant.label(),
            runs.iter().map(|r| r.time.as_nanos()).collect(),
            &total,
        ));
        if stats {
            stat_lines.push(render_stats(variant.label(), &total));
        }
        eprintln!("  [done] {}", variant.label());
    }

    if json {
        let report = BenchReport {
            bench: "fig3".into(),
            args: vec![
                ("stride".into(), stride as i64),
                ("workers".into(), workers.map_or(-1, |w| w as i64)),
                ("eager_threshold".into(), eager.map_or(-1, |b| b as i64)),
            ],
            ranks: xs,
            series,
            wall_s,
        };
        bench::ledger::maybe_record(&args, &report, &bench::ledger::engine_label(workers));
        std::process::exit(emit_json_report(&report, baseline));
    }

    println!(
        "{}",
        table.render("Fig. 3 — Single atom data communication (s; paper: all three comparable)")
    );
    println!(
        "# Ratios vs original (paper shows comparable performance, directives slightly ahead)"
    );
    println!(
        "original/directive-MPI   = {:5.2}x",
        table.avg_speedup(0, 1)
    );
    println!(
        "original/directive-SHMEM = {:5.2}x",
        table.avg_speedup(0, 2)
    );
    for line in stat_lines {
        println!("{line}");
    }
}
