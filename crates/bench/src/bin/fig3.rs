//! Figure 3: experimental results for communication of single atom data
//! (potentials + electron densities).
//!
//! Usage: `fig3 [--stride K]`.

use bench::{paper_ms, SeriesTable};
use wl_lsms::{fig3_single_atom, AtomCommVariant, AtomSizes, Topology};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let stride = args
        .iter()
        .position(|a| a == "--stride")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);

    let ms = paper_ms(stride);
    let xs: Vec<usize> = ms.iter().map(|&m| Topology::paper(m).total_ranks()).collect();
    let mut table = SeriesTable::new(xs);

    for variant in [
        AtomCommVariant::Original,
        AtomCommVariant::DirectiveMpi2,
        AtomCommVariant::DirectiveShmem,
    ] {
        let mut times = Vec::new();
        for &m in &ms {
            let topo = Topology::paper(m);
            let meas = fig3_single_atom(&topo, variant, AtomSizes::default());
            assert!(meas.correct, "atom data validation failed for {variant:?}");
            times.push(meas.time);
        }
        table.push(variant.label(), times);
        eprintln!("  [done] {}", variant.label());
    }

    println!(
        "{}",
        table.render("Fig. 3 — Single atom data communication (s; paper: all three comparable)")
    );
    println!("# Ratios vs original (paper shows comparable performance, directives slightly ahead)");
    println!("original/directive-MPI   = {:5.2}x", table.avg_speedup(0, 1));
    println!("original/directive-SHMEM = {:5.2}x", table.avg_speedup(0, 2));
}
