//! Figure 3: experimental results for communication of single atom data
//! (potentials + electron densities).
//!
//! Usage: `fig3 [--stride K] [--jobs J] [--stats]`.

use bench::{default_jobs, paper_ms, render_stats, sweep, SeriesTable};
use netsim::RankStats;
use wl_lsms::{fig3_single_atom, AtomCommVariant, AtomSizes, Topology};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let stride = arg(&args, "--stride").unwrap_or(1);
    let jobs = arg(&args, "--jobs").unwrap_or_else(default_jobs);
    let stats = args.iter().any(|a| a == "--stats");

    let ms = paper_ms(stride);
    let xs: Vec<usize> = ms
        .iter()
        .map(|&m| Topology::paper(m).total_ranks())
        .collect();
    let mut table = SeriesTable::new(xs);

    let variants = [
        AtomCommVariant::Original,
        AtomCommVariant::DirectiveMpi2,
        AtomCommVariant::DirectiveShmem,
    ];
    let points: Vec<(AtomCommVariant, usize)> = variants
        .iter()
        .flat_map(|&v| ms.iter().map(move |&m| (v, m)))
        .collect();
    let results = sweep(&points, jobs, |&(variant, m)| {
        let topo = Topology::paper(m);
        let meas = fig3_single_atom(&topo, variant, AtomSizes::default());
        assert!(meas.correct, "atom data validation failed for {variant:?}");
        meas
    });

    let mut stat_lines = Vec::new();
    for (vi, variant) in variants.iter().enumerate() {
        let runs = &results[vi * ms.len()..(vi + 1) * ms.len()];
        table.push(variant.label(), runs.iter().map(|r| r.time).collect());
        if stats {
            let mut total = RankStats::default();
            for r in runs {
                total.merge(&r.stats);
            }
            stat_lines.push(render_stats(variant.label(), &total));
        }
        eprintln!("  [done] {}", variant.label());
    }

    println!(
        "{}",
        table.render("Fig. 3 — Single atom data communication (s; paper: all three comparable)")
    );
    println!(
        "# Ratios vs original (paper shows comparable performance, directives slightly ahead)"
    );
    println!(
        "original/directive-MPI   = {:5.2}x",
        table.avg_speedup(0, 1)
    );
    println!(
        "original/directive-SHMEM = {:5.2}x",
        table.avg_speedup(0, 2)
    );
    for line in stat_lines {
        println!("{line}");
    }
}

fn arg(args: &[String], name: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
