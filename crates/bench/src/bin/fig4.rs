//! Figure 4: experimental results for communication of random spin
//! configurations (`setEvec`), plus the §IV-B speedup table.
//!
//! Usage: `fig4 [--stride K] [--steps N] [--jobs J] [--workers W] [--stats]
//!              [--json] [--baseline FILE] [--trace-out FILE] [--profile FILE]`
//! (stride thins the process sweep; jobs bounds the sweep worker pool;
//! `--workers` selects the bounded in-run engine, 0 = auto; stats appends
//! merged per-variant operation counters; `--json` emits the machine
//! -readable report instead of the table; `--baseline` gates virtual times
//! against a committed report; `--trace-out`/`--profile` re-run the largest
//! sweep point with the directive-MPI variant under full observability and
//! write a Chrome trace / commscope profile).

use std::time::Instant;

use bench::{
    arg_str, arg_usize, default_jobs, emit_json_report, emit_observability, paper_ms, render_stats,
    sweep, BenchReport, SeriesReport, SeriesTable,
};
use netsim::{ExecPolicy, RankStats};
use wl_lsms::{fig4_spin_exec, fig4_spin_observed, SpinVariant, Topology};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let stride = arg_usize(&args, "--stride").unwrap_or(1);
    let steps = arg_usize(&args, "--steps").unwrap_or(4);
    let jobs = arg_usize(&args, "--jobs").unwrap_or_else(default_jobs);
    let stats = args.iter().any(|a| a == "--stats");
    let json = args.iter().any(|a| a == "--json");
    let baseline = arg_str(&args, "--baseline");
    let trace_out = arg_str(&args, "--trace-out");
    let profile = arg_str(&args, "--profile");
    let workers = arg_usize(&args, "--workers");
    let exec = match workers {
        Some(w) => ExecPolicy::bounded(w),
        None => ExecPolicy::threads(),
    };

    let ms = paper_ms(stride);
    let xs: Vec<usize> = ms
        .iter()
        .map(|&m| Topology::paper(m).total_ranks())
        .collect();
    let mut table = SeriesTable::new(xs.clone());

    let variants = [
        SpinVariant::Original,
        SpinVariant::OriginalWaitall,
        SpinVariant::DirectiveMpi2,
        SpinVariant::DirectiveShmem,
    ];
    // One work item per (variant, m) point; the pool drains them in any
    // order but results come back in input order, so the table (and the
    // stdout golden) is identical to the sequential nested loop.
    let points: Vec<(SpinVariant, usize)> = variants
        .iter()
        .flat_map(|&v| ms.iter().map(move |&m| (v, m)))
        .collect();
    let t0 = Instant::now();
    let results = sweep(&points, jobs, |&(variant, m)| {
        let topo = Topology::paper(m);
        let meas = fig4_spin_exec(&topo, variant, steps, exec);
        assert!(meas.correct, "spin validation failed for {variant:?}");
        meas
    });
    let wall_s = t0.elapsed().as_secs_f64();

    if trace_out.is_some() || profile.is_some() {
        // Observability re-run: the directive-MPI variant at the largest
        // sweep point, traced and metered. Observation never perturbs the
        // virtual clocks, and the exports are byte-identical across engines.
        let m = *ms.last().expect("non-empty sweep");
        let obs = fig4_spin_observed(&Topology::paper(m), SpinVariant::DirectiveMpi2, steps, exec);
        emit_observability(
            "fig4",
            &[("m".into(), m as i64), ("steps".into(), steps as i64)],
            &obs,
            trace_out,
            profile,
        );
    }

    let mut stat_lines = Vec::new();
    let mut series = Vec::new();
    for (vi, variant) in variants.iter().enumerate() {
        let runs = &results[vi * ms.len()..(vi + 1) * ms.len()];
        table.push(variant.label(), runs.iter().map(|r| r.time).collect());
        let mut total = RankStats::default();
        for r in runs {
            total.merge(&r.stats);
        }
        series.push(SeriesReport::new(
            variant.label(),
            runs.iter().map(|r| r.time.as_nanos()).collect(),
            &total,
        ));
        if stats {
            stat_lines.push(render_stats(variant.label(), &total));
        }
        eprintln!("  [done] {}", variant.label());
    }

    if json {
        let report = BenchReport {
            bench: "fig4".into(),
            args: vec![
                ("stride".into(), stride as i64),
                ("steps".into(), steps as i64),
                ("workers".into(), workers.map_or(-1, |w| w as i64)),
            ],
            ranks: xs,
            series,
            wall_s,
        };
        std::process::exit(emit_json_report(&report, baseline));
    }

    println!(
        "{}",
        table.render("Fig. 4 — Random spin configuration communication (s per WL step)")
    );
    println!("# Speedups vs original (paper: Waitall-mod ~2.6x, MPI directive ~4x, SHMEM directive ~38x)");
    println!(
        "original/waitall-modified      = {:6.2}x",
        table.avg_speedup(0, 1)
    );
    println!(
        "original/directive-MPI-2sided  = {:6.2}x",
        table.avg_speedup(0, 2)
    );
    println!(
        "original/directive-SHMEM       = {:6.2}x",
        table.avg_speedup(0, 3)
    );
    println!(
        "waitall-mod/directive-MPI      = {:6.2}x  (paper ~1.4x)",
        table.avg_speedup(1, 2)
    );
    println!(
        "waitall-mod/directive-SHMEM    = {:6.2}x  (paper ~14.5x)",
        table.avg_speedup(1, 3)
    );
    for line in stat_lines {
        println!("{line}");
    }
}
