//! Figure 4: experimental results for communication of random spin
//! configurations (`setEvec`), plus the §IV-B speedup table.
//!
//! Usage: `fig4 [--stride K] [--steps N] [--jobs J] [--stats]`
//! (stride thins the process sweep; jobs bounds the worker pool; stats
//! appends merged per-variant operation counters).

use bench::{default_jobs, paper_ms, render_stats, sweep, SeriesTable};
use netsim::RankStats;
use wl_lsms::{fig4_spin, SpinVariant, Topology};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let stride = arg(&args, "--stride").unwrap_or(1);
    let steps = arg(&args, "--steps").unwrap_or(4);
    let jobs = arg(&args, "--jobs").unwrap_or_else(default_jobs);
    let stats = args.iter().any(|a| a == "--stats");

    let ms = paper_ms(stride);
    let xs: Vec<usize> = ms
        .iter()
        .map(|&m| Topology::paper(m).total_ranks())
        .collect();
    let mut table = SeriesTable::new(xs);

    let variants = [
        SpinVariant::Original,
        SpinVariant::OriginalWaitall,
        SpinVariant::DirectiveMpi2,
        SpinVariant::DirectiveShmem,
    ];
    // One work item per (variant, m) point; the pool drains them in any
    // order but results come back in input order, so the table (and the
    // stdout golden) is identical to the sequential nested loop.
    let points: Vec<(SpinVariant, usize)> = variants
        .iter()
        .flat_map(|&v| ms.iter().map(move |&m| (v, m)))
        .collect();
    let results = sweep(&points, jobs, |&(variant, m)| {
        let topo = Topology::paper(m);
        let meas = fig4_spin(&topo, variant, steps);
        assert!(meas.correct, "spin validation failed for {variant:?}");
        meas
    });

    let mut stat_lines = Vec::new();
    for (vi, variant) in variants.iter().enumerate() {
        let runs = &results[vi * ms.len()..(vi + 1) * ms.len()];
        table.push(variant.label(), runs.iter().map(|r| r.time).collect());
        if stats {
            let mut total = RankStats::default();
            for r in runs {
                total.merge(&r.stats);
            }
            stat_lines.push(render_stats(variant.label(), &total));
        }
        eprintln!("  [done] {}", variant.label());
    }

    println!(
        "{}",
        table.render("Fig. 4 — Random spin configuration communication (s per WL step)")
    );
    println!("# Speedups vs original (paper: Waitall-mod ~2.6x, MPI directive ~4x, SHMEM directive ~38x)");
    println!(
        "original/waitall-modified      = {:6.2}x",
        table.avg_speedup(0, 1)
    );
    println!(
        "original/directive-MPI-2sided  = {:6.2}x",
        table.avg_speedup(0, 2)
    );
    println!(
        "original/directive-SHMEM       = {:6.2}x",
        table.avg_speedup(0, 3)
    );
    println!(
        "waitall-mod/directive-MPI      = {:6.2}x  (paper ~1.4x)",
        table.avg_speedup(1, 2)
    );
    println!(
        "waitall-mod/directive-SHMEM    = {:6.2}x  (paper ~14.5x)",
        table.avg_speedup(1, 3)
    );
    for line in stat_lines {
        println!("{line}");
    }
}

fn arg(args: &[String], name: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
