//! Figure 4: experimental results for communication of random spin
//! configurations (`setEvec`), plus the §IV-B speedup table and the
//! profile-guided tuning loop (coalesced series + A/B gate).
//!
//! Usage: `fig4 [--stride K] [--steps N] [--jobs J] [--workers W]
//!              [--eager-threshold B] [--sanitize] [--overlay FILE] [--ab]
//!              [--min-factor F] [--stats] [--watch SECS] [--json]
//!              [--baseline FILE] [--ledger FILE] [--diff-out FILE]
//!              [--trace-out FILE] [--profile FILE]`
//! (stride thins the process sweep; jobs bounds the sweep worker pool;
//! `--workers` selects the bounded in-run engine, 0 = auto;
//! `--eager-threshold` overrides the cost model's eager/rendezvous protocol
//! switch, in bytes; `--sanitize` runs every point under the one-sided race
//! sanitizer, filling the `race_checks`/`conflicts_found` counters the JSON
//! report's baseline gate refuses to pass when non-zero;
//! stats appends merged per-variant operation counters;
//! `--json` emits the machine-readable report instead of the table;
//! `--baseline` gates virtual times against a committed report;
//! `--trace-out`/`--profile` re-run the largest sweep point with the
//! directive-MPI variant under full observability and write a Chrome trace
//! / commscope profile).
//!
//! The tuning loop: the coalesced series applies a commtune overlay to the
//! directive-MPI variant. `--overlay FILE` loads the overlay from a file
//! (exit 3 on a stale overlay schema, exit 2 on unreadable input) and also
//! records its provenance in `--profile` exports; without the flag the
//! binary self-tunes from a profile of the smallest sweep point. `--ab`
//! turns the run into an A/B gate: exit 2 if any tuned point is slower than
//! its untuned directive-MPI counterpart, or if the mean speedup of the
//! tuned series over "Original Communication" falls below `--min-factor`
//! (default 1.3). The gate also attaches a site-attributed explanation: it
//! profiles the untuned and tuned directive runs at the largest sweep
//! point, diffs them with commdiff, prints the per-site report to stderr,
//! and writes the diff JSON next to the overlay (`<overlay>.diff.json`, or
//! `--diff-out FILE`).
//!
//! `--watch SECS` runs the stall watchdog (stderr only; stdout and all
//! artifacts stay bit-identical). `--ledger FILE` appends the `--json`
//! report to the run-history ledger.

use std::time::Instant;

use bench::{
    arg_str, arg_usize, default_jobs, emit_json_report, emit_observability, paper_ms, render_stats,
    sweep, BenchReport, SeriesReport, SeriesTable,
};
use commtune::{overlay_from_json, overlay_provenance, tune, TuneOptions};
use netsim::{ExecPolicy, RankStats, WatchCfg};
use wl_lsms::{
    fig4_spin_exec, fig4_spin_observed, fig4_spin_tuned, fig4_spin_tuned_observed, SpinVariant,
    Topology,
};

/// Label of the profile-guided coalesced series.
const COALESCED_LABEL: &str = "MPI Target w/ Directive Communication (coalesced)";

fn arg_f64(args: &[String], name: &str) -> Option<f64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let stride = arg_usize(&args, "--stride").unwrap_or(1);
    let steps = arg_usize(&args, "--steps").unwrap_or(4);
    let jobs = arg_usize(&args, "--jobs").unwrap_or_else(default_jobs);
    let stats = args.iter().any(|a| a == "--stats");
    let json = args.iter().any(|a| a == "--json");
    let ab = args.iter().any(|a| a == "--ab");
    let baseline = arg_str(&args, "--baseline");
    let trace_out = arg_str(&args, "--trace-out");
    let profile = arg_str(&args, "--profile");
    let overlay_path = arg_str(&args, "--overlay");
    let min_factor = arg_f64(&args, "--min-factor").unwrap_or(1.3);
    let workers = arg_usize(&args, "--workers");
    let eager = arg_usize(&args, "--eager-threshold");
    let sanitize = args.iter().any(|a| a == "--sanitize");
    let mut exec = match workers {
        Some(w) => ExecPolicy::bounded(w),
        None => ExecPolicy::threads(),
    };
    if let Some(b) = eager {
        exec = exec.with_eager_threshold(b);
    }
    if sanitize {
        // Shadow-state race sanitizer: charges no virtual time, only fills
        // the race_checks / conflicts_found counters the report gates on.
        exec = exec.with_sanitize();
    }
    if let Some(secs) = arg_usize(&args, "--watch") {
        // Stall watchdog: progress/stall lines on stderr only; snapshots
        // read state and never touch virtual time, so stdout and every
        // artifact stay bit-identical.
        exec = exec.with_watch(WatchCfg::stall_secs(secs as u64));
    }

    let ms = paper_ms(stride);
    let xs: Vec<usize> = ms
        .iter()
        .map(|&m| Topology::paper(m).total_ranks())
        .collect();
    let mut table = SeriesTable::new(xs.clone());

    // Resolve the tuning overlay: from a file when given, otherwise
    // self-tuned from a profile of the smallest sweep point (the full
    // profile → commtune → apply loop inside one process).
    let overlay = match overlay_path {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("[overlay] cannot read {path}: {e}");
                    std::process::exit(2);
                }
            };
            let doc = match commscope::Json::parse(&text) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("[overlay] cannot parse {path}: {e}");
                    std::process::exit(2);
                }
            };
            match overlay_from_json(&doc) {
                Ok(ov) => ov,
                Err(e) => {
                    eprintln!("[overlay] rejected {path}: {e}");
                    std::process::exit(if e.contains("schema") { 3 } else { 2 });
                }
            }
        }
        None => {
            let m = ms[0];
            let obs =
                fig4_spin_observed(&Topology::paper(m), SpinVariant::DirectiveMpi2, steps, exec);
            let nranks = obs.final_times.len();
            let analysis = commscope::analyze(&obs.trace, nranks, &obs.final_times);
            let doc = commscope::profile_json(
                "fig4",
                &[("m".into(), m as i64), ("steps".into(), steps as i64)],
                &analysis,
                &obs.metrics,
            );
            let opts = TuneOptions {
                eager_threshold: eager,
                ..TuneOptions::default()
            };
            tune(&doc, &opts).expect("self-tune from fig4 profile")
        }
    };
    for d in &overlay.decisions {
        eprintln!("  [tune] site {}: {}", d.site, d.rationale);
    }

    let variants = [
        SpinVariant::Original,
        SpinVariant::OriginalWaitall,
        SpinVariant::DirectiveMpi2,
        SpinVariant::DirectiveShmem,
    ];
    // One work item per (variant, m) point; the pool drains them in any
    // order but results come back in input order, so the table (and the
    // stdout golden) is identical to the sequential nested loop.
    let points: Vec<(SpinVariant, usize)> = variants
        .iter()
        .flat_map(|&v| ms.iter().map(move |&m| (v, m)))
        .collect();
    let t0 = Instant::now();
    let results = sweep(&points, jobs, |&(variant, m)| {
        let topo = Topology::paper(m);
        let meas = fig4_spin_exec(&topo, variant, steps, exec);
        assert!(meas.correct, "spin validation failed for {variant:?}");
        meas
    });
    // The tuned series: the directive-MPI variant under the overlay.
    let tuned = sweep(&ms, jobs, |&m| {
        let topo = Topology::paper(m);
        let meas = fig4_spin_tuned(
            &topo,
            SpinVariant::DirectiveMpi2,
            steps,
            exec,
            Some(&overlay),
        );
        assert!(
            meas.correct,
            "spin validation failed for tuned run at m={m}"
        );
        meas
    });
    let wall_s = t0.elapsed().as_secs_f64();

    if trace_out.is_some() || profile.is_some() {
        // Observability re-run at the largest sweep point. With an explicit
        // overlay the tuned run is observed and the profile records the
        // overlay's provenance; otherwise this stays the plain directive-MPI
        // run (the profile a tuning pass would consume).
        let m = *ms.last().expect("non-empty sweep");
        let topo = Topology::paper(m);
        let fig_args = [
            ("m".to_string(), m as i64),
            ("steps".to_string(), steps as i64),
        ];
        if overlay_path.is_some() {
            let obs = fig4_spin_tuned_observed(
                &topo,
                SpinVariant::DirectiveMpi2,
                steps,
                exec,
                Some(&overlay),
            );
            let prov = overlay_provenance(&overlay);
            emit_observability("fig4", &fig_args, &obs, trace_out, profile, Some(&prov));
        } else {
            let obs = fig4_spin_observed(&topo, SpinVariant::DirectiveMpi2, steps, exec);
            emit_observability("fig4", &fig_args, &obs, trace_out, profile, None);
        }
    }

    let mut stat_lines = Vec::new();
    let mut series = Vec::new();
    for (vi, variant) in variants.iter().enumerate() {
        let runs = &results[vi * ms.len()..(vi + 1) * ms.len()];
        table.push(variant.label(), runs.iter().map(|r| r.time).collect());
        let mut total = RankStats::default();
        for r in runs {
            total.merge(&r.stats);
        }
        series.push(SeriesReport::new(
            variant.label(),
            runs.iter().map(|r| r.time.as_nanos()).collect(),
            &total,
        ));
        if stats {
            stat_lines.push(render_stats(variant.label(), &total));
        }
        eprintln!("  [done] {}", variant.label());
    }
    table.push(COALESCED_LABEL, tuned.iter().map(|r| r.time).collect());
    let mut tuned_total = RankStats::default();
    for r in &tuned {
        tuned_total.merge(&r.stats);
    }
    series.push(SeriesReport::new(
        COALESCED_LABEL,
        tuned.iter().map(|r| r.time.as_nanos()).collect(),
        &tuned_total,
    ));
    if stats {
        stat_lines.push(render_stats(COALESCED_LABEL, &tuned_total));
    }
    eprintln!("  [done] {COALESCED_LABEL}");

    // A/B gate: every tuned point must hold its own against the untuned
    // directive run (a tuning decision must never regress), and the tuned
    // series must beat "Original Communication" by at least `min_factor`.
    if ab {
        // Site-attributed explanation artifact: profile the untuned and
        // tuned directive runs at the largest sweep point and diff them, so
        // the gate's verdict comes with per-site blame deltas instead of a
        // bare factor. Written next to the overlay so rationale (overlay)
        // and measured outcome (diff) land in one place.
        let m = *ms.last().expect("non-empty sweep");
        let topo = Topology::paper(m);
        let fig_args = [
            ("m".to_string(), m as i64),
            ("steps".to_string(), steps as i64),
        ];
        let base_obs = fig4_spin_observed(&topo, SpinVariant::DirectiveMpi2, steps, exec);
        let base_analysis = commscope::analyze(
            &base_obs.trace,
            base_obs.final_times.len(),
            &base_obs.final_times,
        );
        let base_doc =
            commscope::profile_json("fig4", &fig_args, &base_analysis, &base_obs.metrics);
        let cand_obs = fig4_spin_tuned_observed(
            &topo,
            SpinVariant::DirectiveMpi2,
            steps,
            exec,
            Some(&overlay),
        );
        let cand_analysis = commscope::analyze(
            &cand_obs.trace,
            cand_obs.final_times.len(),
            &cand_obs.final_times,
        );
        let prov = overlay_provenance(&overlay);
        let cand_doc = commscope::profile_json_tuned(
            "fig4",
            &fig_args,
            &cand_analysis,
            &cand_obs.metrics,
            Some(&prov),
        );
        let diff = commscope::diff_profiles(&base_doc, &cand_doc).expect("diff own profiles");
        eprint!("{}", commscope::render_diff_text(&diff));
        let diff_path = arg_str(&args, "--diff-out")
            .map(String::from)
            .or_else(|| overlay_path.map(|p| format!("{p}.diff.json")));
        if let Some(path) = &diff_path {
            std::fs::write(path, diff.render()).expect("write A/B diff artifact");
            eprintln!("[ab] wrote site-attributed diff to {path}");
        }

        let dir_runs = &results[2 * ms.len()..3 * ms.len()];
        let orig_runs = &results[..ms.len()];
        let mut failed = false;
        for (i, (t, b)) in tuned.iter().zip(dir_runs).enumerate() {
            if t.time > b.time {
                eprintln!(
                    "[ab] REGRESSION at {} ranks: tuned {} ns > untuned {} ns",
                    xs[i],
                    t.time.as_nanos(),
                    b.time.as_nanos()
                );
                failed = true;
            }
        }
        let mut factor = 0.0;
        for (t, o) in tuned.iter().zip(orig_runs) {
            factor += o.time.as_nanos() as f64 / t.time.as_nanos() as f64;
        }
        factor /= ms.len() as f64;
        if factor < min_factor {
            eprintln!(
                "[ab] FAILED: mean speedup over Original Communication is {factor:.3}x, \
                 below the {min_factor:.3}x gate"
            );
            failed = true;
        } else {
            eprintln!("[ab] ok: tuned series beats Original Communication by {factor:.3}x (gate {min_factor:.3}x)");
        }
        if failed {
            std::process::exit(2);
        }
    }

    if json {
        let report = BenchReport {
            bench: "fig4".into(),
            args: vec![
                ("stride".into(), stride as i64),
                ("steps".into(), steps as i64),
                ("workers".into(), workers.map_or(-1, |w| w as i64)),
                ("eager_threshold".into(), eager.map_or(-1, |b| b as i64)),
            ],
            ranks: xs,
            series,
            wall_s,
        };
        bench::ledger::maybe_record(&args, &report, &bench::ledger::engine_label(workers));
        std::process::exit(emit_json_report(&report, baseline));
    }

    println!(
        "{}",
        table.render("Fig. 4 — Random spin configuration communication (s per WL step)")
    );
    println!("# Speedups vs original (paper: Waitall-mod ~2.6x, MPI directive ~4x, SHMEM directive ~38x)");
    println!(
        "original/waitall-modified      = {:6.2}x",
        table.avg_speedup(0, 1)
    );
    println!(
        "original/directive-MPI-2sided  = {:6.2}x",
        table.avg_speedup(0, 2)
    );
    println!(
        "original/directive-SHMEM       = {:6.2}x",
        table.avg_speedup(0, 3)
    );
    println!(
        "waitall-mod/directive-MPI      = {:6.2}x  (paper ~1.4x)",
        table.avg_speedup(1, 2)
    );
    println!(
        "waitall-mod/directive-SHMEM    = {:6.2}x  (paper ~14.5x)",
        table.avg_speedup(1, 3)
    );
    println!(
        "original/directive-MPI-coalesced = {:6.2}x  (profile-guided overlay)",
        table.avg_speedup(0, 4)
    );
    for line in stat_lines {
        println!("{line}");
    }
}
