//! Figure 4: experimental results for communication of random spin
//! configurations (`setEvec`), plus the §IV-B speedup table.
//!
//! Usage: `fig4 [--stride K] [--steps N]` (stride thins the process sweep).

use bench::{paper_ms, SeriesTable};
use wl_lsms::{fig4_spin, SpinVariant, Topology};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let stride = arg(&args, "--stride").unwrap_or(1);
    let steps = arg(&args, "--steps").unwrap_or(4);

    let ms = paper_ms(stride);
    let xs: Vec<usize> = ms.iter().map(|&m| Topology::paper(m).total_ranks()).collect();
    let mut table = SeriesTable::new(xs);

    let variants = [
        SpinVariant::Original,
        SpinVariant::OriginalWaitall,
        SpinVariant::DirectiveMpi2,
        SpinVariant::DirectiveShmem,
    ];
    for variant in variants {
        let mut times = Vec::new();
        for &m in &ms {
            let topo = Topology::paper(m);
            let meas = fig4_spin(&topo, variant, steps);
            assert!(meas.correct, "spin validation failed for {variant:?}");
            times.push(meas.time);
        }
        table.push(variant.label(), times);
        eprintln!("  [done] {}", variant.label());
    }

    println!(
        "{}",
        table.render("Fig. 4 — Random spin configuration communication (s per WL step)")
    );
    println!("# Speedups vs original (paper: Waitall-mod ~2.6x, MPI directive ~4x, SHMEM directive ~38x)");
    println!(
        "original/waitall-modified      = {:6.2}x",
        table.avg_speedup(0, 1)
    );
    println!(
        "original/directive-MPI-2sided  = {:6.2}x",
        table.avg_speedup(0, 2)
    );
    println!(
        "original/directive-SHMEM       = {:6.2}x",
        table.avg_speedup(0, 3)
    );
    println!(
        "waitall-mod/directive-MPI      = {:6.2}x  (paper ~1.4x)",
        table.avg_speedup(1, 2)
    );
    println!(
        "waitall-mod/directive-SHMEM    = {:6.2}x  (paper ~14.5x)",
        table.avg_speedup(1, 3)
    );
}

fn arg(args: &[String], name: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
