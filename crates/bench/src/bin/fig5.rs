//! Figure 5: execution time for directive communication/computation
//! overlap — spin communication plus the first `calculateCoreStates` slice,
//! under the paper's projected 10x GPU speedup of the computation.
//!
//! Usage: `fig5 [--stride K] [--steps N]`.

use bench::{paper_ms, SeriesTable};
use wl_lsms::{fig5_overlap, AtomSizes, CoreStateParams, Topology};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let stride = arg(&args, "--stride").unwrap_or(1);
    let steps = arg(&args, "--steps").unwrap_or(3);

    let ms = paper_ms(stride);
    let xs: Vec<usize> = ms.iter().map(|&m| Topology::paper(m).total_ranks()).collect();
    let mut table = SeriesTable::new(xs);

    // The paper's projection: core-state computation accelerated 10x.
    let cparams = CoreStateParams::default().gpu();
    let sizes = AtomSizes::default();

    for directive in [false, true] {
        let label = if directive {
            "Directive Communication w/ Overlapped Computation"
        } else {
            "Original Communication + Optimized Computation"
        };
        let mut times = Vec::new();
        for &m in &ms {
            let topo = Topology::paper(m);
            let meas = fig5_overlap(&topo, directive, cparams, sizes, steps);
            times.push(meas.time);
        }
        table.push(label, times);
        eprintln!("  [done] {label}");
    }

    println!(
        "{}",
        table.render(
            "Fig. 5 — Spin comm + core-state computation per step (s), 10x GPU projection"
        )
    );
    println!("# The overlap hides communication behind computation (bounded by compute).");
    println!("original/overlap speedup = {:5.2}x", table.avg_speedup(0, 1));
}

fn arg(args: &[String], name: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
