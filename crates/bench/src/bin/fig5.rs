//! Figure 5: execution time for directive communication/computation
//! overlap — spin communication plus the first `calculateCoreStates` slice,
//! under the paper's projected 10x GPU speedup of the computation.
//!
//! Usage: `fig5 [--stride K] [--steps N] [--jobs J] [--stats]`.

use bench::{default_jobs, paper_ms, render_stats, sweep, SeriesTable};
use netsim::RankStats;
use wl_lsms::{fig5_overlap, AtomSizes, CoreStateParams, Topology};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let stride = arg(&args, "--stride").unwrap_or(1);
    let steps = arg(&args, "--steps").unwrap_or(3);
    let jobs = arg(&args, "--jobs").unwrap_or_else(default_jobs);
    let stats = args.iter().any(|a| a == "--stats");

    let ms = paper_ms(stride);
    let xs: Vec<usize> = ms
        .iter()
        .map(|&m| Topology::paper(m).total_ranks())
        .collect();
    let mut table = SeriesTable::new(xs);

    // The paper's projection: core-state computation accelerated 10x.
    let cparams = CoreStateParams::default().gpu();
    let sizes = AtomSizes::default();

    let modes = [false, true];
    let points: Vec<(bool, usize)> = modes
        .iter()
        .flat_map(|&d| ms.iter().map(move |&m| (d, m)))
        .collect();
    let results = sweep(&points, jobs, |&(directive, m)| {
        let topo = Topology::paper(m);
        fig5_overlap(&topo, directive, cparams, sizes, steps)
    });

    let mut stat_lines = Vec::new();
    for (di, &directive) in modes.iter().enumerate() {
        let label = if directive {
            "Directive Communication w/ Overlapped Computation"
        } else {
            "Original Communication + Optimized Computation"
        };
        let runs = &results[di * ms.len()..(di + 1) * ms.len()];
        table.push(label, runs.iter().map(|r| r.time).collect());
        if stats {
            let mut total = RankStats::default();
            for r in runs {
                total.merge(&r.stats);
            }
            stat_lines.push(render_stats(label, &total));
        }
        eprintln!("  [done] {label}");
    }

    println!(
        "{}",
        table
            .render("Fig. 5 — Spin comm + core-state computation per step (s), 10x GPU projection")
    );
    println!("# The overlap hides communication behind computation (bounded by compute).");
    println!(
        "original/overlap speedup = {:5.2}x",
        table.avg_speedup(0, 1)
    );
    for line in stat_lines {
        println!("{line}");
    }
}

fn arg(args: &[String], name: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
