//! Figure 5: execution time for directive communication/computation
//! overlap — spin communication plus the first `calculateCoreStates` slice,
//! under the paper's projected 10x GPU speedup of the computation.
//!
//! Usage: `fig5 [--stride K] [--steps N] [--jobs J] [--workers W]
//!              [--eager-threshold B] [--stats] [--json] [--baseline FILE]
//!              [--ledger FILE] [--trace-out FILE] [--profile FILE]`
//! (`--eager-threshold` overrides the cost model's eager/rendezvous
//! protocol switch, in bytes; `--ledger` appends the `--json` report to the
//! run-history ledger read by `commscope trend`).

use std::time::Instant;

use bench::{
    arg_str, arg_usize, default_jobs, emit_json_report, emit_observability, paper_ms, render_stats,
    sweep, BenchReport, SeriesReport, SeriesTable,
};
use netsim::{ExecPolicy, RankStats};
use wl_lsms::{fig5_overlap_exec, fig5_overlap_observed, AtomSizes, CoreStateParams, Topology};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let stride = arg_usize(&args, "--stride").unwrap_or(1);
    let steps = arg_usize(&args, "--steps").unwrap_or(3);
    let jobs = arg_usize(&args, "--jobs").unwrap_or_else(default_jobs);
    let stats = args.iter().any(|a| a == "--stats");
    let json = args.iter().any(|a| a == "--json");
    let baseline = arg_str(&args, "--baseline");
    let trace_out = arg_str(&args, "--trace-out");
    let profile = arg_str(&args, "--profile");
    let workers = arg_usize(&args, "--workers");
    let eager = arg_usize(&args, "--eager-threshold");
    let mut exec = match workers {
        Some(w) => ExecPolicy::bounded(w),
        None => ExecPolicy::threads(),
    };
    if let Some(b) = eager {
        exec = exec.with_eager_threshold(b);
    }

    let ms = paper_ms(stride);
    let xs: Vec<usize> = ms
        .iter()
        .map(|&m| Topology::paper(m).total_ranks())
        .collect();
    let mut table = SeriesTable::new(xs.clone());

    // The paper's projection: core-state computation accelerated 10x.
    let cparams = CoreStateParams::default().gpu();
    let sizes = AtomSizes::default();

    let modes = [false, true];
    let points: Vec<(bool, usize)> = modes
        .iter()
        .flat_map(|&d| ms.iter().map(move |&m| (d, m)))
        .collect();
    let t0 = Instant::now();
    let results = sweep(&points, jobs, |&(directive, m)| {
        let topo = Topology::paper(m);
        fig5_overlap_exec(&topo, directive, cparams, sizes, steps, exec)
    });
    let wall_s = t0.elapsed().as_secs_f64();

    if trace_out.is_some() || profile.is_some() {
        // Observability re-run: the overlapped directive path at the
        // largest sweep point.
        let m = *ms.last().expect("non-empty sweep");
        let obs = fig5_overlap_observed(&Topology::paper(m), true, cparams, sizes, steps, exec);
        emit_observability(
            "fig5",
            &[("m".into(), m as i64), ("steps".into(), steps as i64)],
            &obs,
            trace_out,
            profile,
            None,
        );
    }

    let mut stat_lines = Vec::new();
    let mut series = Vec::new();
    for (di, &directive) in modes.iter().enumerate() {
        let label = if directive {
            "Directive Communication w/ Overlapped Computation"
        } else {
            "Original Communication + Optimized Computation"
        };
        let runs = &results[di * ms.len()..(di + 1) * ms.len()];
        table.push(label, runs.iter().map(|r| r.time).collect());
        let mut total = RankStats::default();
        for r in runs {
            total.merge(&r.stats);
        }
        series.push(SeriesReport::new(
            label,
            runs.iter().map(|r| r.time.as_nanos()).collect(),
            &total,
        ));
        if stats {
            stat_lines.push(render_stats(label, &total));
        }
        eprintln!("  [done] {label}");
    }

    if json {
        let report = BenchReport {
            bench: "fig5".into(),
            args: vec![
                ("stride".into(), stride as i64),
                ("steps".into(), steps as i64),
                ("workers".into(), workers.map_or(-1, |w| w as i64)),
                ("eager_threshold".into(), eager.map_or(-1, |b| b as i64)),
            ],
            ranks: xs,
            series,
            wall_s,
        };
        bench::ledger::maybe_record(&args, &report, &bench::ledger::engine_label(workers));
        std::process::exit(emit_json_report(&report, baseline));
    }

    println!(
        "{}",
        table
            .render("Fig. 5 — Spin comm + core-state computation per step (s), 10x GPU projection")
    );
    println!("# The overlap hides communication behind computation (bounded by compute).");
    println!(
        "original/overlap speedup = {:5.2}x",
        table.avg_speedup(0, 1)
    );
    for line in stat_lines {
        println!("{line}");
    }
}
