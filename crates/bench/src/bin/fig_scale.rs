//! Scale-out sweep past the paper's 337-process ceiling: the fig-4 spin
//! workload at 512/1024/2048/4096 ranks under the bounded virtual-time
//! engine (thread-per-rank optional for comparison).
//!
//! The paper's sweep tops out at M=21 LSMS instances (337 ranks); this
//! binary extends the same workload shape to thousands of ranks, where
//! making every rank OS-runnable at once stops being a reasonable way to
//! drive a simulation. Virtual times stay exact at any scale — only wall
//! time depends on the engine.
//!
//! Usage: `fig_scale [--ranks 512,1024,2048,4096] [--steps N] [--workers W]
//!                   [--threads] [--stack-kib K] [--sanitize] [--stats]
//!                   [--watch SECS] [--json] [--baseline FILE]
//!                   [--ledger FILE]`
//! `--workers` selects the bounded engine slot count (0 = auto, default);
//! `--threads` forces thread-per-rank. `--sanitize` runs under the
//! one-sided race sanitizer (fills `race_checks`/`conflicts_found` in the
//! report; the baseline gate refuses non-zero conflicts). `--watch` runs
//! the stall watchdog: progress lines on stderr every second, and any rank
//! whose LVT has not advanced in SECS wall-seconds is flagged — stdout and
//! every deterministic artifact stay bit-identical. `--ledger` appends the
//! `--json` report to the run-history ledger (`commscope trend` reads it).
//! Points run sequentially — at these rank counts a single simulation
//! saturates the host.

use std::time::Instant;

use bench::{arg_str, arg_usize, emit_json_report, render_stats, BenchReport, SeriesReport};
use netsim::{ExecPolicy, RankStats, WatchCfg};
use wl_lsms::{fig4_spin_exec, SpinVariant, Topology};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let steps = arg_usize(&args, "--steps").unwrap_or(2);
    let stats = args.iter().any(|a| a == "--stats");
    let json = args.iter().any(|a| a == "--json");
    let threads = args.iter().any(|a| a == "--threads");
    let baseline = arg_str(&args, "--baseline");
    let workers = arg_usize(&args, "--workers").unwrap_or(0);
    let stack_kib = arg_usize(&args, "--stack-kib").unwrap_or(256);
    let targets: Vec<usize> = arg_str(&args, "--ranks")
        .map(|s| {
            s.split(',')
                .map(|v| v.trim().parse().expect("bad --ranks entry"))
                .collect()
        })
        .unwrap_or_else(|| vec![512, 1024, 2048, 4096]);

    let mut exec = if threads {
        ExecPolicy::threads()
    } else {
        ExecPolicy::bounded(workers)
    }
    .with_stack_size(stack_kib << 10);
    if args.iter().any(|a| a == "--sanitize") {
        exec = exec.with_sanitize();
    }
    if let Some(secs) = arg_usize(&args, "--watch") {
        exec = exec.with_watch(WatchCfg::stall_secs(secs as u64));
    }

    // Map each target to the nearest paper-shaped topology (16 ranks per
    // LSMS instance + 1 Wang-Landau master).
    let ms: Vec<usize> = targets.iter().map(|&r| (r / 16).max(2)).collect();
    let xs: Vec<usize> = ms
        .iter()
        .map(|&m| Topology::paper(m).total_ranks())
        .collect();

    // Two scale-relevant communication shapes: consolidated two-sided
    // (waitall) and one-sided signalled puts.
    let variants = [SpinVariant::OriginalWaitall, SpinVariant::DirectiveShmem];

    let t0 = Instant::now();
    let mut per_variant: Vec<Vec<(u64, f64)>> = Vec::new(); // (time_ns, wall_s)
    let mut totals: Vec<RankStats> = Vec::new();
    for &variant in &variants {
        let mut col = Vec::new();
        let mut total = RankStats::default();
        for &m in &ms {
            let topo = Topology::paper(m);
            let p0 = Instant::now();
            let meas = fig4_spin_exec(&topo, variant, steps, exec);
            let wall = p0.elapsed().as_secs_f64();
            assert!(meas.correct, "spin validation failed for {variant:?}");
            total.merge(&meas.stats);
            eprintln!(
                "  [done] {} n={} ({wall:.2}s wall)",
                variant.label(),
                topo.total_ranks()
            );
            col.push((meas.time.as_nanos(), wall));
        }
        per_variant.push(col);
        totals.push(total);
    }
    let wall_s = t0.elapsed().as_secs_f64();

    if json {
        let report = BenchReport {
            bench: "fig_scale".into(),
            args: vec![
                ("steps".into(), steps as i64),
                ("workers".into(), if threads { -1 } else { workers as i64 }),
                ("stack_kib".into(), stack_kib as i64),
            ],
            ranks: xs,
            series: variants
                .iter()
                .zip(&per_variant)
                .zip(&totals)
                .map(|((v, col), total)| {
                    SeriesReport::new(v.label(), col.iter().map(|&(t, _)| t).collect(), total)
                })
                .collect(),
            wall_s,
        };
        let engine = bench::ledger::engine_label(if threads { None } else { Some(workers) });
        bench::ledger::maybe_record(&args, &report, &engine);
        std::process::exit(emit_json_report(&report, baseline));
    }

    println!("# Scale-out — fig4 spin workload beyond the paper's 337 processes");
    println!(
        "# engine={} stack={stack_kib}KiB steps={steps} (virtual s per WL step; wall s per point)",
        if threads {
            "thread-per-rank".into()
        } else {
            format!("bounded(workers={workers})")
        }
    );
    print!("{:>10}", "procs");
    for v in &variants {
        print!("  {:>42}  {:>8}", v.label(), "wall_s");
    }
    println!();
    for (i, &x) in xs.iter().enumerate() {
        print!("{x:>10}");
        for col in &per_variant {
            let (t, w) = col[i];
            print!("  {:>42.9}  {w:>8.2}", netsim::Time(t).as_secs_f64());
        }
        println!();
    }
    if stats {
        for (v, total) in variants.iter().zip(&totals) {
            println!("{}", render_stats(v.label(), total));
        }
    }
}
