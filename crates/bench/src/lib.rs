//! Shared helpers for the figure-regeneration binaries and benches.

use netsim::Time;

/// Render one figure series as an aligned table.
pub struct SeriesTable {
    /// x-axis values (number of processes).
    pub xs: Vec<usize>,
    /// (label, per-x virtual times) series.
    pub series: Vec<(String, Vec<Time>)>,
}

impl SeriesTable {
    /// New empty table over an x-axis.
    pub fn new(xs: Vec<usize>) -> Self {
        SeriesTable {
            xs,
            series: Vec::new(),
        }
    }

    /// Append a series (must match the x-axis length).
    pub fn push(&mut self, label: impl Into<String>, times: Vec<Time>) {
        assert_eq!(times.len(), self.xs.len(), "series length mismatch");
        self.series.push((label.into(), times));
    }

    /// Render with times in seconds, paper-style.
    pub fn render(&self, title: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {title}\n"));
        out.push_str(&format!("{:>10}", "procs"));
        for (label, _) in &self.series {
            out.push_str(&format!("  {label:>42}"));
        }
        out.push('\n');
        for (i, &x) in self.xs.iter().enumerate() {
            out.push_str(&format!("{x:>10}"));
            for (_, times) in &self.series {
                out.push_str(&format!("  {:>42.9}", times[i].as_secs_f64()));
            }
            out.push('\n');
        }
        out
    }

    /// Average speedup of series `base` over series `other` across x.
    pub fn avg_speedup(&self, base: usize, other: usize) -> f64 {
        let b = &self.series[base].1;
        let o = &self.series[other].1;
        let mut acc = 0.0;
        for i in 0..self.xs.len() {
            acc += b[i].as_nanos() as f64 / o[i].as_nanos() as f64;
        }
        acc / self.xs.len() as f64
    }
}

/// The paper's process-count sweep (1 + 16·M, M = 2..=21), optionally
/// thinned for quick runs.
pub fn paper_ms(stride: usize) -> Vec<usize> {
    (2..=21).step_by(stride.max(1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_and_speedups() {
        let mut t = SeriesTable::new(vec![33, 49]);
        t.push("a", vec![Time::from_micros(100), Time::from_micros(200)]);
        t.push("b", vec![Time::from_micros(25), Time::from_micros(50)]);
        let text = t.render("demo");
        assert!(text.contains("procs"));
        assert!(text.contains("33"));
        assert!((t.avg_speedup(0, 1) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_thinning() {
        assert_eq!(paper_ms(1).len(), 20);
        let thin = paper_ms(5);
        assert_eq!(thin, vec![2, 7, 12, 17]);
    }
}
