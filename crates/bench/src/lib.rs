//! Shared helpers for the figure-regeneration binaries and benches.

pub mod json;
pub mod ledger;

pub use json::{compare_with_baseline, BaselineDiff, BenchReport, Json, SeriesReport};

use netsim::{RankStats, Time};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Parse `--name N` style integer flags.
pub fn arg_usize(args: &[String], name: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// Parse `--name VALUE` style string flags.
pub fn arg_str<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Print a report as JSON on stdout and, when a baseline path is given,
/// gate against it: exact mismatches (virtual times, counters, axes) return
/// exit code 3, wall-time regressions only warn on stderr. Returns the
/// process exit code.
pub fn emit_json_report(report: &BenchReport, baseline_path: Option<&str>) -> i32 {
    println!("{}", report.to_json().render());
    let Some(path) = baseline_path else { return 0 };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("[baseline] cannot read {path}: {e}");
            return 3;
        }
    };
    let diff = compare_with_baseline(report, &text);
    for w in &diff.warnings {
        eprintln!("[baseline] warning: {w}");
    }
    for e in &diff.errors {
        eprintln!("[baseline] MISMATCH: {e}");
    }
    if diff.errors.is_empty() {
        eprintln!("[baseline] ok: matches {path}");
        0
    } else {
        3
    }
}

/// Write observability exports for one observed run: a Perfetto-loadable
/// Chrome trace (`--trace-out`) and/or a stable profile JSON (`--profile`).
/// Shared by the figure binaries; both outputs are pure functions of
/// virtual time and byte-identical across engines and `--jobs` widths.
/// `tuning` is the overlay provenance document when the observed run was
/// executed under a tuning overlay (recorded in the profile), `None` for
/// untuned runs.
pub fn emit_observability(
    workload: &str,
    args: &[(String, i64)],
    obs: &wl_lsms::Observed,
    trace_out: Option<&str>,
    profile: Option<&str>,
    tuning: Option<&commscope::Json>,
) {
    if trace_out.is_none() && profile.is_none() {
        return;
    }
    let nranks = obs.final_times.len();
    if let Some(path) = trace_out {
        let text = commscope::chrome_trace(&obs.trace, nranks);
        std::fs::write(path, &text).expect("write --trace-out file");
        eprintln!("  [trace] wrote {path} ({} bytes)", text.len());
    }
    if let Some(path) = profile {
        let analysis = commscope::analyze(&obs.trace, nranks, &obs.final_times);
        let doc = commscope::profile_json_tuned(workload, args, &analysis, &obs.metrics, tuning);
        let text = doc.render();
        std::fs::write(path, &text).expect("write --profile file");
        eprintln!("  [profile] wrote {path} ({} bytes)", text.len());
    }
}

/// Run `f` over every item on a bounded worker pool and return the results
/// in input order.
///
/// Each figure point is an independent virtual-time simulation whose result
/// depends only on virtual quantities, so fanning points out across OS
/// threads changes wall-clock time but never the measured times: the output
/// is bit-identical to the sequential loop. Workers claim indices from a
/// shared counter (no per-worker stripes, so a slow point does not stall
/// the pool) and write into a per-index slot, which keeps collection
/// deterministic regardless of completion order.
pub fn sweep<I, T, F>(items: &[I], jobs: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs == 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let out = f(&items[i]);
                *slots[i].lock().unwrap() = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("sweep worker panicked"))
        .collect()
}

/// Worker-pool width for the figure binaries: the host's available
/// parallelism unless overridden by `--jobs`.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Render merged [`RankStats`] (including the mailbox hot-path counters)
/// as `# `-prefixed comment lines for the figure binaries' `--stats` flag.
pub fn render_stats(label: &str, stats: &RankStats) -> String {
    format!(
        "# stats[{label}] sends={} recvs={} bytes_sent={} waits={} waitalls={} \
         puts={} bytes_put={} gets={} barriers={} quiets={} packed_bytes={} \
         datatype_commits={} dtype_cache_hits={} race_checks={} conflicts_found={} \
         uq_high_water={} match_scan_steps={} mailbox_locks={}",
        stats.sends,
        stats.recvs,
        stats.bytes_sent,
        stats.waits,
        stats.waitalls,
        stats.puts,
        stats.bytes_put,
        stats.gets,
        stats.barriers,
        stats.quiets,
        stats.packed_bytes,
        stats.datatype_commits,
        stats.dtype_cache_hits,
        stats.race_checks,
        stats.conflicts_found,
        stats.uq_high_water,
        stats.match_scan_steps,
        stats.mailbox_locks,
    )
}

/// Render one figure series as an aligned table.
pub struct SeriesTable {
    /// x-axis values (number of processes).
    pub xs: Vec<usize>,
    /// (label, per-x virtual times) series.
    pub series: Vec<(String, Vec<Time>)>,
}

impl SeriesTable {
    /// New empty table over an x-axis.
    pub fn new(xs: Vec<usize>) -> Self {
        SeriesTable {
            xs,
            series: Vec::new(),
        }
    }

    /// Append a series (must match the x-axis length).
    pub fn push(&mut self, label: impl Into<String>, times: Vec<Time>) {
        assert_eq!(times.len(), self.xs.len(), "series length mismatch");
        self.series.push((label.into(), times));
    }

    /// Render with times in seconds, paper-style.
    pub fn render(&self, title: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {title}\n"));
        out.push_str(&format!("{:>10}", "procs"));
        for (label, _) in &self.series {
            out.push_str(&format!("  {label:>42}"));
        }
        out.push('\n');
        for (i, &x) in self.xs.iter().enumerate() {
            out.push_str(&format!("{x:>10}"));
            for (_, times) in &self.series {
                out.push_str(&format!("  {:>42.9}", times[i].as_secs_f64()));
            }
            out.push('\n');
        }
        out
    }

    /// Average speedup of series `base` over series `other` across x.
    pub fn avg_speedup(&self, base: usize, other: usize) -> f64 {
        let b = &self.series[base].1;
        let o = &self.series[other].1;
        let mut acc = 0.0;
        for i in 0..self.xs.len() {
            acc += b[i].as_nanos() as f64 / o[i].as_nanos() as f64;
        }
        acc / self.xs.len() as f64
    }
}

/// The paper's process-count sweep (1 + 16·M, M = 2..=21), optionally
/// thinned for quick runs.
pub fn paper_ms(stride: usize) -> Vec<usize> {
    (2..=21).step_by(stride.max(1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_and_speedups() {
        let mut t = SeriesTable::new(vec![33, 49]);
        t.push("a", vec![Time::from_micros(100), Time::from_micros(200)]);
        t.push("b", vec![Time::from_micros(25), Time::from_micros(50)]);
        let text = t.render("demo");
        assert!(text.contains("procs"));
        assert!(text.contains("33"));
        assert!((t.avg_speedup(0, 1) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_thinning() {
        assert_eq!(paper_ms(1).len(), 20);
        let thin = paper_ms(5);
        assert_eq!(thin, vec![2, 7, 12, 17]);
    }
}
