//! The run-history ledger: every `--json` bench run can append one compact
//! JSON line to `results/LEDGER.jsonl`, making the repo's performance
//! trajectory self-recording. `commscope trend` is the reader.
//!
//! One entry records the identity of the run (bench name, args, git
//! revision, execution engine) plus the measured series (virtual `time_ns`
//! and the deterministic counters) and the physical wall time. Everything
//! except `git_rev`, `engine`, and `wall_s` is a pure function of virtual
//! time — two entries for the same workload under different engines differ
//! only in those three fields, which the determinism suite checks.

use std::io::Write as _;
use std::path::Path;

use crate::json::{BenchReport, Json};

/// Schema version of one ledger line (`commscope::LEDGER_SCHEMA` mirrors
/// this on the reader side).
pub const LEDGER_SCHEMA: i64 = 1;

/// Short git revision of the working tree, `"unknown"` outside a checkout.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Human label for the execution engine a run used.
pub fn engine_label(workers: Option<usize>) -> String {
    match workers {
        None => "threads".into(),
        Some(0) => "bounded(auto)".into(),
        Some(w) => format!("bounded({w})"),
    }
}

/// Build one ledger entry from a finished report. `git_rev` is a parameter
/// (rather than sampled here) so tests can pin it.
pub fn entry_json(report: &BenchReport, engine: &str, git_rev: &str) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::Int(LEDGER_SCHEMA)),
        ("bench".into(), Json::Str(report.bench.clone())),
        ("git_rev".into(), Json::Str(git_rev.into())),
        ("engine".into(), Json::Str(engine.into())),
        (
            "args".into(),
            Json::Obj(
                report
                    .args
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Int(*v)))
                    .collect(),
            ),
        ),
        (
            "ranks".into(),
            Json::Arr(report.ranks.iter().map(|&r| Json::Int(r as i64)).collect()),
        ),
        (
            "series".into(),
            Json::Arr(
                report
                    .series
                    .iter()
                    .map(|s| {
                        Json::Obj(vec![
                            ("label".into(), Json::Str(s.label.clone())),
                            (
                                "time_ns".into(),
                                Json::Arr(s.time_ns.iter().map(|&t| Json::Int(t as i64)).collect()),
                            ),
                            (
                                // The scalar the trend report tracks: total
                                // virtual time across the sweep.
                                "total_ns".into(),
                                Json::Int(s.time_ns.iter().map(|&t| t as i64).sum()),
                            ),
                            (
                                "stats".into(),
                                Json::Arr(s.stats.iter().map(|&v| Json::Int(v as i64)).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("wall_s".into(), Json::Num(report.wall_s)),
    ])
}

/// Append one entry to the ledger at `path` (parent directories are
/// created; the file is created on first use).
pub fn append(path: &Path, report: &BenchReport, engine: &str) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let line = entry_json(report, engine, &git_rev()).render_compact();
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{line}")
}

/// Honor a `--ledger PATH` flag: append the report, warning (never failing
/// the bench) on I/O errors.
pub fn maybe_record(cli: &[String], report: &BenchReport, engine: &str) {
    let Some(path) = crate::arg_str(cli, "--ledger") else {
        return;
    };
    match append(Path::new(path), report, engine) {
        Ok(()) => eprintln!("[ledger] appended {} run to {path}", report.bench),
        Err(e) => eprintln!("[ledger] cannot append to {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::SeriesReport;
    use netsim::RankStats;

    fn report() -> BenchReport {
        let stats = RankStats {
            sends: 3,
            ..Default::default()
        };
        BenchReport {
            bench: "demo".into(),
            args: vec![("steps".into(), 2)],
            ranks: vec![4],
            series: vec![SeriesReport::new("run", vec![100, 200], &stats)],
            wall_s: 0.5,
        }
    }

    #[test]
    fn entry_is_one_line_and_reader_compatible() {
        let entry = entry_json(&report(), "threads", "abc1234");
        let line = entry.render_compact();
        assert!(!line.contains('\n'));
        let entries = commscope::parse_ledger(&line).unwrap();
        assert_eq!(entries.len(), 1);
        let trends = commscope::trend(&entries, 3, 5.0);
        assert_eq!(trends.len(), 1);
        assert_eq!(trends[0].bench, "demo");
        assert_eq!(trends[0].latest_rev, "abc1234");
    }

    #[test]
    fn append_creates_and_appends() {
        let dir = std::env::temp_dir().join("commdiff-ledger-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("LEDGER.jsonl");
        append(&path, &report(), "threads").unwrap();
        append(&path, &report(), "bounded(2)").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        let entries = commscope::parse_ledger(&text).unwrap();
        assert_eq!(
            entries[1].get("engine").and_then(|v| v.as_str()),
            Some("bounded(2)")
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
