//! Machine-readable benchmark reports: a minimal JSON value type (the
//! workspace has no serde), the `--json` report schema shared by the figure
//! binaries, and baseline comparison for the CI perf-smoke gate.
//!
//! Schema (stable; bump `schema` on breaking changes):
//!
//! ```json
//! {
//!   "schema": 1,
//!   "bench": "fig4",
//!   "args": {"stride": 4, "steps": 4, "workers": -1},
//!   "ranks": [33, 97],
//!   "series": [
//!     {"label": "...", "time_ns": [123, 456],
//!      "stats": {"sends": 1, "recvs": 1, "...": 0}}
//!   ],
//!   "wall_s": 1.25
//! }
//! ```
//!
//! `time_ns` are per-step virtual times — pure functions of the workload,
//! identical across engines, worker counts and hosts, so a baseline diff on
//! them is exact (integer equality). `stats` carries only the *virtual*
//! operation counters; the physical hot-path counters (`uq_high_water`,
//! `match_scan_steps`, `mailbox_locks`) depend on thread interleaving and
//! are deliberately excluded from the stable schema. `wall_s` is physical
//! wall time and only ever compared with a slack factor.

use netsim::RankStats;
use std::fmt::Write as _;

/// A JSON value. Integers are kept exact (`Int`) — virtual times must
/// round-trip bit-exactly through the baseline file.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize with two-space indentation and stable (insertion) key
    /// order, so committed baselines diff cleanly.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(n) => {
                // Always include a decimal point so ints/floats round-trip
                // into the same variant they were written from.
                if n.fract() == 0.0 && n.is_finite() {
                    let _ = write!(out, "{n:.1}");
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Scalar-only arrays stay on one line.
                if items
                    .iter()
                    .all(|i| !matches!(i, Json::Arr(_) | Json::Obj(_)))
                {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        item.write(out, indent);
                    }
                    out.push(']');
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    pad(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (strict enough for our own output plus
    /// hand-edited baselines).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut s = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(s),
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => s.push('"'),
                    b'\\' => s.push('\\'),
                    b'/' => s.push('/'),
                    b'n' => s.push('\n'),
                    b't' => s.push('\t'),
                    b'r' => s.push('\r'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))
                            .map_err(String::from)?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        *pos += 4;
                        s.push(char::from_u32(code).ok_or("surrogate \\u escape unsupported")?);
                    }
                    _ => return Err(format!("unknown escape at byte {}", *pos - 1)),
                }
            }
            c => {
                // Re-decode UTF-8 continuation bytes.
                let start = *pos - 1;
                let len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = b.get(start..start + len).ok_or("truncated UTF-8")?;
                s.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos = start + len;
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while let Some(&c) = b.get(*pos) {
        if matches!(c, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Json::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

/// The deterministic (virtual-quantity) subset of [`RankStats`] that goes
/// into reports; order is the schema's field order.
const STAT_FIELDS: [&str; 12] = [
    "sends",
    "recvs",
    "bytes_sent",
    "waits",
    "waitalls",
    "puts",
    "bytes_put",
    "gets",
    "barriers",
    "quiets",
    "packed_bytes",
    "datatype_commits",
];

fn stat_values(s: &RankStats) -> [usize; 12] {
    [
        s.sends,
        s.recvs,
        s.bytes_sent,
        s.waits,
        s.waitalls,
        s.puts,
        s.bytes_put,
        s.gets,
        s.barriers,
        s.quiets,
        s.packed_bytes,
        s.datatype_commits,
    ]
}

/// One series of a benchmark report.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesReport {
    pub label: String,
    /// Per-x virtual times in ns (exact integers).
    pub time_ns: Vec<u64>,
    /// Merged deterministic operation counters across the series' runs.
    pub stats: [usize; 12],
}

impl SeriesReport {
    pub fn new(label: impl Into<String>, time_ns: Vec<u64>, stats: &RankStats) -> Self {
        SeriesReport {
            label: label.into(),
            time_ns,
            stats: stat_values(stats),
        }
    }
}

/// A `--json` benchmark report: everything above `wall_s` is a pure
/// function of the workload and engine-independent.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    pub bench: String,
    /// Flat integer arguments (`workers` is `-1` for thread-per-rank).
    pub args: Vec<(String, i64)>,
    pub ranks: Vec<usize>,
    pub series: Vec<SeriesReport>,
    pub wall_s: f64,
}

impl BenchReport {
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Int(1)),
            ("bench".into(), Json::Str(self.bench.clone())),
            (
                "args".into(),
                Json::Obj(
                    self.args
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Int(*v)))
                        .collect(),
                ),
            ),
            (
                "ranks".into(),
                Json::Arr(self.ranks.iter().map(|&r| Json::Int(r as i64)).collect()),
            ),
            (
                "series".into(),
                Json::Arr(
                    self.series
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("label".into(), Json::Str(s.label.clone())),
                                (
                                    "time_ns".into(),
                                    Json::Arr(
                                        s.time_ns.iter().map(|&t| Json::Int(t as i64)).collect(),
                                    ),
                                ),
                                (
                                    "stats".into(),
                                    Json::Obj(
                                        STAT_FIELDS
                                            .iter()
                                            .zip(s.stats)
                                            .map(|(k, v)| ((*k).into(), Json::Int(v as i64)))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("wall_s".into(), Json::Num(self.wall_s)),
        ])
    }

    pub fn from_json(j: &Json) -> Result<BenchReport, String> {
        let need = |k: &str| j.get(k).ok_or_else(|| format!("missing field '{k}'"));
        let schema = need("schema")?.as_i64().ok_or("schema not an int")?;
        if schema != 1 {
            return Err(format!("unsupported schema {schema}"));
        }
        let bench = need("bench")?.as_str().ok_or("bench not a string")?.into();
        let args = match need("args")? {
            Json::Obj(fields) => fields
                .iter()
                .map(|(k, v)| v.as_i64().map(|v| (k.clone(), v)).ok_or("bad arg value"))
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("args not an object".into()),
        };
        let ranks = need("ranks")?
            .as_arr()
            .ok_or("ranks not an array")?
            .iter()
            .map(|v| v.as_i64().map(|i| i as usize).ok_or("bad rank"))
            .collect::<Result<Vec<_>, _>>()?;
        let series = need("series")?
            .as_arr()
            .ok_or("series not an array")?
            .iter()
            .map(|s| {
                let label = s
                    .get("label")
                    .and_then(Json::as_str)
                    .ok_or("series missing label")?
                    .to_string();
                let time_ns = s
                    .get("time_ns")
                    .and_then(Json::as_arr)
                    .ok_or("series missing time_ns")?
                    .iter()
                    .map(|v| v.as_i64().map(|i| i as u64).ok_or("bad time_ns"))
                    .collect::<Result<Vec<_>, _>>()?;
                let stats_obj = s.get("stats").ok_or("series missing stats")?;
                let mut stats = [0usize; 12];
                for (slot, key) in stats.iter_mut().zip(STAT_FIELDS) {
                    *slot = stats_obj
                        .get(key)
                        .and_then(Json::as_i64)
                        .ok_or_else(|| format!("stats missing '{key}'"))?
                        as usize;
                }
                Ok::<SeriesReport, String>(SeriesReport {
                    label,
                    time_ns,
                    stats,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let wall_s = need("wall_s")?.as_f64().ok_or("wall_s not a number")?;
        Ok(BenchReport {
            bench,
            args,
            ranks,
            series,
            wall_s,
        })
    }
}

/// Outcome of diffing a fresh report against a committed baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineDiff {
    /// Exact-match failures (virtual times, ranks, labels, counters) —
    /// these fail the CI gate.
    pub errors: Vec<String>,
    /// Soft signals (wall-time regression) — these only warn.
    pub warnings: Vec<String>,
}

/// Wall-clock regression factor that triggers a warning.
pub const WALL_SLACK: f64 = 1.5;

/// Compare `report` against the baseline file contents (a JSON object with
/// a `benches` array of [`BenchReport`]s). The baseline entry is selected
/// by bench name + identical args; a missing entry is an error (the gate
/// must notice schema/arg drift, not silently pass).
pub fn compare_with_baseline(report: &BenchReport, baseline_text: &str) -> BaselineDiff {
    let mut diff = BaselineDiff {
        errors: Vec::new(),
        warnings: Vec::new(),
    };
    let parsed = match Json::parse(baseline_text) {
        Ok(p) => p,
        Err(e) => {
            diff.errors.push(format!("baseline unparsable: {e}"));
            return diff;
        }
    };
    let benches = match parsed.get("benches").and_then(Json::as_arr) {
        Some(b) => b,
        None => {
            diff.errors.push("baseline has no 'benches' array".into());
            return diff;
        }
    };
    let base = benches
        .iter()
        .filter_map(|b| BenchReport::from_json(b).ok())
        .find(|b| b.bench == report.bench && b.args == report.args);
    let base = match base {
        Some(b) => b,
        None => {
            diff.errors.push(format!(
                "no baseline entry for bench '{}' with args {:?}",
                report.bench, report.args
            ));
            return diff;
        }
    };
    if base.ranks != report.ranks {
        diff.errors.push(format!(
            "rank axis changed: baseline {:?} vs current {:?}",
            base.ranks, report.ranks
        ));
    }
    for (bs, rs) in base.series.iter().zip(&report.series) {
        if bs.label != rs.label {
            diff.errors
                .push(format!("series label '{}' -> '{}'", bs.label, rs.label));
            continue;
        }
        for (i, (bt, rt)) in bs.time_ns.iter().zip(&rs.time_ns).enumerate() {
            if bt != rt {
                diff.errors.push(format!(
                    "series '{}' x={} time_ns {} -> {}",
                    bs.label,
                    report.ranks.get(i).copied().unwrap_or(i),
                    bt,
                    rt
                ));
            }
        }
        if bs.stats != rs.stats {
            diff.errors.push(format!(
                "series '{}' op counters changed: {:?} -> {:?}",
                bs.label, bs.stats, rs.stats
            ));
        }
    }
    if base.series.len() != report.series.len() {
        diff.errors.push(format!(
            "series count {} -> {}",
            base.series.len(),
            report.series.len()
        ));
    }
    if report.wall_s > base.wall_s * WALL_SLACK {
        diff.warnings.push(format!(
            "wall time {:.2}s exceeds baseline {:.2}s by more than {WALL_SLACK}x",
            report.wall_s, base.wall_s
        ));
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        BenchReport {
            bench: "fig4".into(),
            args: vec![("stride".into(), 4), ("steps".into(), 4)],
            ranks: vec![33, 97],
            series: vec![SeriesReport {
                label: "Original Communication".into(),
                time_ns: vec![1_234_567_890_123, 42],
                stats: [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12],
            }],
            wall_s: 1.5,
        }
    }

    #[test]
    fn report_roundtrip_is_exact() {
        let r = sample_report();
        let text = r.to_json().render();
        let back = BenchReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let j = Json::parse(r#"{"a": [1, -2.5, "x\nyA"], "b": {"c": null, "d": true}}"#).unwrap();
        assert_eq!(
            j.get("a").unwrap().as_arr().unwrap()[2].as_str(),
            Some("x\nyA")
        );
        assert_eq!(j.get("b").unwrap().get("c"), Some(&Json::Null));
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
    }

    #[test]
    fn large_integers_stay_exact() {
        let big = 4_611_686_018_427_387_903i64; // ~2^62, beyond f64 precision
        let text = Json::Arr(vec![Json::Int(big)]).render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.as_arr().unwrap()[0].as_i64(), Some(big));
    }

    #[test]
    fn baseline_identical_passes() {
        let r = sample_report();
        let baseline = Json::Obj(vec![
            ("schema".into(), Json::Int(1)),
            ("benches".into(), Json::Arr(vec![r.to_json()])),
        ])
        .render();
        let diff = compare_with_baseline(&r, &baseline);
        assert!(diff.errors.is_empty(), "{:?}", diff.errors);
        assert!(diff.warnings.is_empty());
    }

    #[test]
    fn baseline_flags_time_change_and_wall_regression() {
        let r = sample_report();
        let baseline = Json::Obj(vec![("benches".into(), Json::Arr(vec![r.to_json()]))]).render();
        let mut changed = r.clone();
        changed.series[0].time_ns[1] = 43;
        changed.wall_s = 100.0;
        let diff = compare_with_baseline(&changed, &baseline);
        assert_eq!(diff.errors.len(), 1);
        assert!(diff.errors[0].contains("time_ns 42 -> 43"));
        assert_eq!(diff.warnings.len(), 1);
    }

    #[test]
    fn baseline_missing_entry_is_error() {
        let r = sample_report();
        let baseline = r#"{"benches": []}"#;
        let diff = compare_with_baseline(&r, baseline);
        assert_eq!(diff.errors.len(), 1);
        assert!(diff.errors[0].contains("no baseline entry"));
    }
}
