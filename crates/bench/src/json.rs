//! Machine-readable benchmark reports: the `--json` report schema shared by
//! the figure binaries and baseline comparison for the CI perf-smoke gate.
//! The JSON value type itself lives in [`commscope::json`] (shared with the
//! profiler's exporters) and is re-exported here.
//!
//! Schema (stable; bump `schema` on breaking changes):
//!
//! ```json
//! {
//!   "schema": 1,
//!   "bench": "fig4",
//!   "args": {"stride": 4, "steps": 4, "workers": -1},
//!   "ranks": [33, 97],
//!   "series": [
//!     {"label": "...", "time_ns": [123, 456],
//!      "stats": {"sends": 1, "recvs": 1, "...": 0},
//!      "contention": [3, 120, 240]}
//!   ],
//!   "wall_s": 1.25
//! }
//! ```
//!
//! `time_ns` are per-step virtual times — pure functions of the workload,
//! identical across engines, worker counts and hosts, so a baseline diff on
//! them is exact (integer equality). `stats` carries only the *virtual*
//! operation counters. `contention` is the physical hot-path triple
//! `[uq_high_water, match_scan_steps, mailbox_locks]`: interleaving-
//! dependent, so baseline comparison only *warns* on drift (like `wall_s`,
//! which is compared with a slack factor) — it never fails the gate, and
//! the CI engine byte-diff filters the line out.

use netsim::RankStats;

pub use commscope::json::Json;

/// The deterministic (virtual-quantity) subset of [`RankStats`] that goes
/// into reports; order is the schema's field order.
const STAT_FIELDS: [&str; 15] = [
    "sends",
    "recvs",
    "bytes_sent",
    "waits",
    "waitalls",
    "puts",
    "bytes_put",
    "gets",
    "barriers",
    "quiets",
    "packed_bytes",
    "datatype_commits",
    "race_checks",
    "conflicts_found",
    "dtype_cache_hits",
];

/// Index of `conflicts_found` in [`STAT_FIELDS`] (the hard race gate).
const CONFLICTS_IDX: usize = 13;

fn stat_values(s: &RankStats) -> [usize; 15] {
    [
        s.sends,
        s.recvs,
        s.bytes_sent,
        s.waits,
        s.waitalls,
        s.puts,
        s.bytes_put,
        s.gets,
        s.barriers,
        s.quiets,
        s.packed_bytes,
        s.datatype_commits,
        s.race_checks,
        s.conflicts_found,
        s.dtype_cache_hits,
    ]
}

/// One series of a benchmark report.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesReport {
    pub label: String,
    /// Per-x virtual times in ns (exact integers).
    pub time_ns: Vec<u64>,
    /// Merged deterministic operation counters across the series' runs.
    pub stats: [usize; 15],
    /// Physical contention counters `[uq_high_water, match_scan_steps,
    /// mailbox_locks]` merged across the series' runs. Interleaving-
    /// dependent: recorded for tuning, soft-gated only.
    pub contention: [usize; 3],
}

impl SeriesReport {
    pub fn new(label: impl Into<String>, time_ns: Vec<u64>, stats: &RankStats) -> Self {
        SeriesReport {
            label: label.into(),
            time_ns,
            stats: stat_values(stats),
            contention: [
                stats.uq_high_water,
                stats.match_scan_steps,
                stats.mailbox_locks,
            ],
        }
    }
}

/// A `--json` benchmark report: everything above `wall_s` except
/// `contention` is a pure function of the workload and engine-independent.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    pub bench: String,
    /// Flat integer arguments (`workers` is `-1` for thread-per-rank).
    pub args: Vec<(String, i64)>,
    pub ranks: Vec<usize>,
    pub series: Vec<SeriesReport>,
    pub wall_s: f64,
}

impl BenchReport {
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Int(1)),
            ("bench".into(), Json::Str(self.bench.clone())),
            (
                "args".into(),
                Json::Obj(
                    self.args
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Int(*v)))
                        .collect(),
                ),
            ),
            (
                "ranks".into(),
                Json::Arr(self.ranks.iter().map(|&r| Json::Int(r as i64)).collect()),
            ),
            (
                "series".into(),
                Json::Arr(
                    self.series
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("label".into(), Json::Str(s.label.clone())),
                                (
                                    "time_ns".into(),
                                    Json::Arr(
                                        s.time_ns.iter().map(|&t| Json::Int(t as i64)).collect(),
                                    ),
                                ),
                                (
                                    "stats".into(),
                                    Json::Obj(
                                        STAT_FIELDS
                                            .iter()
                                            .zip(s.stats)
                                            .map(|(k, v)| ((*k).into(), Json::Int(v as i64)))
                                            .collect(),
                                    ),
                                ),
                                (
                                    "contention".into(),
                                    Json::Arr(
                                        s.contention.iter().map(|&c| Json::Int(c as i64)).collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("wall_s".into(), Json::Num(self.wall_s)),
        ])
    }

    pub fn from_json(j: &Json) -> Result<BenchReport, String> {
        let need = |k: &str| j.get(k).ok_or_else(|| format!("missing field '{k}'"));
        let schema = need("schema")?.as_i64().ok_or("schema not an int")?;
        if schema != 1 {
            return Err(format!("unsupported schema {schema}"));
        }
        let bench = need("bench")?.as_str().ok_or("bench not a string")?.into();
        let args = match need("args")? {
            Json::Obj(fields) => fields
                .iter()
                .map(|(k, v)| v.as_i64().map(|v| (k.clone(), v)).ok_or("bad arg value"))
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("args not an object".into()),
        };
        let ranks = need("ranks")?
            .as_arr()
            .ok_or("ranks not an array")?
            .iter()
            .map(|v| v.as_i64().map(|i| i as usize).ok_or("bad rank"))
            .collect::<Result<Vec<_>, _>>()?;
        let series = need("series")?
            .as_arr()
            .ok_or("series not an array")?
            .iter()
            .map(|s| {
                let label = s
                    .get("label")
                    .and_then(Json::as_str)
                    .ok_or("series missing label")?
                    .to_string();
                let time_ns = s
                    .get("time_ns")
                    .and_then(Json::as_arr)
                    .ok_or("series missing time_ns")?
                    .iter()
                    .map(|v| v.as_i64().map(|i| i as u64).ok_or("bad time_ns"))
                    .collect::<Result<Vec<_>, _>>()?;
                let stats_obj = s.get("stats").ok_or("series missing stats")?;
                let mut stats = [0usize; 15];
                for (i, (slot, key)) in stats.iter_mut().zip(STAT_FIELDS).enumerate() {
                    match stats_obj.get(key).and_then(Json::as_i64) {
                        Some(v) => *slot = v as usize,
                        // The sanitizer and datatype-cache counters
                        // postdate the first reports; older baselines read
                        // back as zeros (like the contention triple below).
                        None if i >= 12 => *slot = 0,
                        None => return Err(format!("stats missing '{key}'")),
                    }
                }
                // Reports written before the contention triple existed (and
                // hand-trimmed baselines) read back as zeros.
                let mut contention = [0usize; 3];
                if let Some(arr) = s.get("contention").and_then(Json::as_arr) {
                    for (slot, v) in contention.iter_mut().zip(arr) {
                        *slot = v.as_i64().ok_or("bad contention value")? as usize;
                    }
                }
                Ok::<SeriesReport, String>(SeriesReport {
                    label,
                    time_ns,
                    stats,
                    contention,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let wall_s = need("wall_s")?.as_f64().ok_or("wall_s not a number")?;
        Ok(BenchReport {
            bench,
            args,
            ranks,
            series,
            wall_s,
        })
    }
}

/// Outcome of diffing a fresh report against a committed baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineDiff {
    /// Exact-match failures (virtual times, ranks, labels, counters) —
    /// these fail the CI gate.
    pub errors: Vec<String>,
    /// Soft signals (wall-time regression, physical contention drift) —
    /// these only warn.
    pub warnings: Vec<String>,
}

/// Wall-clock regression factor that triggers a warning.
pub const WALL_SLACK: f64 = 1.5;

/// Contention-counter growth factor that triggers a warning. Physical
/// counters jitter with interleaving; a doubling is a real signal (e.g. a
/// matching-engine regression), smaller drift is noise.
pub const CONTENTION_SLACK: f64 = 2.0;

/// Compare `report` against the baseline file contents (a JSON object with
/// a `benches` array of [`BenchReport`]s). The baseline entry is selected
/// by bench name + identical args; a missing entry is an error (the gate
/// must notice schema/arg drift, not silently pass).
pub fn compare_with_baseline(report: &BenchReport, baseline_text: &str) -> BaselineDiff {
    let mut diff = BaselineDiff {
        errors: Vec::new(),
        warnings: Vec::new(),
    };
    let parsed = match Json::parse(baseline_text) {
        Ok(p) => p,
        Err(e) => {
            diff.errors.push(format!("baseline unparsable: {e}"));
            return diff;
        }
    };
    let benches = match parsed.get("benches").and_then(Json::as_arr) {
        Some(b) => b,
        None => {
            diff.errors.push("baseline has no 'benches' array".into());
            return diff;
        }
    };
    let base = benches
        .iter()
        .filter_map(|b| BenchReport::from_json(b).ok())
        .find(|b| b.bench == report.bench && b.args == report.args);
    let base = match base {
        Some(b) => b,
        None => {
            diff.errors.push(format!(
                "no baseline entry for bench '{}' with args {:?}",
                report.bench, report.args
            ));
            return diff;
        }
    };
    if base.ranks != report.ranks {
        diff.errors.push(format!(
            "rank axis changed: baseline {:?} vs current {:?}",
            base.ranks, report.ranks
        ));
    }
    // Hard race gate, independent of the baseline's contents: a run whose
    // shadow-state sanitizer attributed any conflicting access pair must
    // never pass, even if someone blesses a racy baseline.
    for rs in &report.series {
        if rs.stats[CONFLICTS_IDX] != 0 {
            diff.errors.push(format!(
                "series '{}': sanitizer found {} one-sided race conflict(s) (must be 0)",
                rs.label, rs.stats[CONFLICTS_IDX]
            ));
        }
    }
    for (bs, rs) in base.series.iter().zip(&report.series) {
        if bs.label != rs.label {
            diff.errors
                .push(format!("series label '{}' -> '{}'", bs.label, rs.label));
            continue;
        }
        for (i, (bt, rt)) in bs.time_ns.iter().zip(&rs.time_ns).enumerate() {
            if bt != rt {
                diff.errors.push(format!(
                    "series '{}' x={} time_ns {} -> {}",
                    bs.label,
                    report.ranks.get(i).copied().unwrap_or(i),
                    bt,
                    rt
                ));
            }
        }
        if bs.stats != rs.stats {
            diff.errors.push(format!(
                "series '{}' op counters changed: {:?} -> {:?}",
                bs.label, bs.stats, rs.stats
            ));
        }
        // Physical counters: soft gate. Warn only on substantial growth,
        // and only when the baseline actually recorded them (non-zero).
        for (name, bc, rc) in [
            ("uq_high_water", bs.contention[0], rs.contention[0]),
            ("match_scan_steps", bs.contention[1], rs.contention[1]),
            ("mailbox_locks", bs.contention[2], rs.contention[2]),
        ] {
            if bc > 0 && rc as f64 > bc as f64 * CONTENTION_SLACK {
                diff.warnings.push(format!(
                    "series '{}' contention counter {name} grew {bc} -> {rc} \
                     (>{CONTENTION_SLACK}x; physical, interleaving-dependent)",
                    bs.label
                ));
            }
        }
    }
    if base.series.len() != report.series.len() {
        diff.errors.push(format!(
            "series count {} -> {}",
            base.series.len(),
            report.series.len()
        ));
    }
    if report.wall_s > base.wall_s * WALL_SLACK {
        diff.warnings.push(format!(
            "wall time {:.2}s exceeds baseline {:.2}s by more than {WALL_SLACK}x",
            report.wall_s, base.wall_s
        ));
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        BenchReport {
            bench: "fig4".into(),
            args: vec![("stride".into(), 4), ("steps".into(), 4)],
            ranks: vec![33, 97],
            series: vec![SeriesReport {
                label: "Original Communication".into(),
                time_ns: vec![1_234_567_890_123, 42],
                stats: [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 0, 14],
                contention: [3, 120, 240],
            }],
            wall_s: 1.5,
        }
    }

    #[test]
    fn report_roundtrip_is_exact() {
        let r = sample_report();
        let text = r.to_json().render();
        let back = BenchReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn contention_renders_on_one_line_and_tolerates_absence() {
        let r = sample_report();
        let text = r.to_json().render();
        // One-line scalar array, so CI's engine byte-diff can grep it out.
        assert!(text.contains("\"contention\": [3, 120, 240]"));
        // Pre-contention reports parse with zeros.
        let legacy = text.replace(",\n      \"contention\": [3, 120, 240]", "");
        let back = BenchReport::from_json(&Json::parse(&legacy).unwrap());
        match back {
            Ok(b) => assert_eq!(b.series[0].contention, [0, 0, 0]),
            Err(e) => panic!("legacy report rejected: {e}"),
        }
    }

    #[test]
    fn baseline_identical_passes() {
        let r = sample_report();
        let baseline = Json::Obj(vec![
            ("schema".into(), Json::Int(1)),
            ("benches".into(), Json::Arr(vec![r.to_json()])),
        ])
        .render();
        let diff = compare_with_baseline(&r, &baseline);
        assert!(diff.errors.is_empty(), "{:?}", diff.errors);
        assert!(diff.warnings.is_empty());
    }

    #[test]
    fn baseline_flags_time_change_and_wall_regression() {
        let r = sample_report();
        let baseline = Json::Obj(vec![("benches".into(), Json::Arr(vec![r.to_json()]))]).render();
        let mut changed = r.clone();
        changed.series[0].time_ns[1] = 43;
        changed.wall_s = 100.0;
        let diff = compare_with_baseline(&changed, &baseline);
        assert_eq!(diff.errors.len(), 1);
        assert!(diff.errors[0].contains("time_ns 42 -> 43"));
        assert_eq!(diff.warnings.len(), 1);
    }

    #[test]
    fn contention_drift_warns_but_never_fails() {
        let r = sample_report();
        let baseline = Json::Obj(vec![("benches".into(), Json::Arr(vec![r.to_json()]))]).render();
        let mut noisy = r.clone();
        noisy.series[0].contention = [3, 500, 240]; // >2x scan steps
        let diff = compare_with_baseline(&noisy, &baseline);
        assert!(diff.errors.is_empty(), "{:?}", diff.errors);
        assert_eq!(diff.warnings.len(), 1);
        assert!(diff.warnings[0].contains("match_scan_steps"));
        // Small jitter stays silent.
        let mut jitter = r.clone();
        jitter.series[0].contention = [4, 150, 300];
        let diff = compare_with_baseline(&jitter, &baseline);
        assert!(diff.warnings.is_empty(), "{:?}", diff.warnings);
    }

    #[test]
    fn sanitizer_counters_tolerate_pre_race_reports() {
        let r = sample_report();
        let text = r.to_json().render();
        assert!(text.contains("\"race_checks\": 13"));
        assert!(text.contains("\"conflicts_found\": 0"));
        // A report written before the sanitizer counters existed parses
        // with zeros, exactly like the contention triple.
        let legacy = text
            .replace(",\n        \"race_checks\": 13", "")
            .replace(",\n        \"conflicts_found\": 0", "");
        assert!(!legacy.contains("race_checks"), "replace missed: {legacy}");
        let back = BenchReport::from_json(&Json::parse(&legacy).unwrap()).unwrap();
        assert_eq!(back.series[0].stats[12], 0);
        assert_eq!(back.series[0].stats[13], 0);
    }

    #[test]
    fn nonzero_conflicts_fail_the_gate_even_with_matching_baseline() {
        let mut r = sample_report();
        r.series[0].stats[13] = 2;
        // Baseline blessed with the same racy counters: the gate must still
        // refuse — conflicts_found is an absolute invariant, not a diff.
        let baseline = Json::Obj(vec![("benches".into(), Json::Arr(vec![r.to_json()]))]).render();
        let diff = compare_with_baseline(&r, &baseline);
        assert_eq!(diff.errors.len(), 1, "{:?}", diff.errors);
        assert!(
            diff.errors[0].contains("race conflict"),
            "{:?}",
            diff.errors
        );
    }

    #[test]
    fn baseline_missing_entry_is_error() {
        let r = sample_report();
        let baseline = r#"{"benches": []}"#;
        let diff = compare_with_baseline(&r, baseline);
        assert_eq!(diff.errors.len(), 1);
        assert!(diff.errors[0].contains("no baseline entry"));
    }
}
