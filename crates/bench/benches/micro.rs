//! Microbenchmarks of the framework itself: clause-expression evaluation,
//! pragma parsing, lowering/codegen, derived-datatype gather/scatter, and
//! the tag-matching engine. These bound the overhead the directive
//! abstraction adds over raw library calls.

use commint::analysis::{classify, resolve_graph};
use commint::buffer::{gather_described, scatter_described};
use commint::clause::Target;
use commint::expr::{EvalEnv, RankExpr};
use criterion::{criterion_group, criterion_main, Criterion};
use mpisim::dtype::BasicType;
use pragma_front::{parse, SymbolTable};

commint::comm_datatype! {
    struct MicroAtom {
        id: i32,
        pos: [f64; 3],
        charge: f64,
        tags: [u8; 16],
    }
}

fn micro_expr(c: &mut Criterion) {
    let next = (RankExpr::rank() + RankExpr::lit(1)) % RankExpr::nranks();
    let env = EvalEnv::new(7, 64);
    c.bench_function("expr_eval_ring", |b| {
        b.iter(|| next.eval(std::hint::black_box(&env)).unwrap())
    });

    let cond = (RankExpr::rank() % RankExpr::lit(2))
        .eq(RankExpr::lit(0))
        .and(RankExpr::rank().lt(RankExpr::nranks() - RankExpr::lit(1)));
    c.bench_function("cond_eval_even_odd", |b| {
        b.iter(|| cond.eval(std::hint::black_box(&env)).unwrap())
    });
}

fn micro_parse(c: &mut Criterion) {
    let mut syms = SymbolTable::new();
    syms.declare_prim("buf1", BasicType::F64, 16)
        .declare_prim("buf2", BasicType::F64, 16);
    let src = "#pragma comm_parameters sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) \
               sendwhen(rank%2==0) receivewhen(rank%2==1) count(16) max_comm_iter(8) \
               place_sync(END_PARAM_REGION) { #pragma comm_p2p sbuf(buf1) rbuf(buf2) { } }";
    c.bench_function("pragma_parse_region", |b| {
        b.iter(|| parse(std::hint::black_box(src), &syms).unwrap())
    });

    let parsed = parse(src, &syms).unwrap();
    let pragma_front::Item::Region(spec) = &parsed.items[0] else {
        panic!()
    };
    c.bench_function("lower_to_mpi2", |b| {
        b.iter(|| commint::lower::lower(std::hint::black_box(spec), Target::Mpi2Side).render())
    });
    let vars = std::collections::HashMap::new();
    c.bench_function("resolve_and_classify_256", |b| {
        b.iter(|| {
            let g = resolve_graph(&spec.body[0], Some(&spec.clauses), 256, &vars);
            classify(&g, 256)
        })
    });
}

fn micro_datatype(c: &mut Criterion) {
    let atoms = vec![
        MicroAtom {
            id: 1,
            pos: [1.0, 2.0, 3.0],
            charge: -1.0,
            tags: [7; 16],
        };
        256
    ];
    let mut packed = Vec::new();
    c.bench_function("gather_described_256", |b| {
        b.iter(|| {
            packed.clear();
            gather_described(std::hint::black_box(&atoms), 256, &mut packed);
            packed.len()
        })
    });
    gather_described(&atoms, 256, &mut packed);
    let mut out = atoms.clone();
    c.bench_function("scatter_described_256", |b| {
        b.iter(|| scatter_described(std::hint::black_box(&mut out), 256, &packed))
    });
}

fn micro_matching(c: &mut Criterion) {
    use netsim::{run, SimConfig, SrcSel, TagSel};
    c.bench_function("matching_engine_64msgs", |b| {
        b.iter(|| {
            run(SimConfig::new(2), |ctx| {
                let m = ctx.machine().mpi;
                if ctx.rank() == 0 {
                    let reqs: Vec<_> = (0..64).map(|i| ctx.isend(1, i, &[0u8; 32], &m)).collect();
                    ctx.waitall(&reqs, &[], &m);
                } else {
                    // Reverse tag order: every post scans the queue.
                    let reqs: Vec<_> = (0..64)
                        .rev()
                        .map(|i| ctx.irecv(SrcSel::Exact(0), TagSel::Exact(i), &m))
                        .collect();
                    ctx.waitall(&[], &reqs, &m);
                }
            })
            .makespan()
        })
    });
}

criterion_group!(
    benches,
    micro_expr,
    micro_parse,
    micro_datatype,
    micro_matching
);
criterion_main!(benches);
