//! Criterion bench for the Fig. 3 experiment (single atom data
//! distribution). Wall-clock measures the simulator; the virtual-time
//! series (the paper's y-axis) is printed once per variant.

use criterion::{criterion_group, criterion_main, Criterion};
use wl_lsms::{fig3_single_atom, AtomCommVariant, AtomSizes, Topology};

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_single_atom");
    group.sample_size(10);
    // A mid-sweep point (M=4 instances, 65 ranks) keeps the bench fast.
    let topo = Topology::paper(4);
    let sizes = AtomSizes::default();

    for variant in [
        AtomCommVariant::Original,
        AtomCommVariant::DirectiveMpi2,
        AtomCommVariant::DirectiveShmem,
    ] {
        let meas = fig3_single_atom(&topo, variant, sizes);
        assert!(meas.correct);
        println!(
            "[virtual] fig3 {:>45}: {:>12} @ {} ranks",
            variant.label(),
            format!("{}", meas.time),
            meas.nranks
        );
        group.bench_function(format!("{variant:?}"), |b| {
            b.iter(|| {
                let m = fig3_single_atom(&topo, variant, sizes);
                assert!(m.correct);
                m.time
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
