//! Criterion bench for the Fig. 5 experiment (communication/computation
//! overlap under the 10x GPU projection).

use criterion::{criterion_group, criterion_main, Criterion};
use wl_lsms::{fig5_overlap, AtomSizes, CoreStateParams, Topology};

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_overlap");
    group.sample_size(10);
    let topo = Topology::paper(4);
    let cparams = CoreStateParams::default().gpu();
    let sizes = AtomSizes { jmt: 200, numc: 8 }; // lighter mesh for the bench
    let steps = 2;

    let seq = fig5_overlap(&topo, false, cparams, sizes, steps);
    let ovl = fig5_overlap(&topo, true, cparams, sizes, steps);
    println!(
        "[virtual] fig5 sequential: {}/step, overlapped: {}/step, speedup {:.2}x",
        seq.time,
        ovl.time,
        seq.time.as_nanos() as f64 / ovl.time.as_nanos() as f64
    );

    group.bench_function("original_plus_gpu_compute", |b| {
        b.iter(|| fig5_overlap(&topo, false, cparams, sizes, steps).time)
    });
    group.bench_function("directive_overlapped", |b| {
        b.iter(|| fig5_overlap(&topo, true, cparams, sizes, steps).time)
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
