//! Criterion bench for the Fig. 4 experiment (random spin configuration
//! communication) across all four variants, plus the virtual-time speedup
//! summary the paper quotes.

use criterion::{criterion_group, criterion_main, Criterion};
use wl_lsms::{fig4_spin, SpinVariant, Topology};

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_spin_comm");
    group.sample_size(10);
    let topo = Topology::paper(4); // 65 ranks
    let steps = 3;

    let mut virtuals = Vec::new();
    for variant in [
        SpinVariant::Original,
        SpinVariant::OriginalWaitall,
        SpinVariant::DirectiveMpi2,
        SpinVariant::DirectiveShmem,
    ] {
        let meas = fig4_spin(&topo, variant, steps);
        assert!(meas.correct);
        println!(
            "[virtual] fig4 {:>45}: {:>12}/step @ {} ranks",
            variant.label(),
            format!("{}", meas.time),
            meas.nranks
        );
        virtuals.push((variant, meas.time));
        group.bench_function(format!("{variant:?}"), |b| {
            b.iter(|| fig4_spin(&topo, variant, steps).time)
        });
    }
    let base = virtuals[0].1.as_nanos() as f64;
    for (v, t) in &virtuals[1..] {
        println!(
            "[virtual] fig4 speedup original/{:?} = {:.2}x",
            v,
            base / t.as_nanos() as f64
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
