//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **Synchronization policy** — per-request wait loop vs. user-level
//!   Waitall vs. the directive engine's consolidated region sync, on a
//!   fan-out of small messages (the mechanism behind Fig. 4).
//! * **Eager threshold** — ring latency across payload sizes spanning the
//!   eager→rendezvous switch.
//! * **Unexpected-message copy** — receives posted before vs. after the
//!   matching sends (virtually), isolating the unexpected-queue penalty.

use bench::{default_jobs, sweep};
use commint::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use mpisim::Comm;
use netsim::{run, CostModel, MachineModel, SimConfig, SrcSel, TagSel, Time};

const NMSG: usize = 16;

/// Fan-out of NMSG small messages from rank 0, completed per `policy`.
fn fanout_time(policy: &'static str) -> Time {
    let n = NMSG + 1;
    let res = run(SimConfig::new(n), move |ctx| {
        let world = Comm::world(ctx);
        let me = world.rank(ctx);
        match policy {
            "wait_loop" | "waitall" => {
                if me == 0 {
                    let reqs: Vec<_> = (1..n)
                        .map(|d| world.isend_slice(ctx, d, 0, &[0.5f64; 3]))
                        .collect();
                    if policy == "waitall" {
                        world.waitall(ctx, &reqs, &[]);
                    } else {
                        for r in &reqs {
                            world.wait_send(ctx, r);
                        }
                    }
                } else {
                    let req = world.irecv(ctx, Some(0), Some(0));
                    if policy == "waitall" {
                        world.waitall(ctx, &[], std::slice::from_ref(&req));
                    } else {
                        world.wait_recv(ctx, &req);
                    }
                }
            }
            "directive" => {
                let mut session = CommSession::new(ctx, world).without_ir();
                let me = session.rank();
                let params = CommParams::new()
                    .sender(RankExpr::lit(0))
                    .receiver(RankExpr::var("d"))
                    .sendwhen(RankExpr::rank().eq(RankExpr::lit(0)))
                    .receivewhen(RankExpr::rank().eq(RankExpr::var("d")))
                    .count(3)
                    .max_comm_iter(NMSG as i64);
                session
                    .region(&params, |reg| {
                        let src = [0.5f64; 3];
                        let mut dst = [0.0f64; 3];
                        for d in 1..n {
                            reg.set_var("d", d as i64);
                            let sb: &[f64] = if me == 0 { &src } else { &[] };
                            reg.p2p()
                                .site(1)
                                .sbuf(Prim::new("src", sb))
                                .rbuf(PrimMut::new("dst", &mut dst))
                                .run()
                                .unwrap();
                        }
                    })
                    .unwrap();
                session.flush();
            }
            _ => unreachable!(),
        }
        ctx.now()
    });
    res.makespan()
}

fn ablation_sync(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sync_policy");
    group.sample_size(10);
    let policies = ["wait_loop", "waitall", "directive"];
    let times = sweep(&policies, default_jobs(), |p| fanout_time(p));
    for (policy, t) in policies.into_iter().zip(times) {
        println!("[virtual] sync ablation {policy:>10}: {t}");
        group.bench_function(policy, |b| b.iter(|| fanout_time(policy)));
    }
    group.finish();
}

/// Ring transfer time at one payload size.
fn ring_time(bytes: usize, machine: MachineModel) -> Time {
    let res = run(SimConfig::new(4).with_machine(machine), move |ctx| {
        let m = ctx.machine().mpi;
        let n = ctx.nranks();
        let me = ctx.rank();
        let payload = vec![1u8; bytes];
        let s = ctx.isend((me + 1) % n, 0, &payload, &m);
        let r = ctx.irecv(SrcSel::Exact((me + n - 1) % n), TagSel::Exact(0), &m);
        ctx.waitall(&[s], &[r], &m);
        ctx.now()
    });
    res.makespan()
}

fn ablation_eager(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_eager_threshold");
    group.sample_size(10);
    let machine = MachineModel::gemini();
    let thr = machine.mpi.eager_threshold;
    println!("[virtual] eager threshold = {thr} bytes");
    let sizes = [64usize, 1024, thr, thr + 1, 4 * thr];
    let times = sweep(&sizes, default_jobs(), |&b| ring_time(b, machine));
    for (bytes, t) in sizes.into_iter().zip(times) {
        println!("[virtual] ring 4 ranks, {bytes:>6} B: {t}");
        group.bench_function(format!("{bytes}B"), |b| {
            b.iter(|| ring_time(bytes, machine))
        });
    }
    group.finish();
}

/// One message; receive posted early (pre-posted) or late (unexpected).
fn unexpected_time(late_post: bool) -> Time {
    let res = run(SimConfig::new(2), move |ctx| {
        let m: CostModel = ctx.machine().mpi;
        if ctx.rank() == 0 {
            let req = ctx.isend(1, 0, &[7u8; 4096], &m);
            ctx.wait_send(&req, &m);
        } else {
            if late_post {
                // Receiver busy: the message lands in the unexpected queue
                // (virtually) and pays the copy.
                ctx.compute(Time::from_micros(500));
            }
            let req = ctx.irecv(SrcSel::Exact(0), TagSel::Exact(0), &m);
            let done = ctx.wait_recv(&req, &m);
            assert_eq!(done.unexpected, late_post);
        }
        ctx.now()
    });
    res.final_times[1]
}

fn ablation_unexpected(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_unexpected_copy");
    group.sample_size(10);
    let times = sweep(&[false, true], default_jobs(), |&late| {
        unexpected_time(late)
    });
    println!(
        "[virtual] pre-posted recv: {}, late recv: {}",
        times[0], times[1]
    );
    group.bench_function("preposted", |b| b.iter(|| unexpected_time(false)));
    group.bench_function("unexpected", |b| b.iter(|| unexpected_time(true)));
    group.finish();
}

/// Extension ablation: the spin distribution expressed with collective
/// directives (two scatters) vs. the paper's p2p-directive version.
fn spin_path_time(collective: bool) -> Time {
    use wl_lsms::{spin, SpinState, Topology};
    let topo = Topology::new(3, 8);
    let res = run(SimConfig::new(topo.total_ranks()), move |ctx| {
        let comms = topo.build_comms(ctx);
        let mut state = SpinState::new(&topo, ctx.rank());
        if ctx.rank() == topo.wl_rank() {
            state.ev = spin::generate_spins(1, topo.instances * topo.ranks_per_lsms);
        }
        let mut session = CommSession::new(ctx, comms.world.clone()).without_ir();
        if collective {
            spin::set_evec_collective(&mut session, &topo, &mut state, Target::Mpi2Side).unwrap();
        } else {
            spin::set_evec_directive(&mut session, &topo, &mut state, Target::Mpi2Side, None)
                .unwrap();
        }
        session.flush();
        ctx.now()
    });
    res.makespan()
}

fn ablation_collective_vs_p2p(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_spin_collective_vs_p2p");
    group.sample_size(10);
    let times = sweep(&[false, true], default_jobs(), |&coll| spin_path_time(coll));
    println!(
        "[virtual] spin distribution p2p-directive: {}, collective-directive: {}",
        times[0], times[1]
    );
    group.bench_function("p2p_directives", |b| b.iter(|| spin_path_time(false)));
    group.bench_function("collective_directives", |b| b.iter(|| spin_path_time(true)));
    group.finish();
}

criterion_group!(
    benches,
    ablation_sync,
    ablation_eager,
    ablation_unexpected,
    ablation_collective_vs_p2p
);
criterion_main!(benches);
