//! Integration: communication/computation overlap semantics — the virtual
//! clock must show `max(comm, compute)`-shaped behaviour for overlapped
//! regions and `comm + compute` for sequential code, across targets
//! (the mechanism behind the paper's Figure 5).

use commint::prelude::*;
use integration::with_world_session;
use netsim::Time;

fn one_transfer(target: Target, overlap: Option<Time>, payload: usize) -> Time {
    let res = with_world_session(2, move |s| {
        let src = vec![1f64; payload];
        let mut dst = vec![0f64; payload];
        let params = CommParams::new()
            .sender(RankExpr::lit(0))
            .receiver(RankExpr::lit(1))
            .sendwhen(RankExpr::rank().eq(RankExpr::lit(0)))
            .receivewhen(RankExpr::rank().eq(RankExpr::lit(1)))
            .target(target);
        s.region(&params, |reg| {
            let call = reg
                .p2p()
                .sbuf(Prim::new("src", &src))
                .rbuf(PrimMut::new("dst", &mut dst));
            match overlap {
                Some(t) => call.overlap(|ctx| ctx.compute(t)).unwrap(),
                None => call.run().unwrap(),
            }
        })
        .unwrap();
        if overlap.is_none() {
            // Sequential version computes after the sync.
        }
        assert!(dst.iter().all(|&v| v == 1.0) || s.rank() != 1);
    });
    res.makespan()
}

#[test]
fn overlap_hides_communication_under_compute() {
    for target in [Target::Mpi2Side, Target::Shmem] {
        let compute = Time::from_millis(2);
        let comm_only = one_transfer(target, None, 4096);
        let overlapped = one_transfer(target, Some(compute), 4096);
        // Communication fully hidden: overlapped ~ compute (+sync), far
        // below comm + compute.
        assert!(
            overlapped < comm_only + compute,
            "{target}: overlapped {overlapped} !< comm {comm_only} + compute {compute}"
        );
        assert!(
            overlapped >= compute,
            "{target}: can't finish before the computation itself"
        );
        // Hiding is near-total for this compute-dominated case. (Checked
        // for MPI only: the SHMEM one-time symmetric allocation is a
        // startup synchronization that overlap legitimately cannot hide.)
        if target == Target::Mpi2Side {
            let hidden = (comm_only + compute).saturating_sub(overlapped);
            assert!(
                hidden.as_nanos() as f64 >= 0.5 * comm_only.as_nanos() as f64,
                "{target}: too little hidden: {hidden} of {comm_only}"
            );
        }
    }
}

#[test]
fn overlap_bounded_by_communication_when_compute_small() {
    // Tiny compute: total is communication-bound; overlap can't beat the
    // wire.
    let tiny = Time::from_nanos(100);
    let t = one_transfer(Target::Mpi2Side, Some(tiny), 1 << 16);
    let wire_floor = netsim::CostModel::gemini_mpi().wire_time(1 << 19);
    assert!(
        t > Time::from_nanos(wire_floor.as_nanos() / 8),
        "a 512KB transfer cannot be free: {t}"
    );
}

#[test]
fn overlap_runs_on_both_roles() {
    // The directive body executes on every rank reaching the directive
    // (Listing 7 computes on senders and receivers alike).
    let res = with_world_session(3, |s| {
        let src = [1i64; 2];
        let mut dst = [0i64; 2];
        let mut body_ran = false;
        let params = CommParams::new()
            .sender(RankExpr::lit(0))
            .receiver(RankExpr::lit(1))
            .sendwhen(RankExpr::rank().eq(RankExpr::lit(0)))
            .receivewhen(RankExpr::rank().eq(RankExpr::lit(1)));
        s.region(&params, |reg| {
            reg.p2p()
                .sbuf(Prim::new("s", &src))
                .rbuf(PrimMut::new("d", &mut dst))
                .overlap(|ctx| {
                    body_ran = true;
                    ctx.compute(Time::from_micros(1));
                })
                .unwrap();
        })
        .unwrap();
        body_ran
    });
    assert_eq!(res.per_rank, vec![true, true, true]);
}

#[test]
fn paper_19_to_1_ratio_shape() {
    // With compute:comm at 19:1, overlap saves at most the communication
    // time (paper §IV-B: "this optimization provides an improvement in
    // performance of at most the time to communicate").
    let comm_alone = one_transfer(Target::Mpi2Side, None, 256);
    let compute = Time::from_nanos(19 * comm_alone.as_nanos());
    let sequential_est = comm_alone + compute;
    let overlapped = one_transfer(Target::Mpi2Side, Some(compute), 256);
    let saved = sequential_est.saturating_sub(overlapped);
    assert!(
        saved <= comm_alone + Time::from_micros(5),
        "saved {saved} cannot exceed the communication time {comm_alone} (+sync slack)"
    );
    assert!(saved > Time::ZERO, "overlap must save something");
}
