//! Integration: synchronization consolidation and `place_sync` placement —
//! the paper's §III-A automatic analysis ("for every set of adjacent
//! comm_p2p directives with independent buffers, synchronization is
//! consolidated and reduced in most cases to one call at the end").

use commint::prelude::*;
use integration::{with_ranks, with_world_session};
use netsim::Time;

fn pair_params() -> CommParams {
    CommParams::new()
        .sender(RankExpr::lit(0))
        .receiver(RankExpr::lit(1))
        .sendwhen(RankExpr::rank().eq(RankExpr::lit(0)))
        .receivewhen(RankExpr::rank().eq(RankExpr::lit(1)))
}

#[test]
fn adjacent_p2ps_one_waitall() {
    // Independent (distinct) buffers per directive: consolidation is legal
    // and the engine produces exactly one sync.
    for k in [2usize, 4, 8] {
        let res = with_world_session(2, move |s| {
            let params = pair_params();
            let srcs: Vec<[i64; 1]> = (0..k as i64).map(|i| [i]).collect();
            let mut dsts: Vec<[i64; 1]> = vec![[0]; k];
            s.region(&params, |reg| {
                for i in 0..k {
                    reg.p2p()
                        .site(100 + i as u32)
                        .sbuf(Prim::new("s", &srcs[i]))
                        .rbuf(PrimMut::new("d", &mut dsts[i]))
                        .run()
                        .unwrap();
                }
            })
            .unwrap();
            if s.rank() == 1 {
                for (i, d) in dsts.iter().enumerate() {
                    assert_eq!(d[0], i as i64);
                }
            }
            s.ctx().stats.waitalls
        });
        assert_eq!(res.per_rank, vec![1, 1], "k={k}: exactly one sync each");
    }
}

#[test]
fn dependent_buffers_split_the_sync() {
    // Reusing the same receive buffer across adjacent directives is a
    // write-write dependence: the paper's translation may not consolidate,
    // and the engine inserts the intermediate sync automatically.
    let k = 4usize;
    let res = with_world_session(2, move |s| {
        let params = pair_params();
        let src = [5i64];
        let mut dst = [0i64]; // same buffer every iteration
        s.region(&params, |reg| {
            for i in 0..k {
                reg.p2p()
                    .site(150 + i as u32)
                    .sbuf(Prim::new("s", &src))
                    .rbuf(PrimMut::new("d", &mut dst))
                    .run()
                    .unwrap();
            }
        })
        .unwrap();
        s.ctx().stats.waitalls
    });
    // Receiver: a sync before each reuse (k-1 splits) plus the region end.
    assert_eq!(res.per_rank[1], k, "receiver splits on every reuse");
    // Sender reads the same buffer repeatedly: reads don't conflict.
    assert_eq!(res.per_rank[0], 1, "sender stays consolidated");
}

#[test]
fn consolidation_beats_standalone_sequence() {
    // The same k transfers as standalone directives (sync each) must cost
    // strictly more virtual time than one region (sync once).
    let k = 8usize;
    let time_of = |consolidated: bool| {
        with_world_session(2, move |s| {
            if consolidated {
                let params = pair_params();
                s.region(&params, |reg| {
                    for i in 0..k {
                        let src = [1f64; 16];
                        let mut dst = [0f64; 16];
                        reg.p2p()
                            .site(i as u32)
                            .sbuf(Prim::new("s", &src))
                            .rbuf(PrimMut::new("d", &mut dst))
                            .run()
                            .unwrap();
                    }
                })
                .unwrap();
            } else {
                for i in 0..k {
                    let src = [1f64; 16];
                    let mut dst = [0f64; 16];
                    s.p2p()
                        .site(i as u32)
                        .sender(RankExpr::lit(0))
                        .receiver(RankExpr::lit(1))
                        .sendwhen(RankExpr::rank().eq(RankExpr::lit(0)))
                        .receivewhen(RankExpr::rank().eq(RankExpr::lit(1)))
                        .sbuf(Prim::new("s", &src))
                        .rbuf(PrimMut::new("d", &mut dst))
                        .run()
                        .unwrap();
                }
            }
        })
        .makespan()
    };
    let region = time_of(true);
    let standalone = time_of(false);
    assert!(
        region < standalone,
        "consolidated {region} must beat per-directive sync {standalone}"
    );
}

#[test]
fn begin_next_region_placement() {
    let res = with_world_session(2, |s| {
        let src = [9i64; 4];
        let mut dst = [0i64; 4];
        let params = pair_params().place_sync(PlaceSync::BeginNextParamRegion);
        s.region(&params, |reg| {
            reg.p2p()
                .sbuf(Prim::new("s", &src))
                .rbuf(PrimMut::new("d", &mut dst))
                .run()
                .unwrap();
        })
        .unwrap();
        let after_first = s.ctx().stats.waitalls;
        // Empty second region: the carried sync applies at its start.
        let params2 = CommParams::new()
            .sender(RankExpr::lit(0))
            .receiver(RankExpr::lit(1));
        s.region(&params2, |_reg| {}).unwrap();
        let after_second = s.ctx().stats.waitalls;
        (after_first, after_second, dst[0])
    });
    for &(a, b, v) in &res.per_rank {
        assert_eq!(a, 0, "no sync inside the first region");
        assert_eq!(b, 1, "carried sync applied at next region entry");
        let _ = v;
    }
    assert_eq!(
        res.per_rank[1].2, 9,
        "data delivered regardless of placement"
    );
}

#[test]
fn end_adjacent_regions_placement() {
    let res = with_world_session(2, |s| {
        let params_adj = pair_params().place_sync(PlaceSync::EndAdjParamRegions);
        for i in 0..3 {
            let src = [i as i64];
            let mut dst = [0i64];
            s.region(&params_adj, |reg| {
                reg.p2p()
                    .site(200 + i as u32)
                    .sbuf(Prim::new("s", &src))
                    .rbuf(PrimMut::new("d", &mut dst))
                    .run()
                    .unwrap();
            })
            .unwrap();
        }
        let deferred = s.ctx().stats.waitalls;
        // Final region with default placement closes the adjacency run.
        let src = [99i64];
        let mut dst = [0i64];
        s.region(&pair_params(), |reg| {
            reg.p2p()
                .site(299)
                .sbuf(Prim::new("s", &src))
                .rbuf(PrimMut::new("d", &mut dst))
                .run()
                .unwrap();
        })
        .unwrap();
        (deferred, s.ctx().stats.waitalls)
    });
    for &(deferred, total) in &res.per_rank {
        assert_eq!(deferred, 0, "syncs deferred across all adjacent regions");
        // One consolidated charge for the carried requests + one for the
        // final region's own (merged application order may fold them; at
        // most two calls).
        assert!((1..=2).contains(&total), "got {total}");
    }
}

#[test]
fn flush_applies_outstanding_syncs() {
    let res = with_ranks(2, |ctx| {
        let comm = mpisim::Comm::world(ctx);
        let mut s = commint::CommSession::new(ctx, comm);
        let src = [5i64];
        let mut dst = [0i64];
        let params = pair_params().place_sync(PlaceSync::EndAdjParamRegions);
        s.region(&params, |reg| {
            reg.p2p()
                .sbuf(Prim::new("s", &src))
                .rbuf(PrimMut::new("d", &mut dst))
                .run()
                .unwrap();
        })
        .unwrap();
        let before = s.ctx().stats.waitalls;
        s.flush();
        let after = s.ctx().stats.waitalls;
        (before, after)
    });
    for &(before, after) in &res.per_rank {
        assert_eq!(before, 0);
        assert_eq!(after, 1);
    }
}

#[test]
fn overlapping_buffers_flagged_by_analysis() {
    // The engine trusts the program; the static analysis is the guard rail.
    let res = with_world_session(2, |s| {
        let mut shared = [0i64; 8];
        let src = [1i64; 8];
        let params = pair_params();
        s.region(&params, |reg| {
            reg.p2p()
                .site(1)
                .sbuf(Prim::new("src", &src))
                .rbuf(PrimMut::new("shared", &mut shared))
                .run()
                .unwrap();
            // Second p2p reads what the first wrote.
            let view = [shared[0]];
            let mut out = [0i64];
            reg.p2p()
                .site(2)
                .sbuf(Prim::new("shared_head", &shared[..1]))
                .rbuf(PrimMut::new("out", &mut out))
                .run()
                .unwrap();
            let _ = (view, out);
        })
        .unwrap();
        let program = s.program().to_vec();
        commint::analysis::buffer_independence(&program[0]).independent()
    });
    assert!(
        res.per_rank.iter().any(|&indep| !indep),
        "receiver must see the write-read dependency"
    );
}

#[test]
fn dependent_send_is_causally_ordered() {
    // Rank 0 -> 1 -> 2 relay in one deferred-sync chain: rank 1 forwards
    // the buffer it just received. Its forwarded message must not depart
    // (virtually) before the incoming data arrived.
    let res = with_world_session(3, |s| {
        let me = s.rank() as i64;
        let mut hop = [0i64; 4];
        let seed = [7i64, 8, 9, 10];
        let params = CommParams::new()
            .sender(RankExpr::rank() - RankExpr::lit(1))
            .receiver(RankExpr::rank() + RankExpr::lit(1))
            .place_sync(PlaceSync::EndAdjParamRegions);
        // Region A: 0 -> 1
        s.region(
            &params
                .clone()
                .sendwhen(RankExpr::rank().eq(RankExpr::lit(0)))
                .receivewhen(RankExpr::rank().eq(RankExpr::lit(1))),
            |reg| {
                let sb: &[i64] = if me == 0 { &seed } else { &[] };
                reg.p2p()
                    .site(1)
                    .count(4)
                    .sbuf(Prim::new("seed", sb))
                    .rbuf(PrimMut::new("hop", &mut hop))
                    .run()
                    .unwrap();
            },
        )
        .unwrap();
        // Region B: 1 -> 2, forwarding `hop` (received above, unsynced).
        let mut fin = [0i64; 4];
        s.region(
            &CommParams::new()
                .sender(RankExpr::rank() - RankExpr::lit(1))
                .receiver(RankExpr::rank() + RankExpr::lit(1))
                .sendwhen(RankExpr::rank().eq(RankExpr::lit(1)))
                .receivewhen(RankExpr::rank().eq(RankExpr::lit(2))),
            |reg| {
                reg.p2p()
                    .site(2)
                    .count(4)
                    .sbuf(Prim::new("hop", &hop))
                    .rbuf(PrimMut::new("fin", &mut fin))
                    .run()
                    .unwrap();
            },
        )
        .unwrap();
        (hop, fin, s.ctx().now())
    });
    assert_eq!(res.per_rank[1].0, [7, 8, 9, 10]);
    assert_eq!(
        res.per_rank[2].1,
        [7, 8, 9, 10],
        "relay forwarded real data"
    );
    // Rank 2's completion must come after a full two-hop latency chain.
    let two_hops = Time::from_nanos(2 * netsim::CostModel::gemini_mpi().latency);
    assert!(
        res.final_times[2] > two_hops,
        "causality: {} must exceed two wire hops {}",
        res.final_times[2],
        two_hops
    );
}
