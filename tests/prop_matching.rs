//! Property tests: the tag-matching engine delivers every message exactly
//! once, to the right receive, with the payload intact — and virtual
//! timings are deterministic across repeated runs — for randomized message
//! schedules.

use integration::with_ranks;
use netsim::{match_timing, Fabric, RecvRequest, SendRequest, SrcSel, TagSel, Time, WireCosts};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Msg {
    tag: i32,
    len: usize,
    fill: u8,
}

// ---------------------------------------------------------------------------
// Indexed mailbox ≡ reference linear-scan matcher
// ---------------------------------------------------------------------------

/// One step of a scripted send/post interleaving against a single receiver.
#[derive(Clone, Debug)]
enum Op {
    Send {
        src: usize,
        tag: i32,
        len: usize,
        depart_ns: u64,
        eager: bool,
    },
    Post {
        src: SrcSel,
        tag: TagSel,
        post_ns: u64,
    },
}

const OP_SRCS: usize = 4;
const OP_TAGS: i32 = 3;

fn wire_costs(eager: bool) -> WireCosts {
    WireCosts {
        latency: 1_000,
        byte_time_ns: 1.0,
        handshake: 400,
        unexpected_per_byte: 0.5,
        eager,
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            0..OP_SRCS,
            0..OP_TAGS,
            1usize..64,
            0u64..10_000,
            any::<bool>()
        )
            .prop_map(|(src, tag, len, depart_ns, eager)| Op::Send {
                src,
                tag,
                len,
                depart_ns,
                eager,
            }),
        // `OP_SRCS` / `OP_TAGS` act as the wildcard sentinel.
        (0..=OP_SRCS, 0..=OP_TAGS, 0u64..10_000).prop_map(|(src, tag, post_ns)| Op::Post {
            src: if src == OP_SRCS {
                SrcSel::Any
            } else {
                SrcSel::Exact(src)
            },
            tag: if tag == OP_TAGS {
                TagSel::Any
            } else {
                TagSel::Exact(tag)
            },
            post_ns,
        }),
    ]
}

/// What one posted receive resolved to: `(len, fill, src, tag, completion,
/// unexpected)`, or `None` while unmatched.
type RecvOutcome = Option<(usize, u8, usize, i32, Time, bool)>;

/// The seed's linear-scan matching engine, transcribed over parked message
/// descriptors: deliveries match the first posted receive in posting order;
/// posts consider only each source's oldest matching parked message
/// (non-overtaking) and pick the earliest virtual arrival, tie-broken by
/// physical arrival order.
#[derive(Default)]
struct RefMailbox {
    unexpected: Vec<RefEnv>,
    posted: Vec<RefPosted>,
    arrival_seq: u64,
}

struct RefEnv {
    src: usize,
    tag: i32,
    len: usize,
    fill: u8,
    depart: Time,
    costs: WireCosts,
    arrival_seq: u64,
    send_id: usize,
}

struct RefPosted {
    src: SrcSel,
    tag: TagSel,
    post_time: Time,
    recv_id: usize,
}

impl RefMailbox {
    /// Set a send completion with the real `Completion` cell's idempotence:
    /// the first value wins (an eager send completes at departure when it
    /// parks; the later match does not move it).
    fn set_send(send_outcomes: &mut [Option<Time>], id: usize, t: Time) {
        if send_outcomes[id].is_none() {
            send_outcomes[id] = Some(t);
        }
    }

    fn complete(
        env: RefEnv,
        post_time: Time,
        recv_id: usize,
        recv_outcomes: &mut [RecvOutcome],
        send_outcomes: &mut [Option<Time>],
    ) {
        let t = match_timing(&env.costs, env.len, env.depart, post_time);
        recv_outcomes[recv_id] = Some((
            env.len,
            env.fill,
            env.src,
            env.tag,
            t.recv_complete,
            t.unexpected,
        ));
        Self::set_send(send_outcomes, env.send_id, t.send_complete);
    }

    fn deliver(
        &mut self,
        mut env: RefEnv,
        recv_outcomes: &mut [RecvOutcome],
        send_outcomes: &mut [Option<Time>],
    ) {
        env.arrival_seq = self.arrival_seq;
        self.arrival_seq += 1;
        if let Some(idx) = self
            .posted
            .iter()
            .position(|p| p.src.matches(env.src) && p.tag.matches(env.tag))
        {
            let posted = self.posted.remove(idx);
            Self::complete(
                env,
                posted.post_time,
                posted.recv_id,
                recv_outcomes,
                send_outcomes,
            );
        } else {
            if env.costs.eager {
                Self::set_send(send_outcomes, env.send_id, env.depart);
            }
            self.unexpected.push(env);
        }
    }

    fn post(
        &mut self,
        src: SrcSel,
        tag: TagSel,
        post_time: Time,
        recv_id: usize,
        recv_outcomes: &mut [RecvOutcome],
        send_outcomes: &mut [Option<Time>],
    ) {
        let mut oldest_per_src: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        for (i, e) in self.unexpected.iter().enumerate() {
            if src.matches(e.src) && tag.matches(e.tag) {
                let entry = oldest_per_src.entry(e.src).or_insert(i);
                if self.unexpected[*entry].arrival_seq > e.arrival_seq {
                    *entry = i;
                }
            }
        }
        let best = oldest_per_src.into_values().min_by_key(|&i| {
            let e = &self.unexpected[i];
            (e.costs.eager_arrival(e.depart, e.len), e.arrival_seq)
        });
        match best {
            Some(i) => {
                let env = self.unexpected.remove(i);
                Self::complete(env, post_time, recv_id, recv_outcomes, send_outcomes);
            }
            None => {
                self.posted.push(RefPosted {
                    src,
                    tag,
                    post_time,
                    recv_id,
                });
            }
        }
    }
}

fn msg_strategy() -> impl Strategy<Value = Msg> {
    (0..4i32, 1usize..256, any::<u8>()).prop_map(|(tag, len, fill)| Msg { tag, len, fill })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_message_delivered_exactly_once(
        msgs in proptest::collection::vec(msg_strategy(), 1..24),
        post_first in any::<bool>(),
    ) {
        let msgs2 = msgs.clone();
        let res = with_ranks(2, move |ctx| {
            let m = ctx.machine().mpi;
            if ctx.rank() == 0 {
                let reqs: Vec<_> = msgs2
                    .iter()
                    .map(|msg| ctx.isend(1, msg.tag, &vec![msg.fill; msg.len], &m))
                    .collect();
                ctx.waitall(&reqs, &[], &m);
                Vec::new()
            } else {
                if !post_first {
                    // Let the sends land in the unexpected queue first
                    // (physically) — delivery must be identical.
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                // Post receives per tag, in tag order; within a tag, FIFO.
                let mut out = Vec::new();
                for tag in 0..4i32 {
                    let count = msgs2.iter().filter(|m2| m2.tag == tag).count();
                    for _ in 0..count {
                        let req = ctx.irecv(SrcSel::Exact(0), TagSel::Exact(tag), &m);
                        let done = ctx.wait_recv(&req, &m);
                        out.push((tag, done.payload.len(), done.payload[0]));
                    }
                }
                out
            }
        });
        let got = &res.per_rank[1];
        // Exactly the multiset of sent messages, FIFO within each tag.
        for tag in 0..4i32 {
            let sent: Vec<(usize, u8)> = msgs
                .iter()
                .filter(|m| m.tag == tag)
                .map(|m| (m.len, m.fill))
                .collect();
            let recv: Vec<(usize, u8)> = got
                .iter()
                .filter(|(t, _, _)| *t == tag)
                .map(|&(_, l, f)| (l, f))
                .collect();
            prop_assert_eq!(sent, recv, "tag {} order/content", tag);
        }
        prop_assert_eq!(got.len(), msgs.len());
    }

    #[test]
    fn virtual_times_deterministic(
        msgs in proptest::collection::vec(msg_strategy(), 1..16),
    ) {
        let run_once = || {
            let msgs = msgs.clone();
            with_ranks(2, move |ctx| {
                let m = ctx.machine().mpi;
                if ctx.rank() == 0 {
                    let reqs: Vec<_> = msgs
                        .iter()
                        .map(|msg| ctx.isend(1, msg.tag, &vec![msg.fill; msg.len], &m))
                        .collect();
                    ctx.waitall(&reqs, &[], &m);
                } else {
                    let reqs: Vec<_> = msgs
                        .iter()
                        .map(|msg| ctx.irecv(SrcSel::Exact(0), TagSel::Exact(msg.tag), &m))
                        .collect();
                    ctx.waitall(&[], &reqs, &m);
                }
                ctx.now()
            })
            .final_times
        };
        let a = run_once();
        let b = run_once();
        prop_assert_eq!(a, b, "same program, same virtual times");
    }

    #[test]
    fn wildcard_receive_gets_everything(
        fills in proptest::collection::vec(any::<u8>(), 1..12),
    ) {
        let fills2 = fills.clone();
        let res = with_ranks(3, move |ctx| {
            let m = ctx.machine().mpi;
            match ctx.rank() {
                0 | 1 => {
                    for (i, f) in fills2.iter().enumerate() {
                        ctx.send(2, i as i32, &[*f], &m);
                    }
                    Vec::new()
                }
                _ => {
                    let mut got = Vec::new();
                    for _ in 0..2 * fills2.len() {
                        let req = ctx.irecv(SrcSel::Any, TagSel::Any, &m);
                        let done = ctx.wait_recv(&req, &m);
                        got.push((done.src, done.tag, done.payload[0]));
                    }
                    got
                }
            }
        });
        let got = &res.per_rank[2];
        prop_assert_eq!(got.len(), 2 * fills.len());
        // Per source, tags arrive in order (per-source FIFO).
        for src in [0usize, 1] {
            let tags: Vec<i32> = got
                .iter()
                .filter(|(s, _, _)| *s == src)
                .map(|&(_, t, _)| t)
                .collect();
            let mut sorted = tags.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&tags, &sorted, "per-source FIFO for {}", src);
            // Payload matches the tag's fill value.
            for &(_, t, f) in got.iter().filter(|(s, _, _)| *s == src) {
                prop_assert_eq!(f, fills[t as usize]);
            }
        }
    }

    #[test]
    fn jittered_network_same_data_deterministic_times(
        msgs in proptest::collection::vec(msg_strategy(), 1..12),
        jitter_ns in 1u64..5_000,
    ) {
        use netsim::{run, MachineModel, SimConfig};
        let run_once = || {
            let msgs = msgs.clone();
            run(
                SimConfig::new(2)
                    .with_machine(MachineModel::gemini().with_jitter(jitter_ns)),
                move |ctx| {
                    let m = ctx.machine().mpi;
                    if ctx.rank() == 0 {
                        let reqs: Vec<_> = msgs
                            .iter()
                            .map(|msg| ctx.isend(1, msg.tag, &vec![msg.fill; msg.len], &m))
                            .collect();
                        ctx.waitall(&reqs, &[], &m);
                        Vec::new()
                    } else {
                        let mut out = Vec::new();
                        for msg in &msgs {
                            let req = ctx.irecv(SrcSel::Exact(0), TagSel::Exact(msg.tag), &m);
                            let done = req.wait_raw();
                            ctx.advance_to(done.completion);
                            out.push((done.payload.len(), done.payload[0]));
                        }
                        out
                    }
                },
            )
        };
        let a = run_once();
        let b = run_once();
        // Data correct and identical; virtual times identical run-to-run
        // (jitter is a deterministic function of message identity).
        let sent: Vec<(usize, u8)> = msgs.iter().map(|m| (m.len, m.fill)).collect();
        prop_assert_eq!(&a.per_rank[1], &sent);
        prop_assert_eq!(&a.per_rank[1], &b.per_rank[1]);
        prop_assert_eq!(a.final_times, b.final_times);
    }

    /// The indexed per-source mailbox must produce the same match pairings
    /// and the same virtual completion times as the seed's linear-scan
    /// matcher, for arbitrary interleavings of sends and posts including
    /// wildcard sources and tags. The script runs single-threaded against
    /// the real `Fabric`, so the interleaving seen by the indexed engine is
    /// exactly the scripted one.
    #[test]
    fn indexed_matching_equals_reference_linear_scan(
        ops in proptest::collection::vec(op_strategy(), 1..48),
    ) {
        let fabric = Fabric::new(OP_SRCS + 1);
        let dst = OP_SRCS;
        let mut reference = RefMailbox::default();
        let mut send_reqs: Vec<SendRequest> = Vec::new();
        let mut recv_reqs: Vec<RecvRequest> = Vec::new();
        let mut ref_send: Vec<Option<Time>> = Vec::new();
        let mut ref_recv: Vec<RecvOutcome> = Vec::new();
        for op in &ops {
            match *op {
                Op::Send { src, tag, len, depart_ns, eager } => {
                    let send_id = send_reqs.len();
                    let fill = send_id as u8;
                    let costs = wire_costs(eager);
                    let depart = Time::from_nanos(depart_ns);
                    send_reqs.push(fabric.send(
                        src,
                        dst,
                        tag,
                        bytes::Bytes::from(vec![fill; len]),
                        depart,
                        costs,
                    ));
                    ref_send.push(None);
                    reference.deliver(
                        RefEnv {
                            src,
                            tag,
                            len,
                            fill,
                            depart,
                            costs,
                            arrival_seq: 0,
                            send_id,
                        },
                        &mut ref_recv,
                        &mut ref_send,
                    );
                }
                Op::Post { src, tag, post_ns } => {
                    let recv_id = recv_reqs.len();
                    let post_time = Time::from_nanos(post_ns);
                    recv_reqs.push(fabric.recv(dst, src, tag, post_time));
                    ref_recv.push(None);
                    reference.post(src, tag, post_time, recv_id, &mut ref_recv, &mut ref_send);
                }
            }
        }
        for (i, req) in recv_reqs.iter().enumerate() {
            match (req.poll(), &ref_recv[i]) {
                (Some(done), Some((len, fill, src, tag, completion, unexpected))) => {
                    prop_assert_eq!(done.payload.len(), *len, "recv {} length", i);
                    prop_assert_eq!(done.payload[0], *fill, "recv {} message identity", i);
                    prop_assert_eq!(done.src, *src, "recv {} source", i);
                    prop_assert_eq!(done.tag, *tag, "recv {} tag", i);
                    prop_assert_eq!(done.completion, *completion, "recv {} completion", i);
                    prop_assert_eq!(done.unexpected, *unexpected, "recv {} unexpected flag", i);
                }
                (None, None) => {}
                (got, want) => prop_assert!(
                    false,
                    "recv {} diverged: indexed {:?} vs reference {:?}",
                    i, got, want
                ),
            }
        }
        for (i, req) in send_reqs.iter().enumerate() {
            prop_assert_eq!(req.poll(), ref_send[i], "send {} completion", i);
        }
    }

    #[test]
    fn completion_times_respect_wire_physics(
        len in 1usize..8192,
        delay_us in 0u64..200,
    ) {
        let res = with_ranks(2, move |ctx| {
            let m = ctx.machine().mpi;
            if ctx.rank() == 0 {
                ctx.compute(Time::from_micros(delay_us));
                let req = ctx.isend(1, 0, &vec![0u8; len], &m);
                let depart = ctx.now();
                ctx.wait_send(&req, &m);
                depart
            } else {
                let req = ctx.irecv(SrcSel::Exact(0), TagSel::Exact(0), &m);
                let done = ctx.wait_recv(&req, &m);
                done.completion
            }
        });
        let depart = res.per_rank[0];
        let completion = res.per_rank[1];
        // The receive can never (virtually) complete before the payload
        // crossed the wire.
        let m = netsim::CostModel::gemini_mpi();
        prop_assert!(completion >= depart.max(Time::from_nanos(m.latency)));
        prop_assert!(
            completion >= Time::from_nanos((len as f64 * m.byte_time_ns) as u64)
        );
    }
}

/// Non-overtaking under wildcards: a source's oldest matching message wins
/// even when a younger message from the same source would arrive (virtually)
/// earlier — the pathological case where a pure earliest-arrival pick would
/// reorder one sender's stream.
#[test]
fn wildcard_post_respects_per_source_order() {
    let fabric = Fabric::new(2);
    let costs = wire_costs(true);
    // Big message first: eager arrival 0 + 1000 + 63 = 1063.
    fabric.send(
        0,
        1,
        0,
        bytes::Bytes::from(vec![1u8; 63]),
        Time::ZERO,
        costs,
    );
    // Small message second: eager arrival 0 + 1000 + 1 = 1001 — earlier.
    fabric.send(0, 1, 0, bytes::Bytes::from(vec![2u8; 1]), Time::ZERO, costs);
    let r = fabric.recv(1, SrcSel::Any, TagSel::Any, Time::from_nanos(5_000));
    let done = r.wait_raw();
    assert_eq!(
        done.payload[0], 1,
        "oldest message from the source matches first"
    );
    assert_eq!(done.payload.len(), 63);
}

/// Fixed-scenario makespans pinned to the seed matching engine's values:
/// the indexed mailbox (and every later runtime optimization) must never
/// change what the simulator measures. Values were printed from the seed
/// revision before the refactor.
#[test]
fn fixed_scenario_makespans_unchanged() {
    use wl_lsms::{fig4_spin, SpinVariant, Topology};
    let variants = [
        SpinVariant::Original,
        SpinVariant::OriginalWaitall,
        SpinVariant::DirectiveMpi2,
        SpinVariant::DirectiveShmem,
    ];
    let goldens: [(usize, usize, [u64; 4]); 2] = [
        (2, 2, [81_600, 36_962, 23_942, 3_282]),
        (4, 3, [163_200, 61_521, 43_881, 4_823]),
    ];
    for (m, steps, expect) in goldens {
        let topo = Topology::paper(m);
        for (v, want) in variants.into_iter().zip(expect) {
            let meas = fig4_spin(&topo, v, steps);
            assert!(meas.correct, "spin validation failed for {v:?}");
            assert_eq!(
                meas.time.as_nanos(),
                want,
                "fig4 m={m} steps={steps} {v:?} drifted from the seed golden"
            );
        }
    }
}
