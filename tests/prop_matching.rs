//! Property tests: the tag-matching engine delivers every message exactly
//! once, to the right receive, with the payload intact — and virtual
//! timings are deterministic across repeated runs — for randomized message
//! schedules.

use integration::with_ranks;
use netsim::{SrcSel, TagSel, Time};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Msg {
    tag: i32,
    len: usize,
    fill: u8,
}

fn msg_strategy() -> impl Strategy<Value = Msg> {
    (0..4i32, 1usize..256, any::<u8>()).prop_map(|(tag, len, fill)| Msg { tag, len, fill })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_message_delivered_exactly_once(
        msgs in proptest::collection::vec(msg_strategy(), 1..24),
        post_first in any::<bool>(),
    ) {
        let msgs2 = msgs.clone();
        let res = with_ranks(2, move |ctx| {
            let m = ctx.machine().mpi;
            if ctx.rank() == 0 {
                let reqs: Vec<_> = msgs2
                    .iter()
                    .map(|msg| ctx.isend(1, msg.tag, &vec![msg.fill; msg.len], &m))
                    .collect();
                ctx.waitall(&reqs, &[], &m);
                Vec::new()
            } else {
                if !post_first {
                    // Let the sends land in the unexpected queue first
                    // (physically) — delivery must be identical.
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                // Post receives per tag, in tag order; within a tag, FIFO.
                let mut out = Vec::new();
                for tag in 0..4i32 {
                    let count = msgs2.iter().filter(|m2| m2.tag == tag).count();
                    for _ in 0..count {
                        let req = ctx.irecv(SrcSel::Exact(0), TagSel::Exact(tag), &m);
                        let done = ctx.wait_recv(&req, &m);
                        out.push((tag, done.payload.len(), done.payload[0]));
                    }
                }
                out
            }
        });
        let got = &res.per_rank[1];
        // Exactly the multiset of sent messages, FIFO within each tag.
        for tag in 0..4i32 {
            let sent: Vec<(usize, u8)> = msgs
                .iter()
                .filter(|m| m.tag == tag)
                .map(|m| (m.len, m.fill))
                .collect();
            let recv: Vec<(usize, u8)> = got
                .iter()
                .filter(|(t, _, _)| *t == tag)
                .map(|&(_, l, f)| (l, f))
                .collect();
            prop_assert_eq!(sent, recv, "tag {} order/content", tag);
        }
        prop_assert_eq!(got.len(), msgs.len());
    }

    #[test]
    fn virtual_times_deterministic(
        msgs in proptest::collection::vec(msg_strategy(), 1..16),
    ) {
        let run_once = || {
            let msgs = msgs.clone();
            with_ranks(2, move |ctx| {
                let m = ctx.machine().mpi;
                if ctx.rank() == 0 {
                    let reqs: Vec<_> = msgs
                        .iter()
                        .map(|msg| ctx.isend(1, msg.tag, &vec![msg.fill; msg.len], &m))
                        .collect();
                    ctx.waitall(&reqs, &[], &m);
                } else {
                    let reqs: Vec<_> = msgs
                        .iter()
                        .map(|msg| ctx.irecv(SrcSel::Exact(0), TagSel::Exact(msg.tag), &m))
                        .collect();
                    ctx.waitall(&[], &reqs, &m);
                }
                ctx.now()
            })
            .final_times
        };
        let a = run_once();
        let b = run_once();
        prop_assert_eq!(a, b, "same program, same virtual times");
    }

    #[test]
    fn wildcard_receive_gets_everything(
        fills in proptest::collection::vec(any::<u8>(), 1..12),
    ) {
        let fills2 = fills.clone();
        let res = with_ranks(3, move |ctx| {
            let m = ctx.machine().mpi;
            match ctx.rank() {
                0 | 1 => {
                    for (i, f) in fills2.iter().enumerate() {
                        ctx.send(2, i as i32, &[*f], &m);
                    }
                    Vec::new()
                }
                _ => {
                    let mut got = Vec::new();
                    for _ in 0..2 * fills2.len() {
                        let req = ctx.irecv(SrcSel::Any, TagSel::Any, &m);
                        let done = ctx.wait_recv(&req, &m);
                        got.push((done.src, done.tag, done.payload[0]));
                    }
                    got
                }
            }
        });
        let got = &res.per_rank[2];
        prop_assert_eq!(got.len(), 2 * fills.len());
        // Per source, tags arrive in order (per-source FIFO).
        for src in [0usize, 1] {
            let tags: Vec<i32> = got
                .iter()
                .filter(|(s, _, _)| *s == src)
                .map(|&(_, t, _)| t)
                .collect();
            let mut sorted = tags.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&tags, &sorted, "per-source FIFO for {}", src);
            // Payload matches the tag's fill value.
            for &(_, t, f) in got.iter().filter(|(s, _, _)| *s == src) {
                prop_assert_eq!(f, fills[t as usize]);
            }
        }
    }

    #[test]
    fn jittered_network_same_data_deterministic_times(
        msgs in proptest::collection::vec(msg_strategy(), 1..12),
        jitter_ns in 1u64..5_000,
    ) {
        use netsim::{run, MachineModel, SimConfig};
        let run_once = || {
            let msgs = msgs.clone();
            run(
                SimConfig::new(2)
                    .with_machine(MachineModel::gemini().with_jitter(jitter_ns)),
                move |ctx| {
                    let m = ctx.machine().mpi;
                    if ctx.rank() == 0 {
                        let reqs: Vec<_> = msgs
                            .iter()
                            .map(|msg| ctx.isend(1, msg.tag, &vec![msg.fill; msg.len], &m))
                            .collect();
                        ctx.waitall(&reqs, &[], &m);
                        Vec::new()
                    } else {
                        let mut out = Vec::new();
                        for msg in &msgs {
                            let req = ctx.irecv(SrcSel::Exact(0), TagSel::Exact(msg.tag), &m);
                            let done = req.wait_raw();
                            ctx.advance_to(done.completion);
                            out.push((done.payload.len(), done.payload[0]));
                        }
                        out
                    }
                },
            )
        };
        let a = run_once();
        let b = run_once();
        // Data correct and identical; virtual times identical run-to-run
        // (jitter is a deterministic function of message identity).
        let sent: Vec<(usize, u8)> = msgs.iter().map(|m| (m.len, m.fill)).collect();
        prop_assert_eq!(&a.per_rank[1], &sent);
        prop_assert_eq!(&a.per_rank[1], &b.per_rank[1]);
        prop_assert_eq!(a.final_times, b.final_times);
    }

    #[test]
    fn completion_times_respect_wire_physics(
        len in 1usize..8192,
        delay_us in 0u64..200,
    ) {
        let res = with_ranks(2, move |ctx| {
            let m = ctx.machine().mpi;
            if ctx.rank() == 0 {
                ctx.compute(Time::from_micros(delay_us));
                let req = ctx.isend(1, 0, &vec![0u8; len], &m);
                let depart = ctx.now();
                ctx.wait_send(&req, &m);
                depart
            } else {
                let req = ctx.irecv(SrcSel::Exact(0), TagSel::Exact(0), &m);
                let done = ctx.wait_recv(&req, &m);
                done.completion
            }
        });
        let depart = res.per_rank[0];
        let completion = res.per_rank[1];
        // The receive can never (virtually) complete before the payload
        // crossed the wire.
        let m = netsim::CostModel::gemini_mpi();
        prop_assert!(completion >= depart.max(Time::from_nanos(m.latency)));
        prop_assert!(
            completion >= Time::from_nanos((len as f64 * m.byte_time_ns) as u64)
        );
    }
}
