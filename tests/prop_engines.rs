//! Property tests: randomized mixed workloads (two-sided p2p, collectives,
//! one-sided signalled puts) produce identical virtual results under the
//! thread-per-rank engine and the bounded scheduler at every worker count.
//! This is the bounded engine's core contract: scheduling order may change
//! wall-clock execution, never the simulation.

use netsim::{run, ExecPolicy, RankStats, SimConfig, SrcSel, TagSel};
use proptest::prelude::*;

/// One communication round every rank executes (rounds are matched by
/// construction, so any script is deadlock-free).
#[derive(Clone, Debug)]
enum Round {
    /// Non-blocking ring shift: isend to the right, recv from the left.
    RingShift { tag: i32, len: usize },
    /// Workers send to rank 0; the root drains wildcard receives together.
    FanIn { len: usize },
    /// Communicator-wide barrier.
    Barrier,
    /// Signalled put to the right neighbour over a fresh symmetric segment.
    PutRing { len: usize },
}

fn round_strategy() -> impl Strategy<Value = Round> {
    prop_oneof![
        (0..4i32, 1..96usize).prop_map(|(tag, len)| Round::RingShift { tag, len }),
        (1..64usize).prop_map(|len| Round::FanIn { len }),
        Just(Round::Barrier),
        (1..48usize).prop_map(|len| Round::PutRing { len }),
    ]
}

/// Engine-independent per-rank counters (physical counters excluded).
fn det(s: &RankStats) -> [usize; 12] {
    [
        s.sends,
        s.recvs,
        s.bytes_sent,
        s.waits,
        s.waitalls,
        s.puts,
        s.bytes_put,
        s.gets,
        s.barriers,
        s.quiets,
        s.packed_bytes,
        s.datatype_commits,
    ]
}

/// Run the script under `exec`; return every virtual observable — final
/// clocks, per-rank payload checksums, per-rank deterministic counters.
fn run_script(
    nranks: usize,
    rounds: &[Round],
    exec: ExecPolicy,
) -> (Vec<u64>, Vec<u64>, Vec<[usize; 12]>) {
    let rounds = rounds.to_vec();
    let res = run(SimConfig::new(nranks).with_exec(exec), move |ctx| {
        let model = ctx.machine().mpi;
        let me = ctx.rank();
        let n = ctx.nranks();
        let mut check: u64 = 0;
        let mix = |v: u64, check: &mut u64| {
            *check = check.wrapping_mul(1099511628211).wrapping_add(v);
        };
        for (k, round) in rounds.iter().enumerate() {
            match round {
                Round::RingShift { tag, len } => {
                    let payload: Vec<u8> = (0..*len).map(|i| (me + i + k) as u8).collect();
                    let req = ctx.isend((me + 1) % n, *tag, &payload, &model);
                    let done =
                        ctx.recv(SrcSel::Exact((me + n - 1) % n), TagSel::Exact(*tag), &model);
                    ctx.wait_send(&req, &model);
                    mix(
                        done.payload.iter().map(|&b| b as u64).sum::<u64>(),
                        &mut check,
                    );
                }
                Round::FanIn { len } => {
                    // A fresh tag per round keeps rounds from cross-matching.
                    // Which sender binds to which wildcard receive is an
                    // application-level race (as in real MPI), so fold the
                    // fan-in set commutatively: the *set* of arrivals is
                    // deterministic even though the binding order is not.
                    let tag = 1000 + k as i32;
                    if me == 0 {
                        let reqs: Vec<_> = (1..n)
                            .map(|_| ctx.irecv(SrcSel::Any, TagSel::Exact(tag), &model))
                            .collect();
                        let fold: u64 = ctx
                            .waitall(&[], &reqs, &model)
                            .iter()
                            .map(|d| d.src as u64 + ((d.payload.len() as u64) << 8))
                            .sum();
                        mix(fold, &mut check);
                    } else {
                        ctx.send(0, tag, &vec![me as u8; *len], &model);
                    }
                }
                Round::Barrier => ctx.barrier(&model),
                Round::PutRing { len } => {
                    let group: Vec<usize> = (0..n).collect();
                    let seg = ctx.sym_alloc(&group, *len, &model);
                    let payload: Vec<u8> = (0..*len).map(|i| (me * 3 + i + k) as u8).collect();
                    ctx.put(seg, (me + 1) % n, 0, &payload, &model, true);
                    ctx.quiet(&model);
                    let t = ctx.wait_signals_raw(seg, 1);
                    ctx.advance_to(t);
                    let mut buf = vec![0u8; *len];
                    ctx.read_local(seg, 0, &mut buf);
                    mix(buf.iter().map(|&b| b as u64).sum::<u64>(), &mut check);
                    // Keep rounds apart so the next collective is uniform.
                    ctx.barrier(&model);
                }
            }
        }
        check
    });
    (
        res.final_times.iter().map(|t| t.as_nanos()).collect(),
        res.per_rank,
        res.stats.iter().map(det).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engines_agree_on_random_workloads(
        nranks in 2usize..=5,
        rounds in proptest::collection::vec(round_strategy(), 1..6),
    ) {
        let ncpu = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
        let reference = run_script(nranks, &rounds, ExecPolicy::threads());
        for workers in [1usize, 2, ncpu] {
            let got = run_script(nranks, &rounds, ExecPolicy::bounded(workers));
            prop_assert_eq!(
                &reference, &got,
                "bounded({}) diverged from threads on {:?}", workers, rounds
            );
        }
    }
}
