//! Integration: the pragma front-end and the execution engine agree — a
//! directive parsed from the paper's literal syntax executes with the same
//! behaviour as the equivalent builder-API program, and the static analyses
//! predict what execution then does.

use commint::analysis::{classify, resolve_graph, Pattern};
use commint::prelude::*;
use integration::with_world_session;
use mpisim::dtype::BasicType;
use pragma_front::{parse, Item, SymbolTable};

fn symbols() -> SymbolTable {
    let mut s = SymbolTable::new();
    s.declare_prim("buf1", BasicType::F64, 8)
        .declare_prim("buf2", BasicType::F64, 8);
    s
}

/// Execute a parsed single-p2p spec (clauses only; fresh buffers supplied).
fn execute_parsed(clauses: commint::ClauseSet, nranks: usize) -> Vec<Vec<f64>> {
    with_world_session(nranks, move |s| {
        let me = s.rank() as f64;
        let send: Vec<f64> = (0..8).map(|i| me * 10.0 + i as f64).collect();
        let mut recv = vec![-1f64; 8];
        let mut params = CommParams::new();
        params.clauses = clauses.clone();
        s.region(&params, |reg| {
            reg.p2p()
                .sbuf(Prim::new("buf1", &send))
                .rbuf(PrimMut::new("buf2", &mut recv))
                .run()
                .unwrap();
        })
        .unwrap();
        recv
    })
    .per_rank
}

#[test]
fn parsed_ring_executes_like_builder_ring() {
    let src = "#pragma comm_p2p sender((rank-1+nprocs)%nprocs) \
               receiver((rank+1)%nprocs) sbuf(buf1) rbuf(buf2)";
    let parsed = parse(src, &symbols()).unwrap();
    let Item::P2p(spec) = &parsed.items[0] else {
        panic!("expected p2p")
    };

    let n = 6;
    let from_text = execute_parsed(spec.clauses.clone(), n);

    let from_builder = with_world_session(n, |s| {
        let me = s.rank() as f64;
        let send: Vec<f64> = (0..8).map(|i| me * 10.0 + i as f64).collect();
        let mut recv = vec![-1f64; 8];
        commint::patterns::ring(s, Target::Mpi2Side, &send, &mut recv).unwrap();
        recv
    })
    .per_rank;

    assert_eq!(from_text, from_builder);
}

#[test]
fn parsed_even_odd_executes_and_matches_prediction() {
    let src = "#pragma comm_p2p sbuf(buf1) rbuf(buf2) \
               sender(rank-1) receiver(rank+1) \
               sendwhen(rank%2==0) receivewhen(rank%2==1)";
    let parsed = parse(src, &symbols()).unwrap();
    let Item::P2p(spec) = &parsed.items[0] else {
        panic!()
    };
    let n = 8;

    // Static prediction.
    let g = resolve_graph(spec, None, n, &Default::default());
    assert_eq!(classify(&g, n), Pattern::DisjointPairs);
    let receivers: Vec<usize> = g.matched().iter().map(|e| e.dst).collect();

    // Dynamic behaviour agrees.
    let data = execute_parsed(spec.clauses.clone(), n);
    for (rank, recv) in data.iter().enumerate() {
        if receivers.contains(&rank) {
            assert_eq!(recv[0], (rank as f64 - 1.0) * 10.0, "rank {rank}");
        } else {
            assert!(recv.iter().all(|&v| v == -1.0), "rank {rank} untouched");
        }
    }
}

#[test]
fn parsed_region_with_variables_executes() {
    let src = r#"
#pragma comm_parameters sendwhen(rank==from_rank) receivewhen(rank==to_rank)
    sender(from_rank) receiver(to_rank) count(8)
{
    #pragma comm_p2p sbuf(buf1) rbuf(buf2)
    { }
}
"#;
    let parsed = parse(src, &symbols()).unwrap();
    let Item::Region(region) = &parsed.items[0] else {
        panic!()
    };
    let region = region.clone();

    let res = with_world_session(4, move |s| {
        s.set_var("from_rank", 2);
        s.set_var("to_rank", 0);
        let me = s.rank() as f64;
        let send = [me + 0.5; 8];
        let mut recv = [0f64; 8];
        let mut params = CommParams::new();
        params.clauses = region.clauses.clone();
        let inner = region.body[0].clauses.clone();
        s.region(&params, |reg| {
            let mut call = reg.p2p();
            // Apply the parsed p2p-level clause overrides (none here, but
            // keep the path honest).
            if let Some(c) = &inner.count {
                call = call.count(c.clone());
            }
            call.sbuf(Prim::new("buf1", &send))
                .rbuf(PrimMut::new("buf2", &mut recv))
                .run()
                .unwrap();
        })
        .unwrap();
        recv[0]
    });
    assert_eq!(res.per_rank[0], 2.5, "rank 0 received rank 2's payload");
    assert_eq!(res.per_rank[1], 0.0);
}

#[test]
fn translation_matches_execution_structure() {
    // The generated MPI code claims one Waitall over 2 requests per rank;
    // execution produces exactly one consolidated sync per rank.
    let src = r#"
#pragma comm_parameters sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs)
{
    #pragma comm_p2p sbuf(buf1) rbuf(buf2)
    { }
}
"#;
    let text = pragma_front::translate(src, &symbols(), Target::Mpi2Side).unwrap();
    assert!(text.contains("MPI_Waitall(2, req"), "{text}");

    let parsed = parse(src, &symbols()).unwrap();
    let Item::Region(region) = &parsed.items[0] else {
        panic!()
    };
    let clauses = region.clauses.clone();
    let res = with_world_session(5, move |s| {
        let send = [1f64; 8];
        let mut recv = [0f64; 8];
        let mut params = CommParams::new();
        params.clauses = clauses.clone();
        s.region(&params, |reg| {
            reg.p2p()
                .sbuf(Prim::new("buf1", &send))
                .rbuf(PrimMut::new("buf2", &mut recv))
                .run()
                .unwrap();
        })
        .unwrap();
        s.ctx().stats.waitalls
    });
    assert!(res.per_rank.iter().all(|&w| w == 1));
}

#[test]
fn diagnostics_block_bad_programs_in_both_paths() {
    // Text path: pairing violation diagnosed at parse time.
    let src = "#pragma comm_p2p sender(a) receiver(b) sendwhen(rank==0) sbuf(buf1) rbuf(buf2)";
    let parsed = parse(src, &symbols()).unwrap();
    assert!(parsed.has_errors());

    // Builder path: same violation rejected at execution time.
    let res = with_world_session(2, |s| {
        let src_buf = [0f64; 2];
        let mut dst = [0f64; 2];
        let r = s
            .p2p()
            .sender(RankExpr::var("a"))
            .receiver(RankExpr::var("b"))
            .sendwhen(RankExpr::rank().eq(RankExpr::lit(0)))
            .sbuf(Prim::new("buf1", &src_buf))
            .rbuf(PrimMut::new("buf2", &mut dst))
            .run();
        matches!(r, Err(commint::DirectiveError::Invalid(_)))
    });
    assert!(res.per_rank.iter().all(|&rejected| rejected));
}
