//! Golden-certificate tests for `commprove`.
//!
//! Each fixture under `tests/prove_fixtures/` is proved and its certificate
//! byte-compared against `tests/prove_fixtures/golden/<name>.cert.json`.
//! Regenerate with `BLESS=1 cargo test -p integration --test commprove_golden`.
//! Beyond the byte diffs, the tests assert the semantic content the golden
//! files encode: quantified verdicts on the clean fixtures, a concrete
//! `(N, rank)` counterexample on the broken one that `commlint`'s sweep
//! reproduces, and checker acceptance of every honest certificate.

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

use commint::clause::Severity;
use commint::diag::{LintCode, Verification};
use commlint::LintOptions;
use commprove::cert::{Certificate, Verdict};
use commprove::check::{check_source, parse_certificate};
use commprove::{prove_source, render_prove_text, ProveReport, PROVED_CODES};
use pragma_front::SymbolTable;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/prove_fixtures")
}

fn read_fixture(name: &str) -> String {
    let path = fixture_dir().join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn prove_fixture(name: &str) -> (String, ProveReport) {
    let src = read_fixture(name);
    let rep = prove_source(name, &src, &SymbolTable::new(), &LintOptions::default())
        .unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
    (src, rep)
}

/// Byte-compare the certificate against its golden file (or regenerate
/// under `BLESS=1`), then return the parsed report for semantic checks.
fn check_golden(name: &str) -> (String, ProveReport) {
    let (src, rep) = prove_fixture(name);
    let stem = name.trim_end_matches(".comm");
    let golden_path = fixture_dir()
        .join("golden")
        .join(format!("{stem}.cert.json"));
    let rendered = rep.certificate.to_json();
    if std::env::var("BLESS").is_ok() {
        fs::create_dir_all(golden_path.parent().unwrap()).unwrap();
        fs::write(&golden_path, &rendered).unwrap();
    } else {
        let want = fs::read_to_string(&golden_path).unwrap_or_else(|e| {
            panic!(
                "missing golden {} ({e}); run with BLESS=1 to generate",
                golden_path.display()
            )
        });
        assert_eq!(
            rendered, want,
            "{name}: certificate drifted from golden; re-bless if intended"
        );
    }
    (src, rep)
}

/// Round-trip the golden file through the independent checker: parse the
/// committed JSON (not the in-memory cert) and replay it against source.
fn checker_accepts(name: &str, src: &str) -> Certificate {
    let stem = name.trim_end_matches(".comm");
    let golden_path = fixture_dir()
        .join("golden")
        .join(format!("{stem}.cert.json"));
    let doc = fs::read_to_string(&golden_path).unwrap();
    let cert = parse_certificate(&doc).unwrap_or_else(|e| panic!("{name}: parse cert: {e}"));
    let errs = check_source(src, &SymbolTable::new(), &LintOptions::default(), &cert);
    assert!(
        errs.is_empty(),
        "{name}: checker rejected honest cert: {errs:?}"
    );
    cert
}

#[test]
fn ring_is_proved_for_all_n() {
    let (src, rep) = check_golden("ring.comm");
    let region = &rep.certificate.regions[0];
    assert!(region.eligible, "ring must be in the decidable class");

    // Every engine-level property gets a region-wide absence claim, except
    // the advisory cycle note, which is proved present for every N.
    for code in PROVED_CODES {
        let claims: Vec<_> = region.claims.iter().filter(|c| c.code == code).collect();
        assert!(!claims.is_empty(), "no claim for {}", code.code());
        if code == LintCode::BlockingDeadlockCycle {
            assert!(
                claims
                    .iter()
                    .any(|c| matches!(c.verdict, Verdict::Present { from: 2 })),
                "ring cycle note should be present for all N >= 2"
            );
        } else {
            assert!(
                claims
                    .iter()
                    .all(|c| matches!(c.verdict, Verdict::Absent { from: 2 })),
                "{} should be absent for all N >= 2",
                code.code()
            );
        }
    }

    // The one diagnostic is the note, stamped with a quantified verdict.
    assert_eq!(rep.report.diags.len(), 1);
    let d = &rep.report.diags[0];
    assert_eq!(d.code, LintCode::BlockingDeadlockCycle);
    assert_eq!(d.severity, Severity::Note);
    assert_eq!(d.verification, Some(Verification::Proved { from: 2 }));
    assert!(!rep.report.gate_fails());

    let text = render_prove_text("ring.comm", &rep);
    assert!(text.contains("affine-congruence class"), "text: {text}");
    assert!(text.contains("proved ∀N≥2"), "text: {text}");

    checker_accepts("ring.comm", &src);
}

#[test]
fn broken_ring_yields_concrete_counterexample() {
    let (src, rep) = check_golden("broken_ring.comm");
    let region = &rep.certificate.regions[0];
    assert!(region.eligible, "broken ring still normalizes");

    // The mismatch is proved, not merely observed: CI001 carries a
    // Present/PresentCongruent claim quantified over all N.
    let ci001: Vec<_> = region
        .claims
        .iter()
        .filter(|c| c.code == LintCode::UnmatchedSend && c.severity.is_some())
        .collect();
    assert!(!ci001.is_empty(), "expected a quantified CI001 claim");
    assert!(ci001.iter().all(|c| matches!(
        c.verdict,
        Verdict::Present { .. } | Verdict::PresentCongruent { .. }
    )));

    // And the report names a concrete (N, rank) counterexample...
    let diag = rep
        .report
        .diags
        .iter()
        .find(|d| d.code == LintCode::UnmatchedSend)
        .expect("CI001 diagnostic");
    let witness = diag.witness.as_ref().expect("concrete witness");
    assert!(witness.nranks >= 2);
    assert!(!witness.ranks.is_empty(), "witness must name failing ranks");
    assert!(rep.report.gate_fails());

    // ...which commlint's plain concrete sweep (same `@ranks` window)
    // reproduces: same finding identity, witnessed at the same first
    // failing rank count, implicating the same ranks there.
    let swept = commlint::lint_source(&src, &SymbolTable::new(), &LintOptions::default()).unwrap();
    let same = swept
        .diags
        .iter()
        .find(|d| d.code == diag.code && d.site == diag.site && d.key == diag.key)
        .expect("sweep at the witness count reproduces the finding");
    let sw = same.witness.as_ref().expect("sweep witness");
    assert_eq!(sw.nranks, witness.nranks);
    let sweep_ranks: BTreeSet<_> = sw.ranks.iter().collect();
    assert!(witness.ranks.iter().all(|r| sweep_ranks.contains(r)));

    checker_accepts("broken_ring.comm", &src);
}

#[test]
fn parity_gate_is_proved_congruent() {
    let (src, rep) = check_golden("parity_gate.comm");
    let region = &rep.certificate.regions[0];
    assert!(region.eligible);
    assert_eq!(
        region.lcm % 2,
        0,
        "case split must include the parity period"
    );

    // The unmatched send fires exactly at odd N: a congruence claim with
    // odd residues only, and no plain Present claim for CI001.
    let ci001 = region
        .claims
        .iter()
        .find(|c| c.code == LintCode::UnmatchedSend && c.severity.is_some())
        .expect("CI001 claim");
    match &ci001.verdict {
        Verdict::PresentCongruent {
            modulus, residues, ..
        } => {
            assert_eq!(modulus % 2, 0);
            assert!(!residues.is_empty());
            assert!(
                residues.iter().all(|r| r % 2 == 1),
                "CI001 must fire only at odd N, got residues {residues:?}"
            );
        }
        other => panic!("expected congruent CI001 verdict, got {other}"),
    }

    // Stamped through to the user-facing diagnostic.
    let diag = rep
        .report
        .diags
        .iter()
        .find(|d| d.code == LintCode::UnmatchedSend)
        .expect("CI001 diagnostic");
    assert!(matches!(
        diag.verification,
        Some(Verification::ProvedCongruent { .. })
    ));

    checker_accepts("parity_gate.comm", &src);
}

#[test]
fn unbound_variable_degrades_to_sweep() {
    let (src, rep) = check_golden("swept_unbound.comm");
    let region = &rep.certificate.regions[0];
    assert!(!region.eligible);
    let reason = region.reason.as_deref().unwrap_or("");
    assert!(
        reason.contains('k'),
        "reason should name the unbound var: {reason}"
    );
    assert!(
        region
            .claims
            .iter()
            .all(|c| matches!(c.verdict, Verdict::Swept { min: 2, max: 8 })),
        "ineligible region must only carry swept claims"
    );
    // The degraded result is exactly commlint's sweep, stamp for stamp.
    let swept = commlint::lint_source(&src, &SymbolTable::new(), &LintOptions::default()).unwrap();
    assert_eq!(rep.report.diags, swept.diags);

    checker_accepts("swept_unbound.comm", &src);
}

#[test]
fn tampered_golden_certificates_are_rejected() {
    // Take the honest ring certificate and forge the cycle-note presence
    // claim into an absence claim: the checker must notice the outcomes
    // (and replay) contradict it.
    let src = read_fixture("ring.comm");
    let doc = fs::read_to_string(fixture_dir().join("golden/ring.cert.json")).unwrap();
    let mut cert = parse_certificate(&doc).unwrap();
    for claim in &mut cert.regions[0].claims {
        if claim.code == LintCode::BlockingDeadlockCycle && claim.severity.is_some() {
            claim.verdict = Verdict::Absent { from: 2 };
            claim.severity = None;
            claim.key = "*".into();
        }
    }
    cert.regions[0].outcomes.clear();
    let errs = check_source(&src, &SymbolTable::new(), &LintOptions::default(), &cert);
    assert!(!errs.is_empty(), "forged certificate must be rejected");
}
