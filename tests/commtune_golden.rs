//! Golden-file tests for the commtune feedback loop: a committed fig4
//! profile → overlay fixture (regenerate with `BLESS=1`), the stale-schema
//! gate (exit code 3 from the CLI), and a small-scale A/B sanity check —
//! the tuned run must beat the untuned directive run with bit-identical
//! payloads, across execution engines.
//!
//! Regenerate goldens after an intentional output change with
//! `BLESS=1 cargo test -p integration --test commtune_golden`.

use std::path::PathBuf;

use commscope::{analyze, profile_json, validate_profile, Json};
use commtune::{overlay_from_json, overlay_to_json, tune, TuneOptions};
use netsim::ExecPolicy;
use wl_lsms::{fig4_spin_observed, fig4_spin_tuned, SpinVariant, Topology};

const STEPS: usize = 2;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/tune_golden")
}

/// Same off-sweep topology as the commscope goldens: 2 instances x 4 ranks
/// + WL master = 9 ranks.
fn topo() -> Topology {
    Topology::new(2, 4)
}

fn check_golden(name: &str, text: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, text).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read golden {name}: {e} (run with BLESS=1 to create)"));
    assert_eq!(
        text, want,
        "{name}: output drifted from golden (run with BLESS=1 after intentional changes)"
    );
}

fn fig4_profile(exec: ExecPolicy) -> Json {
    let obs = fig4_spin_observed(&topo(), SpinVariant::DirectiveMpi2, STEPS, exec);
    let nranks = obs.final_times.len();
    let analysis = analyze(&obs.trace, nranks, &obs.final_times);
    let doc = profile_json(
        "fig4",
        &[("steps".to_string(), STEPS as i64)],
        &analysis,
        &obs.metrics,
    );
    assert!(validate_profile(&doc).is_empty());
    doc
}

#[test]
fn fig4_profile_to_overlay_matches_golden() {
    let profile = fig4_profile(ExecPolicy::threads());
    let overlay = tune(&profile, &TuneOptions::default()).expect("tune fig4 profile");

    // The WL→privileged scatter (site 11, 4 pieces of 24B per receiver per
    // step at this topology) must coalesce; the privileged→worker
    // forwarding (site 12, one piece per receiver per step) must not.
    assert_eq!(
        overlay.coalesce_batch_for(11),
        Some(4),
        "site 11 coalesces at the per-receiver piece count"
    );
    use commint::Decision;
    assert_eq!(
        overlay.decision_for(12).map(|d| d.decision),
        Some(Decision::Keep),
        "site 12 has nothing to batch"
    );

    let rendered = format!("{}\n", overlay_to_json(&overlay).render());
    check_golden("fig4.overlay.json", &rendered);

    // The committed fixture round-trips through the schema gate.
    let back = overlay_from_json(&Json::parse(&rendered).unwrap()).unwrap();
    assert_eq!(back, overlay);

    // Profiles (and therefore overlays) are engine-invariant.
    let ncpu = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    for workers in [1usize, ncpu] {
        let p = fig4_profile(ExecPolicy::bounded(workers));
        let ov = tune(&p, &TuneOptions::default()).unwrap();
        assert_eq!(ov, overlay, "overlay differs under bounded({workers})");
    }
}

#[test]
fn stale_overlay_rejected_with_exit_3() {
    let dir = std::env::temp_dir().join(format!("commtune_stale_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // A current-schema overlay validates cleanly (exit 0).
    let profile = fig4_profile(ExecPolicy::threads());
    let overlay = tune(&profile, &TuneOptions::default()).unwrap();
    let good = dir.join("good.overlay.json");
    std::fs::write(&good, overlay_to_json(&overlay).render()).unwrap();
    assert_eq!(
        commtune::cli_main(&["--validate".into(), good.display().to_string()]),
        0
    );

    // Tamper: bump the recorded schema — the gate must refuse with exit 3.
    let mut doc = overlay_to_json(&overlay);
    if let Json::Obj(fields) = &mut doc {
        for (k, v) in fields.iter_mut() {
            if k == "schema" {
                *v = Json::Int(commint::OVERLAY_SCHEMA + 1);
            }
        }
    }
    let stale = dir.join("stale.overlay.json");
    std::fs::write(&stale, doc.render()).unwrap();
    assert_eq!(
        commtune::cli_main(&["--validate".into(), stale.display().to_string()]),
        3,
        "stale-schema overlay must exit 3"
    );

    // Unparseable input is a plain input error (exit 2), not a schema gate.
    let junk = dir.join("junk.overlay.json");
    std::fs::write(&junk, "not json").unwrap();
    assert_eq!(
        commtune::cli_main(&["--validate".into(), junk.display().to_string()]),
        2
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tuned_fig4_beats_untuned_with_identical_physics() {
    let profile = fig4_profile(ExecPolicy::threads());
    let overlay = tune(&profile, &TuneOptions::default()).unwrap();

    let base = fig4_spin_tuned(
        &topo(),
        SpinVariant::DirectiveMpi2,
        STEPS,
        ExecPolicy::threads(),
        None,
    );
    let tuned = fig4_spin_tuned(
        &topo(),
        SpinVariant::DirectiveMpi2,
        STEPS,
        ExecPolicy::threads(),
        Some(&overlay),
    );
    assert!(base.correct, "baseline payloads verified");
    assert!(
        tuned.correct,
        "tuned payloads verified (bit-identical spins)"
    );
    assert!(
        tuned.time < base.time,
        "coalescing must improve the directive run ({} vs {} ns/step)",
        tuned.time.as_nanos(),
        base.time.as_nanos()
    );
    assert!(
        tuned.stats.packed_bytes > 0,
        "the coalescing path counts packed bytes"
    );
    assert!(
        tuned.stats.sends < base.stats.sends,
        "batched sends shrink the send count ({} vs {})",
        tuned.stats.sends,
        base.stats.sends
    );

    // Engine invariance of the tuned run itself.
    let ncpu = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    for workers in [1usize, ncpu] {
        let t = fig4_spin_tuned(
            &topo(),
            SpinVariant::DirectiveMpi2,
            STEPS,
            ExecPolicy::bounded(workers),
            Some(&overlay),
        );
        assert!(t.correct);
        assert_eq!(
            t.time, tuned.time,
            "tuned virtual time differs under bounded({workers})"
        );
    }
}
