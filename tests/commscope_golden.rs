//! Golden-file tests for the commscope exporters: the Chrome trace and the
//! profile JSON for each figure workload match the committed goldens
//! byte-for-byte, and both artifacts are byte-identical across execution
//! engines (thread-per-rank vs bounded at several widths) — the exports are
//! pure functions of virtual time.
//!
//! Regenerate goldens after an intentional output change with
//! `BLESS=1 cargo test -p integration --test commscope_golden`.

use std::path::PathBuf;

use commscope::{analyze, chrome_trace, profile_json, validate_profile, Json};
use netsim::ExecPolicy;
use wl_lsms::{
    fig3_single_atom_observed, fig4_spin_observed, fig5_overlap_observed, AtomCommVariant,
    AtomSizes, CoreStateParams, Observed, SpinVariant, Topology,
};

const STEPS: usize = 2;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/scope_golden")
}

/// A small off-sweep topology (2 instances x 4 ranks + WL master = 9 ranks)
/// keeps the goldens a few kilobytes while exercising every event kind.
fn topo() -> Topology {
    Topology::new(2, 4)
}

fn observe(fig: &str, exec: ExecPolicy) -> Observed {
    match fig {
        "fig3" => fig3_single_atom_observed(
            &topo(),
            AtomCommVariant::DirectiveMpi2,
            AtomSizes::default(),
            exec,
        ),
        "fig4" => fig4_spin_observed(&topo(), SpinVariant::DirectiveMpi2, STEPS, exec),
        "fig5" => fig5_overlap_observed(
            &topo(),
            true,
            CoreStateParams::default().gpu(),
            AtomSizes::default(),
            STEPS,
            exec,
        ),
        other => panic!("unknown figure {other}"),
    }
}

/// Render both exports for one engine; the profile must self-validate.
fn exports(fig: &str, exec: ExecPolicy) -> (String, String) {
    let obs = observe(fig, exec);
    let nranks = obs.final_times.len();
    let trace = chrome_trace(&obs.trace, nranks);
    let analysis = analyze(&obs.trace, nranks, &obs.final_times);
    let doc = profile_json(
        fig,
        &[("steps".to_string(), STEPS as i64)],
        &analysis,
        &obs.metrics,
    );
    let problems = validate_profile(&doc);
    assert!(problems.is_empty(), "{fig}: invalid profile: {problems:?}");
    (trace, doc.render())
}

fn check_golden(name: &str, text: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, text).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read golden {name}: {e} (run with BLESS=1 to create)"));
    assert_eq!(
        text, want,
        "{name}: export drifted from golden (run with BLESS=1 after intentional changes)"
    );
}

fn check_figure(fig: &str) {
    let (trace, profile) = exports(fig, ExecPolicy::threads());

    // The Chrome trace is well-formed JSON with a traceEvents array.
    let doc = Json::parse(&trace).unwrap_or_else(|e| panic!("{fig}: trace unparsable: {e}"));
    assert!(
        doc.get("traceEvents").and_then(Json::as_arr).is_some(),
        "{fig}: no traceEvents array"
    );

    // Engine invariance: bounded at width 1 and at the host's width must
    // reproduce the thread-per-rank exports byte-for-byte.
    let ncpu = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    for workers in [1usize, ncpu] {
        let (t, p) = exports(fig, ExecPolicy::bounded(workers));
        assert_eq!(trace, t, "{fig}: trace differs under bounded({workers})");
        assert_eq!(
            profile, p,
            "{fig}: profile differs under bounded({workers})"
        );
    }

    check_golden(&format!("{fig}.trace.json"), &trace);
    check_golden(&format!("{fig}.profile.json"), &profile);
}

#[test]
fn fig3_exports_match_golden_and_engines_agree() {
    check_figure("fig3");
}

#[test]
fn fig4_exports_match_golden_and_engines_agree() {
    check_figure("fig4");
}

#[test]
fn fig5_exports_match_golden_and_engines_agree() {
    check_figure("fig5");
}
