//! Engine equivalence: every virtual quantity — makespans, per-step times,
//! operation counters — must be bit-identical between the thread-per-rank
//! engine and the bounded scheduler at any worker count. Only wall time may
//! differ; completion times are computed from virtual clocks alone, so the
//! execution engine is unobservable in the results.

use netsim::ExecPolicy;
use wl_lsms::{
    fig3_single_atom_exec, fig4_spin_exec, fig5_overlap_exec, AtomCommVariant, AtomSizes,
    CoreStateParams, Measurement, SpinVariant, Topology,
};

/// The deterministic face of a measurement: virtual time plus the
/// engine-independent operation counters. Physical counters (unexpected
/// -queue depth, matcher scan steps, lock counts) legitimately vary with
/// wall-clock interleaving and are excluded.
fn det(m: &Measurement) -> (u64, bool, [usize; 14]) {
    let s = &m.stats;
    (
        m.time.as_nanos(),
        m.correct,
        [
            s.sends,
            s.recvs,
            s.bytes_sent,
            s.waits,
            s.waitalls,
            s.puts,
            s.bytes_put,
            s.gets,
            s.barriers,
            s.quiets,
            s.packed_bytes,
            s.datatype_commits,
            s.race_checks,
            s.conflicts_found,
        ],
    )
}

fn engines() -> Vec<(&'static str, ExecPolicy)> {
    vec![
        ("threads", ExecPolicy::threads()),
        ("bounded(1)", ExecPolicy::bounded(1)),
        ("bounded(2)", ExecPolicy::bounded(2)),
        ("bounded(auto)", ExecPolicy::bounded(0)),
    ]
}

#[test]
fn fig4_identical_across_engines_at_paper_counts() {
    for m in [2usize, 5] {
        let topo = Topology::paper(m);
        for variant in [
            SpinVariant::Original,
            SpinVariant::OriginalWaitall,
            SpinVariant::DirectiveMpi2,
            SpinVariant::DirectiveShmem,
        ] {
            let reference = det(&fig4_spin_exec(&topo, variant, 2, ExecPolicy::threads()));
            assert!(reference.1, "{variant:?} failed validation at m={m}");
            for (name, exec) in engines() {
                let got = det(&fig4_spin_exec(&topo, variant, 2, exec));
                assert_eq!(
                    reference, got,
                    "engine {name} diverged for {variant:?} at m={m}"
                );
            }
        }
    }
}

#[test]
fn fig3_identical_across_engines() {
    let topo = Topology::paper(3);
    for variant in [
        AtomCommVariant::Original,
        AtomCommVariant::DirectiveMpi2,
        AtomCommVariant::DirectiveShmem,
    ] {
        let reference = det(&fig3_single_atom_exec(
            &topo,
            variant,
            AtomSizes::default(),
            ExecPolicy::threads(),
        ));
        assert!(reference.1, "{variant:?} failed validation");
        for (name, exec) in engines() {
            let got = det(&fig3_single_atom_exec(
                &topo,
                variant,
                AtomSizes::default(),
                exec,
            ));
            assert_eq!(reference, got, "engine {name} diverged for {variant:?}");
        }
    }
}

#[test]
fn fig5_identical_across_engines() {
    let topo = Topology::paper(2);
    let cparams = CoreStateParams::default().gpu();
    for directive in [false, true] {
        let reference = det(&fig5_overlap_exec(
            &topo,
            directive,
            cparams,
            AtomSizes::default(),
            2,
            ExecPolicy::threads(),
        ));
        for (name, exec) in engines() {
            let got = det(&fig5_overlap_exec(
                &topo,
                directive,
                cparams,
                AtomSizes::default(),
                2,
                exec,
            ));
            assert_eq!(
                reference, got,
                "engine {name} diverged for directive={directive}"
            );
        }
    }
}

#[test]
fn bounded_engine_runs_2048_ranks() {
    // The scale-out smoke: a paper-shaped 2049-rank topology must complete
    // under the bounded engine with small stacks — the configuration the
    // fig_scale sweep uses past the paper's 337-process ceiling.
    let topo = Topology::paper(128);
    assert_eq!(topo.total_ranks(), 2049);
    let exec = ExecPolicy::bounded(0).with_stack_size(256 << 10);
    let meas = fig4_spin_exec(&topo, SpinVariant::OriginalWaitall, 1, exec);
    assert!(meas.correct, "2049-rank spin validation failed");
    assert!(meas.time.as_nanos() > 0);
}
