//! Property tests: `commprove`'s quantified verdicts agree with the
//! concrete sweep. For randomly generated regions drawn from the
//! affine-congruence class (shifted rings, guarded offsets, parity and
//! stripe gates, boundary selectors) — with occasional deliberately
//! ineligible shapes mixed in — the certificate's `predict(N)` must equal
//! the findings `lint_region_at` actually fires, at every N in the base
//! sweep AND at adversarial counts straddling the case-split threshold,
//! the checked window's edges, and far beyond it.

use std::collections::HashMap;

use commint::buffer::{BufMeta, ElemKind};
use commint::clause::ClauseSet;
use commint::diag::lint_region_at;
use commint::dir::{P2pSpec, ParamsSpec};
use commint::expr::RankExpr;
use commlint::RankRange;
use commprove::cert::Finding;
use commprove::{finding_of, prove_regions};
use mpisim::dtype::BasicType;
use proptest::prelude::*;

fn buf(name: &str, len: usize, addr_lo: usize) -> BufMeta {
    BufMeta {
        name: name.to_string(),
        elem: ElemKind::Prim(BasicType::F64),
        len,
        addr: (addr_lo, addr_lo + len * BasicType::F64.size()),
    }
}

fn clauses(
    sender: Option<RankExpr>,
    receiver: Option<RankExpr>,
    sendwhen: Option<commint::expr::CondExpr>,
    receivewhen: Option<commint::expr::CondExpr>,
    count: Option<RankExpr>,
) -> ClauseSet {
    ClauseSet {
        sender,
        receiver,
        sendwhen,
        receivewhen,
        count,
        target: None,
        place_sync: None,
        max_comm_iter: None,
    }
}

/// Clause sets inside the decidable class, parameterized to exercise
/// different periods and boundary widths.
fn eligible_clauses() -> impl Strategy<Value = ClauseSet> {
    prop_oneof![
        // Cyclic shift by c (clean ring for c coprime-ish with N, self-send
        // degeneracies otherwise — both fine, both decidable).
        (1i64..=3).prop_map(|c| {
            clauses(
                Some(
                    (RankExpr::rank() - RankExpr::lit(c) + RankExpr::nranks()) % RankExpr::nranks(),
                ),
                Some((RankExpr::rank() + RankExpr::lit(c)) % RankExpr::nranks()),
                None,
                None,
                Some(RankExpr::lit(8)),
            )
        }),
        // Guarded linear offset: interior ranks exchange with rank +/- c.
        (1i64..=2, 4i64..=12).prop_map(|(c, k)| {
            clauses(
                Some(RankExpr::rank() - RankExpr::lit(c)),
                Some(RankExpr::rank() + RankExpr::lit(c)),
                Some(RankExpr::rank().lt(RankExpr::nranks() - RankExpr::lit(c))),
                Some(RankExpr::rank().ge(RankExpr::lit(c))),
                Some(RankExpr::lit(k)),
            )
        }),
        // Fixed pair gated on a congruence of nprocs: fires only at some
        // residues of N, forcing PresentCongruent claims.
        (2i64..=3, 0i64..=1).prop_map(|(m, r)| {
            clauses(
                Some(RankExpr::lit(0)),
                Some(RankExpr::lit(1)),
                Some(RankExpr::rank().eq(RankExpr::lit(0))),
                Some(
                    RankExpr::rank()
                        .eq(RankExpr::lit(1))
                        .and((RankExpr::nranks() % RankExpr::lit(m)).eq(RankExpr::lit(r))),
                ),
                Some(RankExpr::lit(4)),
            )
        }),
        // Stripe gates: only ranks in one residue class participate.
        (2i64..=4, 1i64..=2).prop_map(|(k, c)| {
            clauses(
                Some(
                    (RankExpr::rank() - RankExpr::lit(c) + RankExpr::nranks()) % RankExpr::nranks(),
                ),
                Some((RankExpr::rank() + RankExpr::lit(c)) % RankExpr::nranks()),
                Some((RankExpr::rank() % RankExpr::lit(k)).eq(RankExpr::lit(0))),
                Some((RankExpr::rank() % RankExpr::lit(k)).eq(RankExpr::lit(c % k))),
                Some(RankExpr::lit(8)),
            )
        }),
        // Boundary selector: the top rank reports to rank 0.
        (1i64..=2).prop_map(|c| {
            clauses(
                Some(RankExpr::nranks() - RankExpr::lit(c)),
                Some(RankExpr::lit(0)),
                Some(RankExpr::rank().eq(RankExpr::nranks() - RankExpr::lit(c))),
                Some(RankExpr::rank().eq(RankExpr::lit(0))),
                Some(RankExpr::lit(8)),
            )
        }),
        // The ISSUE's counterexample shape: wrap modulo nprocs-1.
        Just(clauses(
            Some((RankExpr::rank() - RankExpr::lit(1) + RankExpr::nranks()) % RankExpr::nranks()),
            Some((RankExpr::rank() + RankExpr::lit(1)) % (RankExpr::nranks() - RankExpr::lit(1))),
            None,
            None,
            Some(RankExpr::lit(8)),
        )),
    ]
}

/// Shapes the normalizer must refuse: the prover should degrade to the
/// concrete sweep, and within the sweep window predictions still agree.
fn ineligible_clauses() -> impl Strategy<Value = ClauseSet> {
    prop_oneof![
        // rank*rank is non-affine.
        Just(clauses(
            Some(RankExpr::rank() * RankExpr::rank()),
            Some(RankExpr::rank()),
            None,
            None,
            Some(RankExpr::lit(4)),
        )),
        // Unbound variable.
        Just(clauses(
            Some(RankExpr::rank() - RankExpr::var("k")),
            Some(RankExpr::rank() + RankExpr::var("k")),
            None,
            None,
            Some(RankExpr::lit(4)),
        )),
        // Opaque closure.
        Just(clauses(
            Some(RankExpr::opaque("prev(rank)", |env| {
                (env.rank - 1).rem_euclid(env.nranks)
            })),
            Some(RankExpr::opaque("next(rank)", |env| {
                (env.rank + 1).rem_euclid(env.nranks)
            })),
            None,
            None,
            Some(RankExpr::lit(4)),
        )),
    ]
}

fn site_strategy() -> impl Strategy<Value = P2pSpec> {
    (
        // Roughly 4:1 eligible-to-ineligible mix (the shim's prop_oneof
        // has no weight syntax).
        prop_oneof![
            eligible_clauses(),
            eligible_clauses(),
            eligible_clauses(),
            eligible_clauses(),
            ineligible_clauses(),
        ],
        // Receive buffer length 4..16: small enough that rank-dependent
        // or mismatched counts trip CI004 at some shapes.
        4usize..16,
        any::<bool>(),
        0u32..4,
    )
        .prop_map(|(clauses, rlen, has_overlap_body, site)| P2pSpec {
            clauses,
            sbuf: vec![buf("s", 16, 0)],
            rbuf: vec![buf("r", rlen, 0x1000)],
            has_overlap_body,
            site,
            spans: Default::default(),
        })
}

fn region_strategy() -> impl Strategy<Value = ParamsSpec> {
    proptest::collection::vec(site_strategy(), 1..3).prop_map(|mut body| {
        // Distinct site ids, as the parser guarantees.
        for (i, p) in body.iter_mut().enumerate() {
            p.site = i as u32;
        }
        ParamsSpec {
            clauses: clauses(None, None, None, None, None),
            body,
            spans: Default::default(),
        }
    })
}

/// The concrete findings at rank count `n`, in certificate form.
fn concrete_at(spec: &ParamsSpec, n: usize, vars: &HashMap<String, i64>) -> Vec<Finding> {
    let mut fired: Vec<Finding> = lint_region_at(0, spec, n, vars)
        .iter()
        .map(finding_of)
        .collect();
    fired.sort();
    fired.dedup();
    fired
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn predictions_match_concrete_sweep(spec in region_strategy()) {
        let ranks = RankRange { min: 2, max: 16 };
        let vars = HashMap::new();
        let (_diags, cert) = prove_regions("prop", std::slice::from_ref(&spec), ranks, &vars);
        prop_assert_eq!(cert.regions.len(), 1);
        let region = &cert.regions[0];

        // Adversarial counts around every case-split edge, plus counts far
        // outside anything the prover concretely checked.
        let l = region.lcm.max(1);
        let mut ns: Vec<usize> = (ranks.min..=64).collect();
        for n in [
            region.threshold.saturating_sub(1),
            region.threshold,
            region.threshold + 1,
            region.checked_max.saturating_sub(1),
            region.checked_max,
            region.checked_max + 1,
            region.checked_max + l,
            region.checked_max + 2 * l + 1,
            97,
            128,
        ] {
            ns.push(n);
        }
        ns.sort_unstable();
        ns.dedup();

        for n in ns {
            if n < ranks.min {
                continue;
            }
            let predicted = region.predict(n);
            if region.eligible {
                prop_assert!(
                    predicted.is_some(),
                    "eligible region makes no statement at N={}", n
                );
            } else if predicted.is_none() {
                // Ineligible regions only speak about the swept window.
                prop_assert!(n > region.checked_max);
                continue;
            }
            let predicted = predicted.unwrap();
            let actual = concrete_at(&spec, n, &vars);
            prop_assert_eq!(
                &predicted, &actual,
                "N={}: certificate predicts {:?}, sweep fired {:?} \
                 (eligible={}, L={}, B={}, threshold={}, checked_max={})",
                n, predicted, actual,
                region.eligible, region.lcm, region.boundary,
                region.threshold, region.checked_max
            );
        }
    }
}
