//! Integration: WL-LSMS end-to-end — every communication variant moves
//! identical data and computes identical physics; the performance ordering
//! matches the paper's Figure 4.

use wl_lsms::{
    fig3_single_atom, fig4_spin, run_full_app, AtomCommVariant, AtomSizes, SpinVariant, Topology,
};

fn sizes() -> AtomSizes {
    AtomSizes { jmt: 32, numc: 5 }
}

#[test]
fn atom_distribution_correct_on_all_variants_and_shapes() {
    for (m, n) in [(1usize, 2usize), (2, 3), (3, 5)] {
        let topo = Topology::new(m, n);
        for v in [
            AtomCommVariant::Original,
            AtomCommVariant::DirectiveMpi2,
            AtomCommVariant::DirectiveShmem,
        ] {
            let meas = fig3_single_atom(&topo, v, sizes());
            assert!(meas.correct, "variant {v:?} failed at {m}x{n}");
        }
    }
}

#[test]
fn atom_distribution_original_pays_pack_copies_directive_does_not() {
    let topo = Topology::new(2, 3);
    let orig = fig3_single_atom(&topo, AtomCommVariant::Original, sizes());
    let dir = fig3_single_atom(&topo, AtomCommVariant::DirectiveMpi2, sizes());
    assert!(
        orig.stats.packed_bytes > dir.stats.packed_bytes,
        "original {} packed bytes vs directive {}",
        orig.stats.packed_bytes,
        dir.stats.packed_bytes
    );
    assert!(
        dir.stats.datatype_commits > 0,
        "directive commits MPI structs"
    );
}

#[test]
fn spin_comm_speedup_ordering_matches_figure4() {
    let topo = Topology::new(3, 8); // 25 ranks keeps the test quick
    let steps = 3;
    let orig = fig4_spin(&topo, SpinVariant::Original, steps);
    let wall = fig4_spin(&topo, SpinVariant::OriginalWaitall, steps);
    let mpi = fig4_spin(&topo, SpinVariant::DirectiveMpi2, steps);
    let shm = fig4_spin(&topo, SpinVariant::DirectiveShmem, steps);
    assert!(orig.correct && wall.correct && mpi.correct && shm.correct);

    // Paper ordering: original > waitall-mod >= directive MPI > SHMEM.
    assert!(wall.time < orig.time);
    assert!(mpi.time <= wall.time);
    assert!(shm.time < mpi.time);

    // Magnitudes: substantial, not marginal.
    let x = |a: &wl_lsms::Measurement, b: &wl_lsms::Measurement| {
        a.time.as_nanos() as f64 / b.time.as_nanos() as f64
    };
    assert!(
        x(&orig, &mpi) > 2.0,
        "MPI directive speedup {:.2}",
        x(&orig, &mpi)
    );
    assert!(
        x(&orig, &shm) > 8.0,
        "SHMEM directive speedup {:.2}",
        x(&orig, &shm)
    );
}

#[test]
fn spin_comm_times_grow_with_scale() {
    // The Fig. 4 x-axis behaviour: more LSMS instances, more WL-side
    // serialization, longer per-step times.
    let small = fig4_spin(&Topology::new(2, 8), SpinVariant::Original, 2);
    let large = fig4_spin(&Topology::new(6, 8), SpinVariant::Original, 2);
    assert!(large.time > small.time);
}

#[test]
fn full_app_identical_physics_and_expected_ordering() {
    let topo = Topology::new(2, 4);
    let steps = 6;
    let base = run_full_app(&topo, SpinVariant::Original, sizes(), steps);
    assert_eq!(base.energies.len(), steps);
    assert!(base.energies.iter().all(|e| e.is_finite()));

    let mut times = vec![(SpinVariant::Original, base.time)];
    for v in [
        SpinVariant::OriginalWaitall,
        SpinVariant::DirectiveMpi2,
        SpinVariant::DirectiveShmem,
    ] {
        let r = run_full_app(&topo, v, sizes(), steps);
        assert_eq!(base.energies, r.energies, "{v:?} changed the physics");
        assert_eq!(base.wl_stages, r.wl_stages);
        times.push((v, r.time));
    }
    // Communication variant changes time, not results.
    let t = |v: SpinVariant| times.iter().find(|(x, _)| *x == v).expect("present").1;
    assert!(t(SpinVariant::DirectiveShmem) < t(SpinVariant::Original));
}

#[test]
fn wang_landau_makes_progress() {
    let topo = Topology::new(2, 4);
    let r = run_full_app(&topo, SpinVariant::DirectiveMpi2, sizes(), 40);
    // The walker visits multiple energies (sampling actually happens).
    let distinct: std::collections::BTreeSet<i64> =
        r.energies.iter().map(|e| (e * 1e6) as i64).collect();
    assert!(
        distinct.len() > 3,
        "only {} distinct energies",
        distinct.len()
    );
}
