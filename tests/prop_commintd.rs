//! Property tests for the `commintd` incremental engine: under random
//! edit sequences the daemon's responses must stay byte-identical to the
//! batch CLIs, touching one region must never invalidate disjoint
//! regions, and concurrent clients sharing one engine must all receive
//! the same artifacts.

use std::sync::Arc;

use commintd::Engine;
use commlint::json::render_json;
use commlint::{lint_source, LintOptions};
use commprove::prove_source;
use pragma_front::SymbolTable;
use proptest::prelude::*;

/// Number of buffers declared in every generated spec.
const BUFS: usize = 4;

/// Render a spec with one region per entry of `counts`. Region `i` is
/// structurally distinct from every other region regardless of the count
/// values (different shift, different buffer pairing), so two regions
/// never collide on a structural hash and `dirty` assertions are exact.
fn spec_src(counts: &[u32], fmt_lines: usize) -> String {
    let mut src = String::new();
    for _ in 0..fmt_lines {
        src.push_str("// formatting-only touch\n");
    }
    for b in 0..BUFS {
        src.push_str(&format!("// @decl b{b}: double[64]\n"));
    }
    src.push_str("// @ranks 2..=10\n");
    for (i, c) in counts.iter().enumerate() {
        let shift = i + 1;
        let sbuf = i % BUFS;
        let rbuf = (i + 1) % BUFS;
        src.push_str(&format!(
            "#pragma comm_parameters sender((rank-{shift}+nprocs)%nprocs) \
             receiver((rank+{shift})%nprocs)\n{{\n  #pragma comm_p2p \
             sbuf(b{sbuf}) rbuf(b{rbuf}) count({c})\n  {{ }}\n}}\n"
        ));
    }
    src
}

fn batch_lint_json(file: &str, src: &str) -> String {
    let report = lint_source(src, &SymbolTable::new(), &LintOptions::default()).expect("lints");
    render_json(&[(file.to_string(), report)])
}

fn batch_prove(file: &str, src: &str) -> (String, String) {
    let rep =
        prove_source(file, src, &SymbolTable::new(), &LintOptions::default()).expect("proves");
    (
        render_json(&[(file.to_string(), rep.report.clone())]),
        rep.certificate.to_json(),
    )
}

/// One step of an edit sequence.
#[derive(Clone, Debug)]
enum Edit {
    /// Change region `k`'s count clause (a semantic, single-region edit).
    Count(usize, u32),
    /// Prepend a comment line (formatting-only; every hash survives).
    Fmt,
}

fn edits(regions: usize) -> impl Strategy<Value = Vec<Edit>> {
    proptest::collection::vec(
        prop_oneof![
            (0..regions, 1u32..=64).prop_map(|(k, c)| Edit::Count(k, c)),
            (0..regions, 1u32..=64).prop_map(|(k, c)| Edit::Count(k, c)),
            (0..regions, 1u32..=64).prop_map(|(k, c)| Edit::Count(k, c)),
            Just(Edit::Fmt),
        ],
        1..=5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// After every step of a random edit sequence, warm daemon output ==
    /// cold batch output, for both verbs, byte for byte.
    #[test]
    fn random_edit_sequences_stay_byte_identical(
        mut counts in proptest::collection::vec(1u32..=64, 2..=4),
        seq in edits(4),
    ) {
        let engine = Engine::new(SymbolTable::new(), LintOptions::default(), None);
        let mut fmt_lines = 0usize;
        let check = |counts: &[u32], fmt_lines: usize| {
            let src = spec_src(counts, fmt_lines);
            let a = engine.analyze("p.comm", &src).unwrap();
            prop_assert_eq!(&a.report_json, &batch_lint_json("p.comm", &src));
            let p = engine.prove("p.comm", &src).unwrap();
            let (want_report, want_cert) = batch_prove("p.comm", &src);
            prop_assert_eq!(&p.report_json, &want_report);
            prop_assert_eq!(&p.cert_json, &want_cert);
            Ok(())
        };
        check(&counts, fmt_lines)?;
        for e in seq {
            match e {
                Edit::Count(k, c) => {
                    let k = k % counts.len();
                    counts[k] = c;
                }
                Edit::Fmt => fmt_lines += 1,
            }
            check(&counts, fmt_lines)?;
        }
    }

    /// A count edit to region `k` dirties exactly `{k}`: every disjoint
    /// region's artifacts are reused, never invalidated.
    #[test]
    fn touching_one_region_never_invalidates_disjoint_regions(
        mut counts in proptest::collection::vec(1u32..=64, 2..=4),
        k in 0usize..4,
        new_count in 1u32..=64,
    ) {
        let k = k % counts.len();
        let engine = Engine::new(SymbolTable::new(), LintOptions::default(), None);
        engine.analyze("p.comm", &spec_src(&counts, 0)).unwrap();
        // Force a real change: a replay of identical bytes dirties nothing.
        counts[k] = if new_count == counts[k] {
            (new_count % 64) + 1
        } else {
            new_count
        };
        let warm = engine.analyze("p.comm", &spec_src(&counts, 0)).unwrap();
        prop_assert_eq!(&warm.dirty, &vec![k]);
        prop_assert_eq!(warm.reused, counts.len() - 1);
        prop_assert!(warm.evicted > 0, "the superseded cohort must be evicted");
        // And a formatting-only touch after the edit dirties nothing at all.
        let touched = engine.analyze("p.comm", &spec_src(&counts, 1)).unwrap();
        prop_assert!(touched.dirty.is_empty());
        prop_assert_eq!(touched.reused, counts.len());
    }

    /// Concurrent clients racing both verbs against one engine all get
    /// responses byte-identical to the batch CLIs — the single-flight
    /// store never hands out a partially built or divergent artifact.
    #[test]
    fn concurrent_clients_get_identical_artifacts(
        counts in proptest::collection::vec(1u32..=64, 2..=3),
    ) {
        let src = spec_src(&counts, 0);
        let want_lint = batch_lint_json("p.comm", &src);
        let (want_report, want_cert) = batch_prove("p.comm", &src);
        let engine = Arc::new(Engine::new(
            SymbolTable::new(),
            LintOptions::default(),
            None,
        ));
        let outcomes: Vec<(String, String, String)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let engine = Arc::clone(&engine);
                    let src = src.clone();
                    scope.spawn(move || {
                        let a = engine.analyze("p.comm", &src).unwrap();
                        let p = engine.prove("p.comm", &src).unwrap();
                        (a.report_json, p.report_json, p.cert_json)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (lint, report, cert) in &outcomes {
            prop_assert_eq!(lint, &want_lint);
            prop_assert_eq!(report, &want_report);
            prop_assert_eq!(cert, &want_cert);
        }
    }
}
