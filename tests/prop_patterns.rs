//! Property tests: the pattern library delivers correct data for random
//! shapes and the analyses classify what was executed.

use commint::analysis::{classify, resolve_graph, Pattern};
use commint::patterns;
use commint::prelude::*;
use integration::with_world_session;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn cyclic_shift_rotates_for_random_shapes(
        n in 2usize..10,
        k in 1i64..9,
        base in any::<i32>(),
    ) {
        let res = with_world_session(n, move |s| {
            let me = s.rank() as i64;
            let send = [i64::from(base) + me];
            let mut recv = [i64::MIN];
            patterns::cyclic_shift(s, Target::Mpi2Side, k, &send, &mut recv).unwrap();
            recv[0]
        });
        let kk = (k as usize) % n;
        for (r, &v) in res.per_rank.iter().enumerate() {
            let expect_src = (r + n - kk) % n;
            prop_assert_eq!(v, i64::from(base) + expect_src as i64);
        }
    }

    #[test]
    fn cyclic_shift_classification(n in 2usize..12, k in 1i64..11) {
        prop_assume!(!(k as usize).is_multiple_of(n));
        let res = with_world_session(n, move |s| {
            let send = [0i64];
            let mut recv = [0i64];
            patterns::cyclic_shift(s, Target::Mpi2Side, k, &send, &mut recv).unwrap();
            s.program().to_vec()
        });
        let program = &res.per_rank[0];
        let g = resolve_graph(
            &program[0].body[0],
            Some(&program[0].clauses),
            n,
            &Default::default(),
        );
        prop_assert!(g.fully_matched());
        prop_assert_eq!(classify(&g, n), Pattern::CyclicShift { k: (k as usize) % n });
    }

    #[test]
    fn halo_ghosts_correct_for_random_widths(
        n in 2usize..8,
        width in 1usize..5,
    ) {
        let res = with_world_session(n, move |s| {
            let me = s.rank() as i64;
            let left_edge: Vec<i64> = (0..width as i64).map(|i| me * 100 + i).collect();
            let right_edge: Vec<i64> = (0..width as i64).map(|i| me * 100 + 50 + i).collect();
            let mut lg = vec![-1i64; width];
            let mut rg = vec![-1i64; width];
            patterns::halo_1d(s, Target::Mpi2Side, &left_edge, &right_edge, &mut lg, &mut rg)
                .unwrap();
            (lg, rg)
        });
        for (r, (lg, rg)) in res.per_rank.iter().enumerate() {
            if r > 0 {
                prop_assert_eq!(lg[0], (r as i64 - 1) * 100 + 50);
            } else {
                prop_assert!(lg.iter().all(|&v| v == -1));
            }
            if r < n - 1 {
                prop_assert_eq!(rg[0], (r as i64 + 1) * 100);
            } else {
                prop_assert!(rg.iter().all(|&v| v == -1));
            }
        }
    }

    #[test]
    fn fan_out_random_roots(n in 2usize..8, root_pick in any::<u8>()) {
        let root = root_pick as usize % n;
        let res = with_world_session(n, move |s| {
            let chunks: Vec<Vec<i64>> = (0..n).map(|d| vec![d as i64 * 7 + 1, d as i64]).collect();
            let mut recv = [0i64; 2];
            patterns::fan_out(s, Target::Mpi2Side, root, &chunks, &mut recv).unwrap();
            recv
        });
        for (r, v) in res.per_rank.iter().enumerate() {
            if r != root {
                prop_assert_eq!(*v, [r as i64 * 7 + 1, r as i64]);
            }
        }
    }

    #[test]
    fn linear_shift_boundaries_for_random_n(n in 2usize..10) {
        let res = with_world_session(n, move |s| {
            let me = s.rank() as i64;
            let send = [me];
            let mut recv = [-7i64];
            patterns::linear_shift(s, Target::Mpi2Side, &send, &mut recv).unwrap();
            recv[0]
        });
        prop_assert_eq!(res.per_rank[0], -7);
        for (r, &v) in res.per_rank.iter().enumerate().skip(1) {
            prop_assert_eq!(v, r as i64 - 1);
        }
    }
}
