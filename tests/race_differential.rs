//! Differential testing of the one-sided race analyses: every generated
//! [`RaceProgram`] is decided twice — statically by `commint::analyze_ops`
//! and dynamically by `netsim`'s shadow-state sanitizer executing the same
//! ops — and the verdict code-sets must agree exactly, under both
//! execution engines.
//!
//! The generator stays inside the fragment where the agreement theorem
//! holds (DESIGN.md §6e): signal waits are all-or-nothing per epoch (a
//! rank either waits for every signalled delivery issued through the
//! current epoch or does not wait at all), every put of an epoch precedes
//! the rank's wait, and barriers align across ranks. Within that fragment
//! the conflict pairs are independent of physical delivery order, so the
//! sanitizer's outcome is deterministic and must equal the static verdict.

use std::collections::BTreeSet;

use commint::race::{analyze_ops, RaceOp, RaceProgram};
use commint::LintCode;
use netsim::{run, ExecPolicy, SanitizeReport, SimConfig};

/// Segment size used by every generated program.
const SEG_BYTES: usize = 64;
/// Programs per corpus sweep (the acceptance floor is 200).
const PROGRAMS: usize = 220;
/// Fixed corpus seed: the sweep is reproducible byte-for-byte.
const SEED: u64 = 0x1CE_B00DA;

// -- deterministic RNG (no external deps) -----------------------------------

/// SplitMix64: tiny, seedable, and good enough to drive a fuzzer.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n`.
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    /// True with probability `num/den`.
    fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next() % den < num
    }
}

// -- program generator -------------------------------------------------------

/// A random 8-byte-aligned interval inside the segment.
fn span(rng: &mut Rng) -> (usize, usize) {
    let len = 8 * (1 + rng.below(2)); // 8 or 16 bytes
    let offset = 8 * rng.below((SEG_BYTES - len) / 8 + 1);
    (offset, len)
}

/// Generate one program in the agreement fragment. `racy` biases the
/// generator toward conflicting intervals (it narrows the offset choices);
/// clean programs are still allowed to come out racy and vice versa — the
/// differential assertion does not depend on the label.
fn gen_program(rng: &mut Rng, racy: bool) -> RaceProgram {
    let nranks = 2 + rng.below(3); // 2..=4
    let epochs = 1 + rng.below(3); // 1..=3
    let mut per_rank: Vec<Vec<RaceOp>> = vec![Vec::new(); nranks];
    // Cumulative signalled deliveries per owner, across epochs.
    let mut sig_total = vec![0usize; nranks];

    for _ in 0..epochs {
        // Phase 1: non-blocking writers (puts, local stores). Generated
        // for every rank before any wait is emitted so wait counts can be
        // all-or-nothing over the epoch's signalled traffic.
        let mut phase1: Vec<Vec<RaceOp>> = vec![Vec::new(); nranks];
        for (rank, ops) in phase1.iter_mut().enumerate() {
            for _ in 0..rng.below(4) {
                let (offset, len) = if racy {
                    (0, 16) // pile every access on the same interval
                } else {
                    span(rng)
                };
                if rng.chance(2, 3) {
                    let mut target = rng.below(nranks);
                    if target == rank {
                        target = (target + 1) % nranks;
                    }
                    let signal = rng.chance(1, 2);
                    if signal {
                        sig_total[target] += 1;
                    }
                    let src_offset = rng.chance(1, 2).then(|| {
                        if racy {
                            32
                        } else {
                            8 * rng.below(SEG_BYTES / 8 - 1)
                        }
                    });
                    ops.push(RaceOp::Put {
                        target,
                        offset,
                        len,
                        src_offset,
                        signal,
                    });
                } else {
                    let offset = if racy { 32 } else { offset };
                    ops.push(RaceOp::LocalWrite { offset, len });
                }
            }
            if rng.chance(1, 2) {
                ops.push(RaceOp::Quiet);
            }
        }
        // Phase 2: optional all-or-nothing wait, then non-blocking readers.
        for (rank, ops) in per_rank.iter_mut().enumerate() {
            ops.append(&mut phase1[rank]);
            // Zero-count waits are rejected by the fabric; a rank with no
            // signalled traffic simply does not wait.
            if sig_total[rank] > 0 && rng.chance(1, 2) {
                ops.push(RaceOp::WaitSignals {
                    count: sig_total[rank],
                });
            }
            for _ in 0..rng.below(3) {
                let (offset, len) = if racy { (0, 16) } else { span(rng) };
                match rng.below(3) {
                    0 => ops.push(RaceOp::LocalRead { offset, len }),
                    1 => ops.push(RaceOp::LocalWrite { offset, len }),
                    _ => {
                        let mut target = rng.below(nranks);
                        if target == rank {
                            target = (target + 1) % nranks;
                        }
                        ops.push(RaceOp::Get {
                            target,
                            offset,
                            len,
                        });
                    }
                }
            }
        }
        for ops in per_rank.iter_mut() {
            ops.push(RaceOp::Barrier);
        }
    }
    RaceProgram {
        per_rank,
        window: None,
    }
}

// -- interpreters ------------------------------------------------------------

/// The static verdict: the set of lint codes `analyze_ops` reports.
fn static_codes(prog: &RaceProgram) -> BTreeSet<&'static str> {
    analyze_ops(prog).iter().map(|f| f.code.code()).collect()
}

/// Execute the program on `netsim` with the sanitizer enabled and return
/// its report. Each [`RaceOp`] maps onto exactly one `RankCtx` call; waits
/// mark their deliveries consumed immediately, which is the convention the
/// op model's folded `waited` counter encodes.
fn sanitize_run(prog: &RaceProgram, exec: ExecPolicy) -> SanitizeReport {
    let nranks = prog.per_rank.len();
    let window = prog.window.unwrap_or(u64::MAX);
    let programs = prog.per_rank.clone();
    let res = run(
        SimConfig::new(nranks).with_exec(exec.with_sanitize()),
        move |ctx| {
            let m = ctx.machine().shmem;
            let group: Vec<usize> = (0..ctx.nranks()).collect();
            let seg = ctx.sym_alloc_windowed(&group, SEG_BYTES, window, &m);
            let mut scratch = [0u8; SEG_BYTES];
            let mut consumed = 0u64;
            for op in &programs[ctx.rank()] {
                match *op {
                    RaceOp::Put {
                        target,
                        offset,
                        len,
                        src_offset,
                        signal,
                    } => {
                        if let Some(src) = src_offset {
                            ctx.put_from(seg, target, offset, src, len, &m, signal);
                        } else {
                            ctx.put(seg, target, offset, &scratch[..len], &m, signal);
                        }
                    }
                    RaceOp::Get {
                        target,
                        offset,
                        len,
                    } => {
                        let mut out = vec![0u8; len];
                        ctx.get(seg, target, offset, &mut out, &m);
                    }
                    RaceOp::LocalRead { offset, len } => {
                        let buf = &mut scratch[..len];
                        ctx.read_local(seg, offset, buf);
                    }
                    RaceOp::LocalWrite { offset, len } => {
                        let data = vec![1u8; len];
                        ctx.write_local(seg, offset, &data);
                    }
                    RaceOp::WaitSignals { count } => {
                        ctx.wait_signals_raw(seg, count);
                        let delta = (count as u64).saturating_sub(consumed);
                        if delta > 0 {
                            ctx.mark_consumed(seg, delta);
                            consumed += delta;
                        }
                    }
                    RaceOp::Quiet => ctx.quiet(&m),
                    RaceOp::Barrier => ctx.barrier(&m),
                }
            }
        },
    );
    res.sanitize.expect("sanitizer enabled")
}

// -- the differential assertions ---------------------------------------------

/// Run the corpus through both halves under one engine and assert the
/// code-sets agree program-by-program. Returns (clean, racy) tallies so
/// the corpus test can assert both populations are represented.
fn sweep(exec: &ExecPolicy) -> (usize, usize) {
    let mut rng = Rng(SEED);
    let (mut clean, mut racy_count) = (0usize, 0usize);
    for i in 0..PROGRAMS {
        let racy = i % 2 == 1;
        let prog = gen_program(&mut rng, racy);
        if std::env::var_os("RACE_DIFF_TRACE").is_some() {
            eprintln!("program {i}: {prog:?}");
        }
        let want = static_codes(&prog);
        let report = sanitize_run(&prog, *exec);
        let got: BTreeSet<&'static str> = report.codes();
        assert_eq!(
            want, got,
            "program {i} (racy={racy}): static verdict != sanitizer outcome\n{prog:?}"
        );
        if want.is_empty() {
            assert_eq!(report.conflicts_found(), 0, "program {i}");
            clean += 1;
        } else {
            assert!(report.conflicts_found() > 0, "program {i}");
            racy_count += 1;
        }
    }
    (clean, racy_count)
}

#[test]
fn corpus_agrees_under_thread_engine() {
    let (clean, racy) = sweep(&ExecPolicy::threads());
    // Both populations must actually be exercised or the test is vacuous.
    assert!(clean >= 20, "only {clean} clean programs in the corpus");
    assert!(racy >= 20, "only {racy} racy programs in the corpus");
}

#[test]
fn corpus_agrees_under_bounded_engine() {
    let (clean, racy) = sweep(&ExecPolicy::bounded(2));
    assert!(clean >= 20, "only {clean} clean programs in the corpus");
    assert!(racy >= 20, "only {racy} racy programs in the corpus");
}

/// The two engines see identical sanitizer totals on the same program:
/// race_checks is program-determined and the conflict count is
/// interleaving-invariant inside the fragment.
#[test]
fn engines_agree_on_sanitizer_totals() {
    let mut rng = Rng(SEED ^ 0xDEAD);
    for i in 0..24 {
        let prog = gen_program(&mut rng, i % 2 == 1);
        let a = sanitize_run(&prog, ExecPolicy::threads());
        let b = sanitize_run(&prog, ExecPolicy::bounded(2));
        assert_eq!(a.race_checks, b.race_checks, "program {i}");
        assert_eq!(a.conflicts_found(), b.conflicts_found(), "program {i}");
        assert_eq!(a.codes(), b.codes(), "program {i}");
    }
}

/// Known-racy and known-clean hand-written programs anchor the generator:
/// the differential harness is only convincing if the classic shapes come
/// out as expected through BOTH halves.
#[test]
fn anchor_programs_classify_as_expected() {
    // Two ranks put into rank 2's window, unordered: CI009.
    let fan_in = RaceProgram {
        per_rank: vec![
            vec![RaceOp::Put {
                target: 2,
                offset: 0,
                len: 16,
                src_offset: None,
                signal: false,
            }],
            vec![RaceOp::Put {
                target: 2,
                offset: 8,
                len: 16,
                src_offset: None,
                signal: false,
            }],
            vec![],
        ],
        window: None,
    };
    // The same fan-in with disjoint intervals: clean.
    let disjoint = RaceProgram {
        per_rank: vec![
            vec![RaceOp::Put {
                target: 2,
                offset: 0,
                len: 8,
                src_offset: None,
                signal: false,
            }],
            vec![RaceOp::Put {
                target: 2,
                offset: 32,
                len: 8,
                src_offset: None,
                signal: false,
            }],
            vec![],
        ],
        window: None,
    };
    // Signalled put, read after the wait: clean. Without the wait: CI012.
    let waited = RaceProgram {
        per_rank: vec![
            vec![RaceOp::Put {
                target: 1,
                offset: 0,
                len: 8,
                src_offset: None,
                signal: true,
            }],
            vec![
                RaceOp::WaitSignals { count: 1 },
                RaceOp::LocalRead { offset: 0, len: 8 },
            ],
        ],
        window: None,
    };
    let unwaited = RaceProgram {
        per_rank: vec![
            vec![RaceOp::Put {
                target: 1,
                offset: 0,
                len: 8,
                src_offset: None,
                signal: true,
            }],
            vec![
                RaceOp::LocalRead { offset: 0, len: 8 },
                RaceOp::WaitSignals { count: 1 },
            ],
        ],
        window: None,
    };
    // Source rewritten before quiet: CI011; after quiet: clean.
    let src_reuse = RaceProgram {
        per_rank: vec![
            vec![
                RaceOp::Put {
                    target: 1,
                    offset: 0,
                    len: 8,
                    src_offset: Some(16),
                    signal: false,
                },
                RaceOp::LocalWrite { offset: 16, len: 8 },
                RaceOp::Quiet,
            ],
            vec![],
        ],
        window: None,
    };
    let src_quieted = RaceProgram {
        per_rank: vec![
            vec![
                RaceOp::Put {
                    target: 1,
                    offset: 0,
                    len: 8,
                    src_offset: Some(16),
                    signal: false,
                },
                RaceOp::Quiet,
                RaceOp::LocalWrite { offset: 16, len: 8 },
            ],
            vec![],
        ],
        window: None,
    };
    let cases: [(&str, &RaceProgram, &[&str]); 6] = [
        ("fan_in", &fan_in, &["CI009"]),
        ("disjoint", &disjoint, &[]),
        ("waited", &waited, &[]),
        ("unwaited", &unwaited, &["CI012"]),
        ("src_reuse", &src_reuse, &["CI011"]),
        ("src_quieted", &src_quieted, &[]),
    ];
    for (name, prog, want) in cases {
        let want: BTreeSet<&str> = want.iter().copied().collect();
        assert_eq!(static_codes(prog), want, "{name}: static");
        for exec in [ExecPolicy::threads(), ExecPolicy::bounded(2)] {
            let got = sanitize_run(prog, exec).codes();
            assert_eq!(got, want, "{name}: sanitizer");
        }
    }
    // The static finding carries the structured detail too.
    let f = &analyze_ops(&fan_in)[0];
    assert_eq!(f.code, LintCode::OverlappingPuts);
    assert_eq!(f.owner, 2);
    assert_eq!(f.ranks, (0, 1));
}
