//! Property tests: cost-model invariants — monotonicity, protocol
//! boundaries, and the match-timing algebra the figures rest on.

use netsim::msg::{match_timing, WireCosts};
use netsim::{CostModel, Time};
use proptest::prelude::*;

fn models() -> Vec<CostModel> {
    vec![
        CostModel::gemini_mpi(),
        CostModel::gemini_shmem(),
        CostModel::hockney(1_000, 2.0),
        CostModel::loggp(1_200, 400, 0.25),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn wire_time_monotone(a in 0usize..1_000_000, b in 0usize..1_000_000) {
        let (lo, hi) = (a.min(b), a.max(b));
        for m in models() {
            prop_assert!(m.wire_time(lo) <= m.wire_time(hi), "{m:?}");
        }
    }

    #[test]
    fn waitall_cost_beats_wait_loop(n in 1usize..512) {
        // The central asymmetry of Fig. 4 must hold for every n on the
        // calibrated MPI model.
        let m = CostModel::gemini_mpi();
        let loop_cost = m.o_wait as u128 * n as u128;
        let all_cost = m.waitall_cost(n).as_nanos() as u128;
        prop_assert!(all_cost < loop_cost, "n={n}: {all_cost} !< {loop_cost}");
    }

    #[test]
    fn eager_match_timing_invariants(
        bytes in 0usize..8192,
        depart in 0u64..1_000_000,
        post in 0u64..1_000_000,
    ) {
        let costs = WireCosts::for_message(&CostModel::gemini_mpi(), bytes);
        prop_assume!(costs.eager);
        let t = match_timing(&costs, bytes, Time(depart), Time(post));
        // Receive completes no earlier than both the post and the wire.
        prop_assert!(t.recv_complete >= Time(post));
        prop_assert!(t.recv_complete >= costs.eager_arrival(Time(depart), bytes).min(t.recv_complete));
        // Eager sends complete at departure.
        prop_assert_eq!(t.send_complete, Time(depart));
        // Unexpected iff virtual arrival strictly precedes the post.
        let arrival = costs.eager_arrival(Time(depart), bytes);
        prop_assert_eq!(t.unexpected, arrival < Time(post));
        if t.unexpected {
            prop_assert!(t.recv_complete >= Time(post));
        }
    }

    #[test]
    fn rendezvous_match_timing_invariants(
        bytes in 8193usize..1_000_000,
        depart in 0u64..1_000_000,
        post in 0u64..1_000_000,
    ) {
        let m = CostModel::gemini_mpi();
        let costs = WireCosts::for_message(&m, bytes);
        prop_assume!(!costs.eager);
        let t = match_timing(&costs, bytes, Time(depart), Time(post));
        // Send and receive complete together (buffer held to transfer end).
        prop_assert_eq!(t.send_complete, t.recv_complete);
        prop_assert!(!t.unexpected);
        // Never earlier than the later party plus a full wire crossing.
        let floor = Time(depart.max(post))
            + Time::from_nanos(m.latency)
            + Time::from_nanos_f64(m.byte_time_ns * bytes as f64);
        prop_assert!(t.recv_complete >= floor);
    }

    #[test]
    fn match_timing_monotone_in_post_time(
        bytes in 0usize..100_000,
        depart in 0u64..500_000,
        post_a in 0u64..500_000,
        post_b in 0u64..500_000,
    ) {
        let costs = WireCosts::for_message(&CostModel::gemini_mpi(), bytes);
        let (lo, hi) = (post_a.min(post_b), post_a.max(post_b));
        let ta = match_timing(&costs, bytes, Time(depart), Time(lo));
        let tb = match_timing(&costs, bytes, Time(depart), Time(hi));
        prop_assert!(tb.recv_complete >= ta.recv_complete);
    }

    #[test]
    fn barrier_cost_monotone(a in 1usize..1024, b in 1usize..1024) {
        let (lo, hi) = (a.min(b), a.max(b));
        for m in models() {
            prop_assert!(m.barrier_cost(lo) <= m.barrier_cost(hi));
        }
    }

    #[test]
    fn shmem_small_message_advantage_holds(bytes in 8usize..=256) {
        // The paper's premise from refs [13][14], across the whole 8-256B
        // band: SHMEM's put path beats MPI's two-sided path handily.
        let mpi = CostModel::gemini_mpi();
        let shm = CostModel::gemini_shmem();
        let mpi_path = mpi.o_send + mpi.o_recv + mpi.o_wait;
        let mpi_t = Time::from_nanos(mpi_path) + mpi.wire_time(bytes);
        let shm_t = Time::from_nanos(shm.o_put) + shm.wire_time(bytes);
        let ratio = mpi_t.as_nanos() as f64 / shm_t.as_nanos() as f64;
        prop_assert!(ratio > 3.0, "{bytes}B: {ratio:.2}");
    }

    #[test]
    fn time_arithmetic_laws(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let (ta, tb) = (Time(a), Time(b));
        prop_assert_eq!(ta + tb, tb + ta);
        prop_assert_eq!((ta + tb) - tb, ta);
        prop_assert_eq!(ta.max(tb).as_nanos(), a.max(b));
        prop_assert_eq!(ta.saturating_sub(tb), Time(a.saturating_sub(b)));
    }
}
