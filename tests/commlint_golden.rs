//! Golden-file tests for `commlint --format json`: every catalogued lint
//! code is detected on its fixture, with span and rank-count witness, and
//! the JSON document matches the committed golden byte-for-byte.
//!
//! Regenerate goldens after an intentional output change with
//! `BLESS=1 cargo test -p integration --test commlint_golden`.

use std::path::PathBuf;

use commlint::{json::render_json, lint_source, LintOptions};
use pragma_front::SymbolTable;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/lint_fixtures")
}

/// Lint one fixture and render its JSON with a machine-independent path.
fn lint_fixture(name: &str) -> (commlint::LintReport, String) {
    let src = std::fs::read_to_string(fixture_dir().join(name))
        .unwrap_or_else(|e| panic!("read fixture {name}: {e}"));
    let report = lint_source(&src, &SymbolTable::new(), &LintOptions::default())
        .unwrap_or_else(|e| panic!("fixture {name} failed to parse: {e}"));
    let json = render_json(&[(name.to_string(), report.clone())]);
    (report, json)
}

fn check_golden(name: &str) -> commlint::LintReport {
    let (report, json) = lint_fixture(name);
    let golden_path = fixture_dir()
        .join("golden")
        .join(name.replace(".comm", ".json"));
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&golden_path, &json).expect("write golden");
        return report;
    }
    let want = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("read golden for {name}: {e} (run with BLESS=1 to create)"));
    assert_eq!(
        json, want,
        "{name}: JSON drifted from golden (run with BLESS=1 after intentional changes)"
    );
    report
}

#[test]
fn clean_fixture_has_zero_diagnostics() {
    let report = check_golden("clean.comm");
    assert!(report.diags.is_empty(), "{:?}", report.diags);
    assert!(!report.gate_fails());
}

/// Each `ciNNN_*` fixture is detected with its advertised code, carries a
/// source span, and (for the engine-level codes) a rank-count witness.
#[test]
fn every_lint_code_detected_on_its_fixture() {
    let cases = [
        ("ci000_directive_rule.comm", "CI000"),
        ("ci001_unmatched_send.comm", "CI001"),
        ("ci002_deadlock_cycle.comm", "CI002"),
        ("ci003_aliasing.comm", "CI003"),
        ("ci004_size_mismatch.comm", "CI004"),
        ("ci004_strided_extent.comm", "CI004"),
        ("ci005_pairing.comm", "CI005"),
        ("ci006_consolidation.comm", "CI006"),
        ("ci007_target_infeasible.comm", "CI007"),
        ("ci008_unresolved.comm", "CI008"),
        ("ci009_overlapping_puts.comm", "CI009"),
        ("ci010_get_put_conflict.comm", "CI010"),
        ("ci011_source_reuse.comm", "CI011"),
        ("ci012_read_before_wait.comm", "CI012"),
    ];
    for (name, code) in cases {
        let report = check_golden(name);
        let d = report
            .diags
            .iter()
            .find(|d| d.code.code() == code)
            .unwrap_or_else(|| panic!("{name}: {code} not detected: {:?}", report.diags));
        assert!(d.span.is_some(), "{name}: {code} carries no span");
        if code != "CI000" {
            let w = d
                .witness
                .as_ref()
                .unwrap_or_else(|| panic!("{name}: {code} carries no rank witness"));
            assert!(w.nranks >= 2, "{name}: witness {w:?}");
        }
    }
}

/// The fixture corpus covers the whole catalog: every `LintCode` variant
/// has at least one `.comm` fixture that triggers it. A new code without a
/// fixture fails here until one is added.
#[test]
fn every_catalog_code_has_a_triggering_fixture() {
    use std::collections::BTreeSet;

    let mut triggered: BTreeSet<&'static str> = BTreeSet::new();
    let mut entries: Vec<_> = std::fs::read_dir(fixture_dir())
        .expect("fixture dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "comm"))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().unwrap().to_str().unwrap().to_string();
        let (report, _) = lint_fixture(&name);
        triggered.extend(report.diags.iter().map(|d| d.code.code()));
    }
    for code in commint::LintCode::ALL {
        assert!(
            triggered.contains(code.code()),
            "lint code {} ({}) has no triggering fixture under tests/lint_fixtures/",
            code.code(),
            code.name()
        );
    }
}

/// The strided-extent fixture fires the layout-aware CI004 check: the
/// element count fits rbuf's capacity, so only the byte-extent computed
/// through the strided descriptor catches the overflow.
#[test]
fn strided_extent_fires_layout_aware_ci004() {
    let (report, _) = lint_fixture("ci004_strided_extent.comm");
    let d = report
        .diags
        .iter()
        .find(|d| d.code.code() == "CI004")
        .expect("CI004 fires");
    assert!(
        d.key.ends_with(":extent"),
        "expected the byte-extent check to fire, got key {:?}",
        d.key
    );
    assert!(
        d.message.contains("112 byte(s)") && d.message.contains("80 byte(s)"),
        "message should carry the layout span and memory size: {}",
        d.message
    );
}

/// The CI001 fixture is clean at nranks=2 and first fails at 3 — the sweep
/// must report the smallest failing count, not the largest swept.
#[test]
fn witness_is_smallest_failing_rank_count() {
    let (report, _) = lint_fixture("ci001_unmatched_send.comm");
    let d = &report.diags[0];
    assert_eq!(d.code.code(), "CI001");
    assert_eq!(d.witness.as_ref().unwrap().nranks, 3);
    assert_eq!(d.witness.as_ref().unwrap().ranks, vec![2]);
}
