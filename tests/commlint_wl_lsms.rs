//! Tier-1 integration: the shipped wl-lsms pragma sources — the paper's
//! Listing 5 (atom transfer) and Listing 7 (setEvec spin exchange) — lint
//! clean at the paper's rank counts. This is the productivity claim made
//! concrete: the directive specs the case studies actually run carry no
//! communication-intent defects.

use std::path::PathBuf;

use commint::clause::Severity;
use commint::diag::LintCode;
use commlint::{lint_source, LintOptions, RankRange};
use commprove::cert::Verdict;
use commprove::check::{check_source, parse_certificate};
use commprove::prove_source;
use pragma_front::SymbolTable;

fn repo_file(rel: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn spin_exchange_spec_is_clean_at_paper_rank_counts() {
    let src = repo_file("crates/wl-lsms/pragmas/spin_exchange.comm");
    let report = lint_source(&src, &SymbolTable::new(), &LintOptions::default()).unwrap();
    // The file's @ranks annotation pins the paper's topology range:
    // m LSMS instances of 16 ranks plus the WL master, up to m=3 (49).
    assert_eq!(report.ranks, RankRange { min: 9, max: 49 });
    assert!(
        report.diags.is_empty(),
        "spin-exchange spec must carry zero diagnostics: {:#?}",
        report.diags
    );
}

#[test]
fn atom_transfer_spec_is_clean_at_paper_rank_counts() {
    let src = repo_file("crates/wl-lsms/pragmas/atom_transfer.comm");
    let report = lint_source(&src, &SymbolTable::new(), &LintOptions::default()).unwrap();
    assert!(
        report.diags.is_empty(),
        "atom-transfer spec must carry zero diagnostics: {:#?}",
        report.diags
    );
}

/// The composite single-directive atom transfer — the whole atom as one
/// record with strided `vector(...) of mem` decls — lints clean, including
/// the layout-aware CI004 byte-extent check against each backing array.
#[test]
fn atom_composite_spec_is_clean_at_paper_rank_counts() {
    let src = repo_file("crates/wl-lsms/pragmas/atom_composite.comm");
    let report = lint_source(&src, &SymbolTable::new(), &LintOptions::default()).unwrap();
    assert_eq!(report.ranks, RankRange { min: 2, max: 16 });
    assert!(
        report.diags.is_empty(),
        "composite atom-transfer spec must carry zero diagnostics: {:#?}",
        report.diags
    );
}

/// Race freedom is proved, not just swept: both wl-lsms specs carry
/// certificates claiming CI009–CI012 absent for every rank count, and the
/// independent checker accepts those certificates after a JSON round-trip.
#[test]
fn wl_lsms_specs_prove_race_freedom_for_all_n() {
    for rel in [
        "crates/wl-lsms/pragmas/spin_exchange.comm",
        "crates/wl-lsms/pragmas/atom_transfer.comm",
        "crates/wl-lsms/pragmas/atom_composite.comm",
    ] {
        let src = repo_file(rel);
        let rep = prove_source(rel, &src, &SymbolTable::new(), &LintOptions::default())
            .unwrap_or_else(|e| panic!("{rel}: parse failed: {e}"));
        assert!(!rep.certificate.regions.is_empty(), "{rel}: no regions");
        for region in &rep.certificate.regions {
            assert!(
                region.eligible,
                "{rel}: region {} outside the decidable class: {:?}",
                region.region, region.reason
            );
            for code in [
                LintCode::OverlappingPuts,
                LintCode::GetPutConflict,
                LintCode::SourceReuseBeforeQuiet,
                LintCode::ReadBeforeSignalWait,
            ] {
                let claims: Vec<_> = region.claims.iter().filter(|c| c.code == code).collect();
                assert!(
                    !claims.is_empty(),
                    "{rel}: region {}: no {} claim",
                    region.region,
                    code.code()
                );
                assert!(
                    claims
                        .iter()
                        .all(|c| matches!(c.verdict, Verdict::Absent { .. })),
                    "{rel}: region {}: {} not proved absent: {claims:?}",
                    region.region,
                    code.code()
                );
            }
        }
        let cert = parse_certificate(&rep.certificate.to_json())
            .unwrap_or_else(|e| panic!("{rel}: certificate round-trip failed: {e}"));
        let errs = check_source(&src, &SymbolTable::new(), &LintOptions::default(), &cert);
        assert!(errs.is_empty(), "{rel}: checker rejected: {errs:?}");
    }
}

/// The examples shipped under examples/pragmas/ pass the warning-or-above
/// CI gate (advisory notes are allowed).
#[test]
fn example_pragmas_pass_the_ci_gate() {
    for rel in [
        "examples/pragmas/ring_shift.comm",
        "examples/pragmas/fan_in_reduce.comm",
    ] {
        let src = repo_file(rel);
        let report = lint_source(&src, &SymbolTable::new(), &LintOptions::default()).unwrap();
        assert!(
            !report.gate_fails(),
            "{rel} fails the lint gate: {:#?}",
            report.diags
        );
        assert!(report.diags.iter().all(|d| d.severity == Severity::Note));
    }
}
