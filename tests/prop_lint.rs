//! Property tests: the lint driver is total — `lint_region_at` never
//! panics and never loops, for arbitrary clause sets, buffer layouts, and
//! region shapes, across every rank count 1..=32. Diagnostics may be
//! nonsense for nonsense specs; crashing is the only wrong answer.

use std::collections::HashMap;

use commint::buffer::{BufMeta, ElemKind};
use commint::clause::{ClauseSet, PlaceSync, Target};
use commint::diag::lint_region_at;
use commint::dir::{P2pSpec, ParamsSpec};
use commint::expr::{CondExpr, RankExpr};
use mpisim::dtype::BasicType;
use proptest::prelude::*;

/// The vendored proptest shim has no `proptest::option` module.
fn opt<S: Strategy + 'static>(s: S) -> impl Strategy<Value = Option<S::Value>> {
    (any::<bool>(), s).prop_map(|(some, v)| if some { Some(v) } else { None })
}

fn expr_strategy() -> impl Strategy<Value = RankExpr> {
    let leaf = prop_oneof![
        Just(RankExpr::rank()),
        Just(RankExpr::nranks()),
        (-4i64..50).prop_map(RankExpr::lit),
        Just(RankExpr::var("n")),
        Just(RankExpr::var("unbound")),
        Just(RankExpr::opaque("f(x)", |env| env.rank * 3 - 1)),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
            // Zero divisors/moduli included on purpose: evaluation must
            // fail cleanly, not crash the linter.
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a / b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a % b),
        ]
    })
}

fn cond_strategy() -> impl Strategy<Value = CondExpr> {
    (expr_strategy(), expr_strategy(), 0u8..6).prop_map(|(a, b, op)| match op {
        0 => a.eq(b),
        1 => a.ne(b),
        2 => a.lt(b),
        3 => a.le(b),
        4 => a.gt(b),
        _ => a.ge(b),
    })
}

fn clause_strategy() -> impl Strategy<Value = ClauseSet> {
    (
        (
            opt(expr_strategy()),
            opt(expr_strategy()),
            opt(cond_strategy()),
            opt(cond_strategy()),
        ),
        (
            opt(expr_strategy()),
            opt(prop_oneof![
                Just(Target::Mpi2Side),
                Just(Target::Mpi1Side),
                Just(Target::Shmem),
            ]),
            opt(prop_oneof![
                Just(PlaceSync::EndParamRegion),
                Just(PlaceSync::BeginNextParamRegion),
                Just(PlaceSync::EndAdjParamRegions),
            ]),
            opt(expr_strategy()),
        ),
    )
        .prop_map(
            |((sender, receiver, sendwhen, receivewhen), (count, target, place_sync, max))| {
                ClauseSet {
                    sender,
                    receiver,
                    sendwhen,
                    receivewhen,
                    count,
                    target,
                    place_sync,
                    max_comm_iter: max,
                }
            },
        )
}

/// Buffers with arbitrary (possibly overlapping, possibly empty) address
/// ranges and element kinds.
fn buf_strategy() -> impl Strategy<Value = BufMeta> {
    (
        0usize..4,
        0usize..128,
        0usize..64,
        prop_oneof![
            Just(BasicType::U8),
            Just(BasicType::I32),
            Just(BasicType::F64),
        ],
    )
        .prop_map(|(name, lo, len, ty)| BufMeta {
            name: format!("buf{name}"),
            elem: ElemKind::Prim(ty),
            len,
            addr: (lo, lo + len * ty.size()),
        })
}

fn p2p_strategy() -> impl Strategy<Value = P2pSpec> {
    (
        clause_strategy(),
        proptest::collection::vec(buf_strategy(), 0..3),
        proptest::collection::vec(buf_strategy(), 0..3),
        any::<bool>(),
        0u32..100,
    )
        .prop_map(|(clauses, sbuf, rbuf, has_overlap_body, site)| P2pSpec {
            clauses,
            sbuf,
            rbuf,
            has_overlap_body,
            site,
            spans: Default::default(),
        })
}

fn region_strategy() -> impl Strategy<Value = ParamsSpec> {
    (
        clause_strategy(),
        proptest::collection::vec(p2p_strategy(), 0..4),
    )
        .prop_map(|(clauses, body)| ParamsSpec {
            clauses,
            body,
            spans: Default::default(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lint_driver_never_panics(
        spec in region_strategy(),
        bind_n in opt(-2i64..40),
    ) {
        let mut vars = HashMap::new();
        if let Some(n) = bind_n {
            vars.insert("n".to_string(), n);
        }
        for nranks in 1..=32usize {
            let diags = lint_region_at(0, &spec, nranks, &vars);
            // Structural sanity on whatever came out.
            for d in &diags {
                prop_assert_eq!(d.region, 0);
                if let Some(w) = &d.witness {
                    prop_assert_eq!(w.nranks, nranks);
                    for &r in &w.ranks {
                        prop_assert!(r < nranks, "witness rank {} out of 0..{}", r, nranks);
                    }
                }
            }
        }
    }
}
