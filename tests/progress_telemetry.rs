//! Determinism guarantees of the live-progress telemetry and the run
//! ledger: the post-run progress snapshot is engine-invariant, enabling the
//! `--watch` watchdog changes no deterministic artifact byte, and ledger
//! entries for the same workload differ only in their physical fields
//! (`git_rev`, `engine`, `wall_s` — pinned here).

use bench::{BenchReport, SeriesReport};
use commscope::{analyze, chrome_trace, profile_json};
use netsim::progress::STATE_DONE;
use netsim::{run, ExecPolicy, SimConfig, SimResult, SrcSel, TagSel, Time, WatchCfg};

const NRANKS: usize = 4;

/// A fixed mixed workload: skewed compute (late senders), a ring shift, a
/// fan-in with waitall, and a closing barrier — every blocking-op hook
/// fires at least once.
fn workload(ctx: &mut netsim::RankCtx) {
    let model = ctx.machine().mpi;
    let me = ctx.rank();
    let n = ctx.nranks();
    ctx.compute(Time::from_nanos(500 * (me as u64 + 1)));
    let payload = vec![me as u8; 64];
    let req = ctx.isend((me + 1) % n, 7, &payload, &model);
    ctx.recv(SrcSel::Exact((me + n - 1) % n), TagSel::Exact(7), &model);
    ctx.wait_send(&req, &model);
    if me == 0 {
        let reqs: Vec<_> = (1..n)
            .map(|src| ctx.irecv(SrcSel::Exact(src), TagSel::Exact(9), &model))
            .collect();
        ctx.waitall(&[], &reqs, &model);
    } else {
        ctx.send(0, 9, &[me as u8; 32], &model);
    }
    ctx.barrier(&model);
}

fn run_with(cfg: SimConfig) -> SimResult<()> {
    run(cfg, workload)
}

#[test]
fn final_snapshot_is_engine_invariant() {
    let engines = [
        ExecPolicy::threads(),
        ExecPolicy::bounded(1),
        ExecPolicy::bounded(3),
    ];
    let mut reference: Option<Vec<netsim::RankProgress>> = None;
    for exec in engines {
        let res = run_with(SimConfig::new(NRANKS).with_exec(exec).with_progress());
        let snap = res.progress.expect("progress enabled");
        assert_eq!(snap.ranks.len(), NRANKS);
        for (rank, r) in snap.ranks.iter().enumerate() {
            assert_eq!(r.rank, rank);
            assert_eq!(
                r.state, STATE_DONE,
                "rank {rank} not DONE in final snapshot"
            );
            assert_eq!(
                r.lvt_ns,
                res.final_times[rank].as_nanos(),
                "rank {rank}: snapshot LVT differs from final clock"
            );
            assert!(r.blocks > 0, "rank {rank}: no blocking entries counted");
        }
        match &reference {
            None => reference = Some(snap.ranks.clone()),
            Some(want) => assert_eq!(
                &snap.ranks, want,
                "final snapshot differs across engines (only `sched` may)"
            ),
        }
    }
}

#[test]
fn progress_off_by_default() {
    let res = run_with(SimConfig::new(NRANKS));
    assert!(res.progress.is_none());
}

/// Enabling the watchdog must not perturb any deterministic artifact: the
/// trace, profile, and final clocks are byte-identical with `--watch` on,
/// on both engines.
#[test]
fn artifacts_bit_identical_with_watch_on() {
    let observe = |exec: ExecPolicy| {
        let res = run_with(
            SimConfig::new(NRANKS)
                .with_exec(exec)
                .with_trace()
                .with_metrics(),
        );
        let trace = res.trace.expect("trace enabled");
        let metrics = res.metrics.expect("metrics enabled");
        let analysis = analyze(&trace, NRANKS, &res.final_times);
        (
            chrome_trace(&trace, NRANKS),
            profile_json("watchtest", &[], &analysis, &metrics).render(),
            res.final_times,
        )
    };
    // Long interval/stall so the watcher thread exists but stays quiet for
    // the duration of the test; its output would go to stderr regardless.
    let watch = WatchCfg {
        interval_ms: 60_000,
        stall_ms: 60_000,
    };
    for base in [ExecPolicy::threads(), ExecPolicy::bounded(2)] {
        let (t0, p0, f0) = observe(base);
        let (t1, p1, f1) = observe(base.with_watch(watch));
        assert_eq!(t0, t1, "trace drifted with --watch on");
        assert_eq!(p0, p1, "profile drifted with --watch on");
        assert_eq!(f0, f1, "final clocks drifted with --watch on");
    }
}

/// Ledger entries are a pure function of virtual time once the declared
/// physical fields are pinned: same workload under thread-per-rank and the
/// bounded engine yields byte-identical JSONL lines.
#[test]
fn ledger_entries_engine_invariant() {
    let report_for = |exec: ExecPolicy| {
        let res = run_with(SimConfig::new(NRANKS).with_exec(exec));
        BenchReport {
            bench: "watchtest".into(),
            args: vec![("ranks".into(), NRANKS as i64)],
            ranks: vec![NRANKS],
            series: vec![SeriesReport::new(
                "mixed",
                vec![res.makespan().as_nanos()],
                &res.total_stats(),
            )],
            // wall_s is physical by declaration; pin it so the remaining
            // fields carry the whole determinism claim.
            wall_s: 0.0,
        }
    };
    let a = bench::ledger::entry_json(&report_for(ExecPolicy::threads()), "pinned", "deadbeef")
        .render_compact();
    let b = bench::ledger::entry_json(&report_for(ExecPolicy::bounded(2)), "pinned", "deadbeef")
        .render_compact();
    assert_eq!(a, b, "ledger entries differ beyond the physical fields");

    // And the reader round-trips the line into a trend series.
    let entries = commscope::parse_ledger(&a).expect("reader parses writer output");
    let trends = commscope::trend(&entries, 5, 10.0);
    assert_eq!(trends.len(), 1);
    assert_eq!(trends[0].bench, "watchtest");
}
