//! Golden tests pinning the `commintd` wire protocol: a scripted
//! request sequence is framed through `serve_stream` and every response
//! frame is byte-compared against `tests/intd_golden/golden/`. Run with
//! `BLESS=1` to regenerate after an intentional protocol change.
//!
//! The file also holds the store-tamper integration test: a corrupted
//! on-disk certificate must be rejected, recomputed, and rewritten —
//! including on the warm (response-replay) path.

use std::fs;
use std::path::{Path, PathBuf};

use commintd::engine::cert_path;
use commintd::proto::request_json;
use commintd::server::serve_stream;
use commintd::Engine;
use commlint::LintOptions;
use pragma_front::SymbolTable;

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/intd_golden")
}

fn fixture_src() -> String {
    fs::read_to_string(fixture_dir().join("ring.comm")).expect("fixture spec")
}

/// The scripted session: (step name, request frame body). Responses are
/// pinned one golden file per step, in order.
fn script() -> Vec<(&'static str, Vec<u8>)> {
    let src = fixture_src();
    let fmt = format!("// touched\n{src}");
    let edited = src.replace("count(8)", "count(4)");
    vec![
        (
            "01_analyze_cold",
            request_json("analyze", 1, "ring.comm", &src).into_bytes(),
        ),
        (
            "02_prove_warm_stripes",
            request_json("prove", 2, "ring.comm", &src).into_bytes(),
        ),
        (
            "03_analyze_replay",
            request_json("analyze", 3, "ring.comm", &src).into_bytes(),
        ),
        (
            "04_analyze_fmt_edit",
            request_json("analyze", 4, "ring.comm", &fmt).into_bytes(),
        ),
        (
            "05_analyze_region_edit",
            request_json("analyze", 5, "ring.comm", &edited).into_bytes(),
        ),
        (
            "06_diag",
            request_json("diag", 6, "ring.comm", &edited).into_bytes(),
        ),
        ("07_stats", request_json("stats", 7, "", "").into_bytes()),
        (
            "08_unknown_op",
            request_json("scan", 8, "ring.comm", &src).into_bytes(),
        ),
        (
            "09_bad_version",
            b"{ \"v\": 9, \"op\": \"analyze\", \"id\": 9, \"file\": \"ring.comm\", \"src\": \"\" }"
                .to_vec(),
        ),
        ("10_not_json", b"not json at all".to_vec()),
    ]
}

#[test]
fn protocol_responses_match_goldens() {
    let engine = Engine::new(SymbolTable::new(), LintOptions::default(), None);
    let steps = script();

    // Frame the whole session into one input stream, serve it, then
    // unframe the responses.
    let mut input = Vec::new();
    for (_, body) in &steps {
        commintd::proto::write_frame(&mut input, body).unwrap();
    }
    let mut output = Vec::new();
    serve_stream(&engine, &mut &input[..], &mut output).unwrap();

    let mut r = &output[..];
    let golden_dir = fixture_dir().join("golden");
    let bless = std::env::var("BLESS").is_ok();
    if bless {
        fs::create_dir_all(&golden_dir).unwrap();
    }
    for (name, _) in &steps {
        let frame = commintd::proto::read_frame(&mut r)
            .unwrap()
            .unwrap_or_else(|| panic!("missing response frame for {name}"));
        let got = String::from_utf8(frame).expect("response is UTF-8");
        let path = golden_dir.join(format!("{name}.json"));
        if bless {
            fs::write(&path, &got).unwrap();
        } else {
            let want = fs::read_to_string(&path)
                .unwrap_or_else(|_| panic!("missing golden {name}.json; run with BLESS=1"));
            assert_eq!(got, want, "response drifted for step {name}");
        }
    }
    assert!(
        commintd::proto::read_frame(&mut r).unwrap().is_none(),
        "extra response frames beyond the script"
    );
}

#[test]
fn tampered_disk_cert_is_rejected_and_healed() {
    let dir = std::env::temp_dir().join(format!("intd-golden-tamper-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let engine = Engine::new(
        SymbolTable::new(),
        LintOptions::default(),
        Some(dir.clone()),
    );
    let src = fixture_src();

    let first = engine.prove("ring.comm", &src).unwrap();
    assert_eq!(first.disk_cert, "written");
    let path = cert_path(&dir, "ring.comm");
    let fresh = fs::read_to_string(&path).unwrap();
    assert_eq!(fresh, first.cert_json);

    // Untouched store: the warm replay revalidates and reports `valid`.
    let second = engine.prove("ring.comm", &src).unwrap();
    assert_eq!(second.disk_cert, "valid");

    // Corrupt the cached certificate with structurally broken JSON: the
    // checker must reject it and the store must self-heal — and because
    // the source bytes are unchanged this exercises the replay fast
    // path, which still reconciles the disk store.
    fs::write(&path, b"{ \"schema\": \"garbage\"").unwrap();
    let healed = engine.prove("ring.comm", &src).unwrap();
    assert_eq!(healed.disk_cert, "healed");
    assert_eq!(fs::read_to_string(&path).unwrap(), first.cert_json);

    // A certificate that differs bytewise but still parses and checks
    // (say, reformatted by an external tool) is refreshed, not healed.
    fs::write(&path, format!("{fresh}\n")).unwrap();
    let re = engine.prove("ring.comm", &src).unwrap();
    assert_eq!(re.disk_cert, "refreshed");
    assert_eq!(fs::read_to_string(&path).unwrap(), first.cert_json);

    // A certificate for a superseded version of the source fails the
    // replay check and is healed like any other corruption. The edit
    // overflows the buffer so the stale certificate carries a size
    // claim the current source does not entail.
    let edited = src.replace("count(8)", "count(100)");
    engine.prove("ring.comm", &edited).unwrap();
    let back = engine.prove("ring.comm", &src).unwrap();
    assert_eq!(back.disk_cert, "healed");
    assert_eq!(fs::read_to_string(&path).unwrap(), back.cert_json);

    let _ = fs::remove_dir_all(&dir);
}
