//! Integration: the same directive programs deliver identical data under
//! every translation target, across rank counts, element types and buffer
//! shapes — the paper's portability claim, end to end.

use commint::patterns;
use commint::prelude::*;
use integration::with_world_session;

#[test]
fn ring_identical_across_targets_and_sizes() {
    for n in [2usize, 3, 5, 9, 17] {
        let mut reference: Option<Vec<Vec<i64>>> = None;
        for target in Target::ALL {
            let res = with_world_session(n, move |s| {
                let me = s.rank() as i64;
                let send: Vec<i64> = (0..6).map(|i| me * 100 + i).collect();
                let mut recv = vec![0i64; 6];
                patterns::ring(s, target, &send, &mut recv).unwrap();
                recv
            });
            match &reference {
                None => reference = Some(res.per_rank),
                Some(r) => assert_eq!(r, &res.per_rank, "target {target} diverged at n={n}"),
            }
        }
        let data = reference.expect("set");
        for (rank, v) in data.iter().enumerate() {
            let prev = ((rank + n - 1) % n) as i64;
            assert_eq!(v[0], prev * 100);
            assert_eq!(v[5], prev * 100 + 5);
        }
    }
}

#[test]
fn composite_round_trip_on_every_target() {
    commint::comm_datatype! {
        struct Probe {
            id: i32,
            weights: [f64; 4],
            tag: [u8; 5],
        }
    }
    for target in Target::ALL {
        let res = with_world_session(2, move |s| {
            let src = [Probe {
                id: 42,
                weights: [0.25, 0.5, 0.75, 1.0],
                tag: *b"probe",
            }];
            let mut dst = [Probe {
                id: 0,
                weights: [0.0; 4],
                tag: [0; 5],
            }];
            let params = CommParams::new()
                .sender(RankExpr::lit(0))
                .receiver(RankExpr::lit(1))
                .sendwhen(RankExpr::rank().eq(RankExpr::lit(0)))
                .receivewhen(RankExpr::rank().eq(RankExpr::lit(1)))
                .count(1)
                .target(target);
            s.region(&params, |reg| {
                reg.p2p()
                    .sbuf(Struc::new("probe", &src))
                    .rbuf(StrucMut::new("probe", &mut dst))
                    .run()
                    .unwrap();
            })
            .unwrap();
            dst[0]
        });
        let got = res.per_rank[1];
        assert_eq!(got.id, 42, "target {target}");
        assert_eq!(got.weights, [0.25, 0.5, 0.75, 1.0]);
        assert_eq!(&got.tag, b"probe");
    }
}

#[test]
fn multi_buffer_lists_across_targets() {
    for target in Target::ALL {
        let res = with_world_session(4, move |s| {
            let me = s.rank() as i64;
            let a: Vec<f64> = (0..8).map(|i| me as f64 + i as f64 * 0.5).collect();
            let b: Vec<i32> = (0..8).map(|i| me as i32 * 10 + i).collect();
            let mut ra = vec![0f64; 8];
            let mut rb = vec![0i32; 8];
            let params = CommParams::new()
                .sender(
                    (RankExpr::rank() - RankExpr::lit(1) + RankExpr::nranks()) % RankExpr::nranks(),
                )
                .receiver((RankExpr::rank() + RankExpr::lit(1)) % RankExpr::nranks())
                .count(8)
                .target(target);
            s.region(&params, |reg| {
                reg.p2p()
                    .sbuf(Prim::new("a", &a))
                    .sbuf(Prim::new("b", &b))
                    .rbuf(PrimMut::new("ra", &mut ra))
                    .rbuf(PrimMut::new("rb", &mut rb))
                    .run()
                    .unwrap();
            })
            .unwrap();
            (ra, rb)
        });
        for (rank, (ra, rb)) in res.per_rank.iter().enumerate() {
            let prev = (rank + 3) % 4;
            assert_eq!(ra[0], prev as f64, "target {target}");
            assert_eq!(rb[7], prev as i32 * 10 + 7, "target {target}");
        }
    }
}

#[test]
fn fan_patterns_all_targets() {
    for target in Target::ALL {
        // fan_out
        let n = 6;
        let res = with_world_session(n, move |s| {
            let chunks: Vec<Vec<i64>> = (0..n).map(|d| vec![d as i64 * 3 + 1]).collect();
            let mut recv = [0i64];
            patterns::fan_out(s, target, 0, &chunks, &mut recv).unwrap();
            recv[0]
        });
        for (rank, &v) in res.per_rank.iter().enumerate().skip(1) {
            assert_eq!(v, rank as i64 * 3 + 1, "fan_out target {target}");
        }
    }
}

#[test]
fn timing_profiles_differ_by_target_but_data_does_not() {
    // Many small messages: SHMEM must be cheapest, MPI one-sided priciest
    // (fence); data identical everywhere. Uses the session makespan.
    let mut times = Vec::new();
    for target in Target::ALL {
        let res = with_world_session(9, move |s| {
            let me = s.rank() as i64;
            let params = CommParams::new()
                .sender(
                    (RankExpr::rank() - RankExpr::lit(1) + RankExpr::nranks()) % RankExpr::nranks(),
                )
                .receiver((RankExpr::rank() + RankExpr::lit(1)) % RankExpr::nranks())
                .max_comm_iter(16)
                .target(target);
            let mut last = 0i64;
            s.region(&params, |reg| {
                for k in 0..16 {
                    let src = [me * 1000 + k];
                    let mut dst = [0i64];
                    reg.p2p()
                        .site(3)
                        .sbuf(Prim::new("src", &src))
                        .rbuf(PrimMut::new("dst", &mut dst))
                        .run()
                        .unwrap();
                    last = dst[0];
                }
            })
            .unwrap();
            last
        });
        for (rank, &v) in res.per_rank.iter().enumerate() {
            let prev = ((rank + 8) % 9) as i64;
            assert_eq!(v, prev * 1000 + 15, "target {target}");
        }
        times.push((target, res.makespan()));
    }
    let by = |t: Target| times.iter().find(|(x, _)| *x == t).expect("present").1;
    assert!(
        by(Target::Shmem) < by(Target::Mpi2Side),
        "SHMEM should beat MPI two-sided on 16 tiny messages: {times:?}"
    );
}
