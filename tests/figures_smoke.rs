//! Integration: small-scale smoke runs of all three figure experiments,
//! asserting the qualitative claims of the paper's evaluation section.

use wl_lsms::{
    fig3_single_atom, fig4_spin, fig5_overlap, AtomCommVariant, AtomSizes, CoreStateParams,
    SpinVariant, Topology,
};

#[test]
fn fig3_three_series_comparable_and_growing() {
    let sizes = AtomSizes { jmt: 120, numc: 8 };
    let small = Topology::new(2, 6);
    let large = Topology::new(5, 6);

    let mut prev = None;
    for topo in [&small, &large] {
        let orig = fig3_single_atom(topo, AtomCommVariant::Original, sizes);
        let mpi = fig3_single_atom(topo, AtomCommVariant::DirectiveMpi2, sizes);
        let shm = fig3_single_atom(topo, AtomCommVariant::DirectiveShmem, sizes);
        assert!(orig.correct && mpi.correct && shm.correct);
        for (label, m) in [("mpi", &mpi), ("shmem", &shm)] {
            let r = orig.time.as_nanos() as f64 / m.time.as_nanos() as f64;
            assert!(
                (0.6..4.0).contains(&r),
                "{label} not comparable at {} ranks: {r:.2}",
                topo.total_ranks()
            );
        }
        if let Some(prev_time) = prev {
            assert!(
                orig.time > prev_time,
                "single-atom distribution must grow with scale"
            );
        }
        prev = Some(orig.time);
    }
}

#[test]
fn fig4_quoted_speedups_at_scale_band() {
    // At a mid-size topology the quoted bands should already show:
    // waitall ~2-3.5x, MPI directive ~3-4.5x, SHMEM directive >15x.
    let topo = Topology::new(6, 16); // 97 ranks
    let steps = 3;
    let orig = fig4_spin(&topo, SpinVariant::Original, steps);
    let wall = fig4_spin(&topo, SpinVariant::OriginalWaitall, steps);
    let mpi = fig4_spin(&topo, SpinVariant::DirectiveMpi2, steps);
    let shm = fig4_spin(&topo, SpinVariant::DirectiveShmem, steps);
    let x = |b: &wl_lsms::Measurement| orig.time.as_nanos() as f64 / b.time.as_nanos() as f64;
    assert!(
        (1.8..3.8).contains(&x(&wall)),
        "waitall speedup {:.2} out of band",
        x(&wall)
    );
    assert!(
        (2.5..5.5).contains(&x(&mpi)),
        "MPI directive speedup {:.2} out of band",
        x(&mpi)
    );
    assert!(
        x(&shm) > 15.0,
        "SHMEM directive speedup {:.2} below band",
        x(&shm)
    );
    // And the residual ratio vs the waitall-modified original:
    let residual_mpi = wall.time.as_nanos() as f64 / mpi.time.as_nanos() as f64;
    assert!(
        (1.0..2.0).contains(&residual_mpi),
        "waitall/directive-MPI {residual_mpi:.2}"
    );
}

#[test]
fn fig5_overlap_saves_roughly_the_communication_time() {
    let topo = Topology::new(3, 8);
    let sizes = AtomSizes { jmt: 64, numc: 6 };
    let cparams = CoreStateParams {
        base_ns_per_atom: 400_000,
        speedup: 10.0,
        iterations: 2,
    };
    let steps = 2;
    let seq = fig5_overlap(&topo, false, cparams, sizes, steps);
    let ovl = fig5_overlap(&topo, true, cparams, sizes, steps);
    assert!(
        ovl.time < seq.time,
        "overlap {} !< sequential {}",
        ovl.time,
        seq.time
    );
    // Bounded by compute: overlapped time can't drop below the computation.
    assert!(ovl.time >= cparams.time_per_atom());
}

#[test]
fn sweep_axis_matches_paper() {
    let xs: Vec<usize> = Topology::paper_sweep()
        .iter()
        .map(|t| t.total_ranks())
        .collect();
    assert_eq!(xs.first(), Some(&33));
    assert_eq!(xs.last(), Some(&337));
    assert_eq!(xs.len(), 20);
}
