//! Property tests: clause expressions — the C-like rendering produced by
//! `Display` parses back through the pragma front-end to a semantically
//! identical expression (render→parse→eval == eval), for random expression
//! trees.

use commint::expr::{CondExpr, EvalEnv, RankExpr};
use mpisim::dtype::BasicType;
use pragma_front::{parse, Item, SymbolTable};
use proptest::prelude::*;

/// Random arithmetic expression trees. Divisors/moduli are nonzero
/// constants so evaluation is total.
fn expr_strategy() -> impl Strategy<Value = RankExpr> {
    let leaf = prop_oneof![
        Just(RankExpr::Rank),
        Just(RankExpr::NRanks),
        (0i64..50).prop_map(RankExpr::Const),
        Just(RankExpr::var("n")),
        Just(RankExpr::var("root")),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
            (inner.clone(), 1i64..20).prop_map(|(a, d)| a / RankExpr::lit(d)),
            (inner.clone(), 1i64..20).prop_map(|(a, d)| a % RankExpr::lit(d)),
            inner.prop_map(|a| -a),
        ]
    })
}

fn cond_strategy() -> impl Strategy<Value = CondExpr> {
    let rel = (expr_strategy(), expr_strategy(), 0u8..6).prop_map(|(a, b, op)| match op {
        0 => a.eq(b),
        1 => a.ne(b),
        2 => a.lt(b),
        3 => a.le(b),
        4 => a.gt(b),
        _ => a.ge(b),
    });
    rel.prop_recursive(2, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|a| a.not()),
        ]
    })
}

fn roundtrip_rank_expr(e: &RankExpr) -> RankExpr {
    let mut syms = SymbolTable::new();
    syms.declare_prim("b", BasicType::U8, 1);
    let src = format!("#pragma comm_p2p sender({e}) receiver(0) sbuf(b) rbuf(b)");
    let parsed = parse(&src, &syms).unwrap_or_else(|err| panic!("`{e}` failed to parse: {err}"));
    let Item::P2p(p) = &parsed.items[0] else {
        panic!("expected p2p");
    };
    p.clauses.sender.clone().expect("sender present")
}

fn roundtrip_cond_expr(c: &CondExpr) -> CondExpr {
    let mut syms = SymbolTable::new();
    syms.declare_prim("b", BasicType::U8, 1);
    let src = format!(
        "#pragma comm_p2p sender(0) receiver(0) sendwhen({c}) receivewhen({c}) sbuf(b) rbuf(b)"
    );
    let parsed = parse(&src, &syms).unwrap_or_else(|err| panic!("`{c}` failed to parse: {err}"));
    let Item::P2p(p) = &parsed.items[0] else {
        panic!("expected p2p");
    };
    p.clauses.sendwhen.clone().expect("sendwhen present")
}

fn envs() -> Vec<EvalEnv> {
    let mut out = Vec::new();
    for nranks in [1i64, 4, 16] {
        for rank in 0..nranks.min(5) {
            out.push(
                EvalEnv::new(rank as usize, nranks as usize)
                    .with("n", 7)
                    .with("root", 2),
            );
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn rank_expr_render_parse_eval_roundtrip(e in expr_strategy()) {
        let parsed = roundtrip_rank_expr(&e);
        for env in envs() {
            let want = e.eval(&env);
            let got = parsed.eval(&env);
            prop_assert_eq!(
                want.clone(), got,
                "`{}` vs reparsed `{}` at rank {}/{}", &e, &parsed, env.rank, env.nranks
            );
        }
    }

    #[test]
    fn cond_expr_render_parse_eval_roundtrip(c in cond_strategy()) {
        let parsed = roundtrip_cond_expr(&c);
        for env in envs() {
            let want = c.eval(&env);
            let got = parsed.eval(&env);
            prop_assert_eq!(
                want.clone(), got,
                "`{}` vs reparsed `{}` at rank {}/{}", &c, &parsed, env.rank, env.nranks
            );
        }
    }

    #[test]
    fn display_is_stable(e in expr_strategy()) {
        // Rendering the reparsed tree again yields the same text as the
        // reparsed tree's own rendering (idempotent after one roundtrip).
        let once = roundtrip_rank_expr(&e);
        let twice = roundtrip_rank_expr(&once);
        prop_assert_eq!(once.to_string(), twice.to_string());
    }

    #[test]
    fn free_vars_subset_of_known(e in expr_strategy()) {
        let mut vars = Vec::new();
        e.free_vars(&mut vars);
        for v in vars {
            prop_assert!(v == "n" || v == "root", "unexpected free var {v}");
        }
    }
}
