//! Property tests: datatype machinery — struct gather/scatter roundtrips,
//! pack/unpack identity, vector-type strides — over randomized layouts and
//! contents.

use integration::with_ranks;
use mpisim::dtype::{BasicType, Datatype, FieldKind};
use mpisim::PackBuf;
use proptest::prelude::*;

fn basic_type() -> impl Strategy<Value = BasicType> {
    prop_oneof![
        Just(BasicType::U8),
        Just(BasicType::I32),
        Just(BasicType::I64),
        Just(BasicType::F32),
        Just(BasicType::F64),
    ]
}

/// A random valid (non-overlapping, in-bounds) struct layout and its extent.
fn layout_strategy() -> impl Strategy<Value = (Vec<(usize, usize, BasicType)>, usize)> {
    proptest::collection::vec((basic_type(), 1usize..5), 1..6).prop_map(|fields| {
        let mut out = Vec::new();
        let mut off = 0usize;
        for (ty, blocklen) in fields {
            // Align the block to the element size.
            let align = ty.size();
            off = off.div_ceil(align) * align;
            out.push((off, blocklen, ty));
            off += blocklen * ty.size();
        }
        // Trailing padding.
        let extent = off.div_ceil(8) * 8 + 8;
        (out, extent)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn struct_gather_scatter_roundtrip(
        (fields, extent) in layout_strategy(),
        count in 1usize..5,
        seed in any::<u64>(),
    ) {
        let descr: Vec<(&str, usize, usize, FieldKind)> = fields
            .iter()
            .map(|&(off, bl, ty)| ("f", off, bl, FieldKind::Basic(ty)))
            .collect();
        let dt = Datatype::try_struct(&descr, extent).unwrap();

        // Random raw image.
        let mut raw = vec![0u8; count * extent];
        let mut x = seed | 1;
        for b in raw.iter_mut() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *b = (x >> 56) as u8;
        }

        let mut packed = Vec::new();
        dt.gather(&raw, count, &mut packed);
        prop_assert_eq!(packed.len(), count * dt.packed_size());

        let mut back = vec![0u8; count * extent];
        dt.scatter(&packed, count, &mut back);

        // Every described byte roundtrips; padding stays zero.
        for e in 0..count {
            for &(off, bl, ty) in &fields {
                let lo = e * extent + off;
                let hi = lo + bl * ty.size();
                prop_assert_eq!(&back[lo..hi], &raw[lo..hi]);
            }
        }
    }

    #[test]
    fn gather_then_scatter_is_idempotent(
        (fields, extent) in layout_strategy(),
    ) {
        let descr: Vec<(&str, usize, usize, FieldKind)> = fields
            .iter()
            .map(|&(off, bl, ty)| ("f", off, bl, FieldKind::Basic(ty)))
            .collect();
        let dt = Datatype::try_struct(&descr, extent).unwrap();
        let raw = vec![0xABu8; extent];
        let mut p1 = Vec::new();
        dt.gather(&raw, 1, &mut p1);
        let mut img = vec![0u8; extent];
        dt.scatter(&p1, 1, &mut img);
        let mut p2 = Vec::new();
        dt.gather(&img, 1, &mut p2);
        prop_assert_eq!(p1, p2);
    }

    #[test]
    fn pack_unpack_identity(
        ints in proptest::collection::vec(any::<i32>(), 0..16),
        doubles in proptest::collection::vec(any::<f64>().prop_filter("finite", |v| v.is_finite()), 0..16),
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let ints2 = ints.clone();
        let doubles2 = doubles.clone();
        let bytes2 = bytes.clone();
        let res = with_ranks(1, move |ctx| {
            let m = ctx.machine().mpi;
            let size = ints2.len() * 4 + doubles2.len() * 8 + bytes2.len() + 16;
            let mut pb = PackBuf::with_capacity(size);
            pb.pack(ctx, &ints2, &m);
            pb.pack(ctx, &doubles2, &m);
            pb.pack(ctx, &bytes2, &m);

            let mut rb = PackBuf::from_bytes(pb.packed());
            let mut i_out = vec![0i32; ints2.len()];
            let mut d_out = vec![0f64; doubles2.len()];
            let mut b_out = vec![0u8; bytes2.len()];
            rb.unpack(ctx, &mut i_out, &m);
            rb.unpack(ctx, &mut d_out, &m);
            rb.unpack(ctx, &mut b_out, &m);
            (i_out, d_out, b_out)
        });
        let (i_out, d_out, b_out) = res.per_rank[0].clone();
        prop_assert_eq!(i_out, ints);
        prop_assert_eq!(d_out, doubles);
        prop_assert_eq!(b_out, bytes);
    }

    #[test]
    fn vector_type_strided_roundtrip(
        count in 1usize..6,
        blocklen in 1usize..4,
        extra_stride in 0usize..4,
        vals in proptest::collection::vec(any::<i64>(), 64),
    ) {
        let stride = blocklen + extra_stride;
        let dt = Datatype::Vector { count, blocklen, stride, elem: BasicType::I64 };
        let needed = dt.extent() / 8;
        prop_assume!(needed <= vals.len());

        let raw = mpisim::as_bytes(&vals);
        let mut packed = Vec::new();
        dt.gather(raw, 1, &mut packed);
        let vals_ref = &vals;
        let expected: Vec<i64> = (0..count)
            .flat_map(|b| (0..blocklen).map(move |k| vals_ref[b * stride + k]))
            .collect();
        let got: Vec<i64> = mpisim::vec_from_bytes(&packed);
        prop_assert_eq!(&got, &expected);

        let mut img = vec![0i64; vals.len()];
        dt.scatter(&packed, 1, mpisim::as_bytes_mut(&mut img));
        for b in 0..count {
            for k in 0..blocklen {
                prop_assert_eq!(img[b * stride + k], vals[b * stride + k]);
            }
        }
    }

    #[test]
    fn packed_size_never_exceeds_extent_for_structs(
        (fields, extent) in layout_strategy(),
    ) {
        let descr: Vec<(&str, usize, usize, FieldKind)> = fields
            .iter()
            .map(|&(off, bl, ty)| ("f", off, bl, FieldKind::Basic(ty)))
            .collect();
        let dt = Datatype::try_struct(&descr, extent).unwrap();
        prop_assert!(dt.packed_size() <= dt.extent());
    }
}

/// Differential check of the lowering chooser: one ring exchange of a
/// random strided-plus-SoA payload, executed under every lowering policy
/// (pack, derived datatype, cost-model auto), every backend, and both
/// execution engines. The lowering strategy decides how the runtime
/// *charges* the transfer, never what arrives: all combinations must
/// deliver bit-identical buffers.
mod lowering_differential {
    use commint::prelude::*;
    use mpisim::Comm;
    use netsim::{run, ExecPolicy, SimConfig};
    use proptest::prelude::*;

    #[derive(Clone, Copy, Debug)]
    struct Layout {
        blocklen: usize,
        stride: usize,
        count: usize,
    }

    /// Per-rank (strided dst bits, SoA int field, SoA float field bits).
    type RingSnapshot = Vec<(Vec<u64>, Vec<i64>, Vec<u64>)>;

    fn ring(
        l: Layout,
        target: Target,
        policy: LoweringPolicy,
        exec: ExecPolicy,
        seed: u64,
        n: usize,
    ) -> RingSnapshot {
        let res = run(SimConfig::new(n).with_exec(exec), move |ctx| {
            let comm = Comm::world(ctx);
            let mut session = CommSession::new(ctx, comm).with_lowering(policy);
            let me = session.rank() as u64;
            let mem = (l.count - 1) * l.stride + l.blocklen;
            let src: Vec<f64> = (0..mem)
                .map(|i| (seed ^ (me << 32) ^ i as u64) as f64)
                .collect();
            let mut dst = vec![0f64; mem];
            let sa: Vec<i64> = (0..l.count)
                .map(|i| (seed as i64) + (me as i64) * 1000 + i as i64)
                .collect();
            let sb: Vec<f64> = (0..l.count)
                .map(|i| (seed ^ me ^ (i as u64) << 8) as f64)
                .collect();
            let mut ra = vec![0i64; l.count];
            let mut rb = vec![0f64; l.count];
            let params = CommParams::new()
                .sender(
                    (RankExpr::rank() - RankExpr::lit(1) + RankExpr::nranks()) % RankExpr::nranks(),
                )
                .receiver((RankExpr::rank() + RankExpr::lit(1)) % RankExpr::nranks())
                .target(target);
            session
                .region(&params, |reg| {
                    reg.p2p()
                        .site(1)
                        .count(RankExpr::lit(l.count as i64))
                        .sbuf(PrimStrided::new("s", &src, l.blocklen, l.stride))
                        .rbuf(PrimStridedMut::new("r", &mut dst, l.blocklen, l.stride))
                        .run()
                        .unwrap();
                    reg.p2p()
                        .site(2)
                        .count(RankExpr::lit(l.count as i64))
                        .sbuf(Soa::new("ss").field("a", &sa).field("b", &sb))
                        .rbuf(SoaMut::new("sr").field("a", &mut ra).field("b", &mut rb))
                        .run()
                        .unwrap();
                })
                .unwrap();
            session.flush();
            (
                dst.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                ra,
                rb.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            )
        });
        res.per_rank
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn every_policy_backend_engine_combo_is_bit_identical(
            blocklen in 1usize..4,
            extra_stride in 0usize..4,
            count in 1usize..8,
            seed in any::<u64>(),
        ) {
            let l = Layout { blocklen, stride: blocklen + extra_stride, count };
            let n = 4;
            let mut reference: Option<RingSnapshot> = None;
            for target in Target::ALL {
                let mut per_target: Option<RingSnapshot> = None;
                for policy in [
                    LoweringPolicy::Auto,
                    LoweringPolicy::AlwaysPack,
                    LoweringPolicy::AlwaysDatatype,
                ] {
                    for exec in [ExecPolicy::threads(), ExecPolicy::bounded(2)] {
                        let got = ring(l, target, policy, exec, seed, n);
                        // Within a target: every policy and engine agrees.
                        match &per_target {
                            None => per_target = Some(got),
                            Some(want) => prop_assert_eq!(
                                &got, want,
                                "divergent payload: {:?} {:?} {:?}", target, policy, l
                            ),
                        }
                    }
                }
                // Across targets the delivered bytes agree too (same ring).
                match &reference {
                    None => reference = Some(per_target.unwrap()),
                    Some(want) => prop_assert_eq!(
                        &per_target.unwrap(), want,
                        "divergent across targets at {:?} {:?}", target, l
                    ),
                }
            }
            // And the data is actually the neighbour's, not just consistent.
            let got = reference.unwrap();
            for (r, (_, ra, _)) in got.iter().enumerate() {
                let prev = ((r + n - 1) % n) as i64;
                prop_assert_eq!(ra[0], seed as i64 + prev * 1000);
            }
        }
    }
}
