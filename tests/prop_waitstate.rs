//! Property tests for the commscope wait-state analysis: on randomized
//! mixed workloads, the per-rank blame attribution sums exactly to each
//! rank's measured wait, the wait-kind buckets partition it, the critical
//! path is well-formed, and the serialized profile is identical under every
//! execution engine.

use commscope::{analyze, profile_json, validate_profile, Analysis};
use netsim::{run, ExecPolicy, RankMetrics, SimConfig, SrcSel, TagSel, Time, TraceEvent};
use proptest::prelude::*;

/// One communication round every rank executes (rounds are matched by
/// construction, so any script is deadlock-free).
#[derive(Clone, Debug)]
enum Round {
    /// Non-blocking ring shift: isend to the right, recv from the left.
    RingShift { tag: i32, len: usize },
    /// Workers send to rank 0; the root drains the receives in a Waitall.
    /// Receives match by exact source: wildcard binding is an application
    /// -level race (engine-dependent by design), and this suite asserts
    /// engine-invariance of the profile.
    FanIn { len: usize },
    /// Communicator-wide barrier.
    Barrier,
    /// Local computation skewed by rank to create genuine late senders.
    Skew { ns: u64 },
}

fn round_strategy() -> impl Strategy<Value = Round> {
    prop_oneof![
        (0..4i32, 1..96usize).prop_map(|(tag, len)| Round::RingShift { tag, len }),
        (1..64usize).prop_map(|len| Round::FanIn { len }),
        Just(Round::Barrier),
        (1..5000u64).prop_map(|ns| Round::Skew { ns }),
    ]
}

fn run_observed(
    nranks: usize,
    rounds: &[Round],
    exec: ExecPolicy,
) -> (Vec<TraceEvent>, Vec<RankMetrics>, Vec<Time>) {
    let rounds = rounds.to_vec();
    let res = run(
        SimConfig::new(nranks)
            .with_exec(exec)
            .with_trace()
            .with_metrics(),
        move |ctx| {
            let model = ctx.machine().mpi;
            let me = ctx.rank();
            let n = ctx.nranks();
            for (k, round) in rounds.iter().enumerate() {
                match round {
                    Round::RingShift { tag, len } => {
                        let payload = vec![(me + k) as u8; *len];
                        let req = ctx.isend((me + 1) % n, *tag, &payload, &model);
                        ctx.recv(SrcSel::Exact((me + n - 1) % n), TagSel::Exact(*tag), &model);
                        ctx.wait_send(&req, &model);
                    }
                    Round::FanIn { len } => {
                        let tag = 1000 + k as i32;
                        if me == 0 {
                            let reqs: Vec<_> = (1..n)
                                .map(|src| {
                                    ctx.irecv(SrcSel::Exact(src), TagSel::Exact(tag), &model)
                                })
                                .collect();
                            ctx.waitall(&[], &reqs, &model);
                        } else {
                            ctx.send(0, tag, &vec![me as u8; *len], &model);
                        }
                    }
                    Round::Barrier => ctx.barrier(&model),
                    Round::Skew { ns } => {
                        ctx.compute(Time::from_nanos(ns * (me as u64 + 1)));
                    }
                }
            }
        },
    );
    (
        res.trace.expect("trace enabled"),
        res.metrics.expect("metrics enabled"),
        res.final_times,
    )
}

/// The analysis invariants that must hold on any trace.
fn check_invariants(a: &Analysis, nranks: usize) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.ranks.len(), nranks);
    for p in &a.ranks {
        // The wait-kind buckets partition the measured wait...
        let buckets =
            p.late_sender_ns + p.late_receiver_ns + p.barrier_ns + p.quiet_ns + p.overhead_ns;
        prop_assert_eq!(
            buckets,
            p.total_wait_ns,
            "rank {}: kind buckets {} != total wait {}",
            p.rank,
            buckets,
            p.total_wait_ns
        );
        // ...and so does the per-culprit blame vector.
        let blamed: u64 = p.blame.iter().sum();
        prop_assert_eq!(
            blamed,
            p.total_wait_ns,
            "rank {}: blame sum {} != total wait {}",
            p.rank,
            blamed,
            p.total_wait_ns
        );
    }
    // Interval decomposition re-aggregates to the same totals.
    for r in 0..nranks {
        let from_intervals: u64 = a
            .intervals
            .iter()
            .filter(|iv| iv.rank == r)
            .map(|iv| iv.blocked_ns + iv.overhead_ns)
            .sum();
        prop_assert_eq!(from_intervals, a.ranks[r].total_wait_ns);
    }
    // The critical path is inside the run, ordered, and ends at the makespan.
    for s in &a.critical_path {
        prop_assert!(s.start <= s.end);
        prop_assert!(s.end <= a.makespan);
    }
    for w in a.critical_path.windows(2) {
        prop_assert!(w[0].end <= w[1].end, "path ends not monotone");
    }
    if a.makespan > Time::ZERO {
        prop_assert!(!a.critical_path.is_empty());
        prop_assert_eq!(a.critical_path.last().expect("non-empty").end, a.makespan);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn blame_partitions_wait_and_profiles_agree_across_engines(
        nranks in 2usize..=5,
        rounds in proptest::collection::vec(round_strategy(), 1..6),
    ) {
        let (trace, metrics, finals) = run_observed(nranks, &rounds, ExecPolicy::threads());
        let analysis = analyze(&trace, nranks, &finals);
        check_invariants(&analysis, nranks)?;
        // The backward walk consumes each event at most once.
        prop_assert!(analysis.critical_path.len() <= trace.len() + nranks + 1);

        // The serialized profile passes its own validator (which re-derives
        // the blame invariant from the document).
        let doc = profile_json("prop", &[], &analysis, &metrics);
        let problems = validate_profile(&doc);
        prop_assert!(problems.is_empty(), "profile invalid: {:?}", problems);
        let rendered = doc.render();

        // Engine invariance: the whole observability pipeline is a pure
        // function of virtual time, so the rendered profile is identical
        // under the bounded scheduler at any width.
        for workers in [1usize, 3] {
            let (t2, m2, f2) = run_observed(nranks, &rounds, ExecPolicy::bounded(workers));
            let a2 = analyze(&t2, nranks, &f2);
            let r2 = profile_json("prop", &[], &a2, &m2).render();
            prop_assert_eq!(&rendered, &r2, "profile differs under bounded({})", workers);
        }
    }
}
