//! Cross-link between static analysis and dynamic observability: commlint
//! diagnostics, the pragma front-end's per-directive reports, and runtime
//! trace spans all carry the same `SiteId` namespace, so a lint finding
//! joins directly to the profile rows of the directive it flagged.

use std::collections::BTreeSet;

use commint::prelude::*;
use commlint::{json::render_json, lint_source, scan_annotations, LintOptions};
use integration::with_world_session_observed;
use pragma_front::{parse, Item, SymbolTable};

/// The CI006 fixture: a two-p2p ring region whose sync consolidation would
/// be unsafe (`b` is written by site 1 and read by site 2). It lints with a
/// site-carrying warning *and* executes fine under per-call sync placement,
/// which makes it the ideal join witness.
const SRC: &str = include_str!("lint_fixtures/ci006_consolidation.comm");

fn symbols() -> SymbolTable {
    let mut s = SymbolTable::new();
    commlint::apply_decls(&mut s, &scan_annotations(SRC));
    s
}

#[test]
fn lint_sites_join_runtime_trace_sites() {
    // Static side: the lint report attaches the finding to a site, and the
    // JSON rendering exposes it for external joins.
    let report = lint_source(SRC, &symbols(), &LintOptions::default()).expect("fixture parses");
    let diag = report
        .diags
        .iter()
        .find(|d| d.code.code() == "CI006")
        .expect("fixture trips CI006");
    let lint_site = diag.site.expect("CI006 carries the conflicting p2p site");
    let json = render_json(&[("ci006_consolidation.comm".to_string(), report.clone())]);
    assert!(
        json.contains(&format!("\"site\": {lint_site}")),
        "lint JSON does not expose the site id:\n{json}"
    );

    // The front-end assigns directive sites ordinally; collect them.
    let parsed = parse(SRC, &symbols()).expect("fixture parses");
    let Item::Region(region) = &parsed.items[0] else {
        panic!("expected a region");
    };
    let static_sites: BTreeSet<u32> = region.body.iter().map(|p| p.site).collect();
    assert!(
        static_sites.contains(&lint_site),
        "lint site is a directive site"
    );

    // Dynamic side: execute the same parsed program with tracing on,
    // tagging each call with its parsed site (the pragmacc-generated code
    // does the same), and join the namespaces through the trace.
    let region = region.clone();
    let res = with_world_session_observed(4, move |s| {
        let me = s.rank() as f64;
        let a = [me; 8];
        let mut b = [0f64; 8];
        let mut c = [0f64; 8];
        let mut params = CommParams::new();
        params.clauses = region.clauses.clone();
        s.region(&params, |reg| {
            reg.p2p()
                .site(region.body[0].site)
                .sbuf(Prim::new("a", &a))
                .rbuf(PrimMut::new("b", &mut b))
                .run()
                .unwrap();
            reg.p2p()
                .site(region.body[1].site)
                .sbuf(Prim::new("b", &b))
                .rbuf(PrimMut::new("c", &mut c))
                .run()
                .unwrap();
        })
        .unwrap();
        (b[0], c[0])
    });

    let trace = res.trace.expect("trace enabled");
    let runtime_sites: BTreeSet<u32> = trace.iter().filter_map(|e| e.site).collect();
    assert_eq!(
        runtime_sites, static_sites,
        "runtime trace sites must be exactly the front-end's directive sites"
    );

    // The flagged directive produced site-attributed metrics rows too.
    let metrics = res.metrics.expect("metrics enabled");
    assert!(
        metrics
            .iter()
            .any(|m| m.sites.iter().any(|sm| sm.site == lint_site)),
        "no metrics attributed to the linted site {lint_site}"
    );

    // And the program really ran: a ring shift of `a` into `b`, then of the
    // received `b` into `c`.
    let n = res.per_rank.len() as f64;
    for (rank, &(b0, c0)) in res.per_rank.iter().enumerate() {
        let left = (rank as f64 + n - 1.0) % n;
        assert_eq!(b0, left, "rank {rank}: b holds the left neighbour's a");
        let _ = c0;
    }
}
