//! Property tests for differential profiling (commdiff): diffing a profile
//! against itself is exactly zero, diffs between *different* randomized
//! workloads still account exactly (per-site deltas sum to the whole-run
//! delta for every tracked field), and diffs are engine-invariant because
//! the profiles they join are.

use commscope::{diff_is_zero, diff_profiles, profile_json, render_diff_text, validate_diff, Json};
use netsim::{run, ExecPolicy, SimConfig, SrcSel, TagSel, Time};
use proptest::prelude::*;

/// One communication round every rank executes (rounds are matched by
/// construction, so any script is deadlock-free). Mirrors the
/// `prop_waitstate` generator: mixed two-sided traffic, fan-in waitalls,
/// barriers, and rank-skewed compute that manufactures real late senders.
#[derive(Clone, Debug)]
enum Round {
    RingShift { tag: i32, len: usize },
    FanIn { len: usize },
    Barrier,
    Skew { ns: u64 },
}

fn round_strategy() -> impl Strategy<Value = Round> {
    prop_oneof![
        (0..4i32, 1..96usize).prop_map(|(tag, len)| Round::RingShift { tag, len }),
        (1..64usize).prop_map(|len| Round::FanIn { len }),
        Just(Round::Barrier),
        (1..5000u64).prop_map(|ns| Round::Skew { ns }),
    ]
}

/// Run the scripted workload observed and render its profile document.
fn profile_of(nranks: usize, rounds: &[Round], exec: ExecPolicy, label: &str) -> Json {
    let rounds = rounds.to_vec();
    let res = run(
        SimConfig::new(nranks)
            .with_exec(exec)
            .with_trace()
            .with_metrics(),
        move |ctx| {
            let model = ctx.machine().mpi;
            let me = ctx.rank();
            let n = ctx.nranks();
            for (k, round) in rounds.iter().enumerate() {
                match round {
                    Round::RingShift { tag, len } => {
                        let payload = vec![(me + k) as u8; *len];
                        let req = ctx.isend((me + 1) % n, *tag, &payload, &model);
                        ctx.recv(SrcSel::Exact((me + n - 1) % n), TagSel::Exact(*tag), &model);
                        ctx.wait_send(&req, &model);
                    }
                    Round::FanIn { len } => {
                        let tag = 1000 + k as i32;
                        if me == 0 {
                            let reqs: Vec<_> = (1..n)
                                .map(|src| {
                                    ctx.irecv(SrcSel::Exact(src), TagSel::Exact(tag), &model)
                                })
                                .collect();
                            ctx.waitall(&[], &reqs, &model);
                        } else {
                            ctx.send(0, tag, &vec![me as u8; *len], &model);
                        }
                    }
                    Round::Barrier => ctx.barrier(&model),
                    Round::Skew { ns } => {
                        ctx.compute(Time::from_nanos(ns * (me as u64 + 1)));
                    }
                }
            }
        },
    );
    let trace = res.trace.expect("trace enabled");
    let metrics = res.metrics.expect("metrics enabled");
    let analysis = commscope::analyze(&trace, nranks, &res.final_times);
    profile_json(label, &[], &analysis, &metrics)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// diff(A, A) is exactly zero — every delta field, every site row —
    /// and the document passes its own validator. Diffing the profile of
    /// the same workload under a different engine is also exactly zero,
    /// because profiles are pure functions of virtual time.
    #[test]
    fn self_diff_is_exactly_zero(
        nranks in 2usize..=5,
        rounds in proptest::collection::vec(round_strategy(), 1..6),
    ) {
        let a = profile_of(nranks, &rounds, ExecPolicy::threads(), "prop");
        let d = diff_profiles(&a, &a).unwrap();
        let problems = validate_diff(&d);
        prop_assert!(problems.is_empty(), "self-diff invalid: {:?}", problems);
        prop_assert!(diff_is_zero(&d), "self-diff not zero: {}", d.render());

        let b = profile_of(nranks, &rounds, ExecPolicy::bounded(3), "prop");
        let cross = diff_profiles(&a, &b).unwrap();
        prop_assert!(
            diff_is_zero(&cross),
            "cross-engine diff not zero: {}",
            cross.render()
        );
    }

    /// Diffs between two different workloads account exactly: the validator
    /// is clean, and an independent re-derivation of the headline wait
    /// delta (sum of per-site rows) matches the reported total.
    #[test]
    fn deltas_account_exactly_between_runs(
        nranks in 2usize..=5,
        rounds_a in proptest::collection::vec(round_strategy(), 1..5),
        rounds_b in proptest::collection::vec(round_strategy(), 1..5),
    ) {
        let a = profile_of(nranks, &rounds_a, ExecPolicy::threads(), "base");
        let b = profile_of(nranks, &rounds_b, ExecPolicy::threads(), "cand");
        let d = diff_profiles(&a, &b).unwrap();
        let problems = validate_diff(&d);
        prop_assert!(problems.is_empty(), "diff invalid: {:?}", problems);

        // Independent accounting check, not via validate_diff: per-site
        // wait deltas must sum to the delta object's headline.
        let sites = d.get("sites").and_then(Json::as_arr).expect("sites");
        let sum: i64 = sites
            .iter()
            .map(|r| r.get("total_wait_ns").and_then(Json::as_i64).unwrap_or(0))
            .sum();
        let headline = d
            .get("delta")
            .and_then(|x| x.get("total_wait_ns"))
            .and_then(Json::as_i64)
            .expect("delta.total_wait_ns");
        prop_assert_eq!(sum, headline, "site rows do not partition the delta");

        // The headline also reconciles with the input profiles' own
        // per-rank totals (candidate minus baseline).
        let profile_wait = |doc: &Json| -> i64 {
            doc.get("wait")
                .and_then(|w| w.get("per_rank"))
                .and_then(Json::as_arr)
                .expect("per_rank")
                .iter()
                .map(|r| r.get("total_wait_ns").and_then(Json::as_i64).unwrap_or(0))
                .sum()
        };
        prop_assert_eq!(profile_wait(&b) - profile_wait(&a), headline);

        // The text report renders and names both sides.
        let text = render_diff_text(&d);
        prop_assert!(text.contains("commdiff: base"));
        prop_assert!(text.contains("-> cand"));
    }
}
