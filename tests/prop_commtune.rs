//! Property tests for tuning overlays: an all-`Keep` overlay is
//! behaviorally inert (bit-identical results across engines, identical to
//! running with no overlay at all), and coalescing overlays preserve
//! per-rank delivered-byte totals and payload content on randomized p2p
//! workloads — batching changes *when* bytes move, never *what* arrives.

use commint::prelude::*;
use commint::{Decision, Overlay, SiteDecision};
use mpisim::Comm;
use netsim::{run, ExecPolicy, SimConfig};
use proptest::prelude::*;

/// One directive region: rank 0 streams `iters` pieces of `count` i64s to
/// `dst` under `target`. Sites are unique per round (staging is per-site).
#[derive(Clone, Debug)]
struct Round {
    dst: usize,
    iters: usize,
    count: usize,
    shmem: bool,
    batch: Option<usize>,
}

fn round_strategy() -> impl Strategy<Value = Round> {
    (
        1..5usize,
        1..8usize,
        1..5usize,
        any::<bool>(),
        prop_oneof![Just(None), (2..6usize).prop_map(Some)],
    )
        .prop_map(|(dst, iters, count, shmem, batch)| Round {
            dst,
            iters,
            count,
            shmem,
            batch,
        })
}

/// Overlay for the script: per-round coalesce decisions (when enabled),
/// plus explicit keeps so every site is covered by a decision.
fn overlay_for(rounds: &[Round], coalesce: bool) -> Overlay {
    let mut ov = Overlay::default();
    for (k, r) in rounds.iter().enumerate() {
        let site = 100 + k as u32;
        let decision = match r.batch {
            Some(b) if coalesce => Decision::Coalesce { batch: b },
            _ => Decision::Keep,
        };
        ov.set(SiteDecision::new(site, decision));
    }
    ov
}

/// Run the script; returns per-rank (delivered bytes, content checksum,
/// final virtual time ns).
fn run_script(
    nranks: usize,
    rounds: &[Round],
    exec: ExecPolicy,
    overlay: Option<Overlay>,
) -> Vec<(u64, u64, u64)> {
    let rounds = rounds.to_vec();
    let res = run(SimConfig::new(nranks).with_exec(exec), move |ctx| {
        let comm = Comm::world(ctx);
        let mut session = CommSession::new(ctx, comm).without_ir();
        if let Some(ov) = overlay.clone() {
            session = session.with_overlay(ov);
        }
        let me = session.rank();
        let n = session.size();
        let mut delivered: u64 = 0;
        let mut check: u64 = 0;
        let mix = |v: u64, check: &mut u64| {
            *check = check.wrapping_mul(1099511628211).wrapping_add(v);
        };
        // Buffers live for the whole run and are reused across iterations:
        // buffer-reuse conflict syncs must fire on the same iterations in
        // every engine, which heap churn (allocator address recycling)
        // would make nondeterministic.
        let mut sbufs: Vec<Vec<i64>> = rounds.iter().map(|r| vec![0i64; r.count]).collect();
        let mut dbufs: Vec<Vec<i64>> = rounds.iter().map(|r| vec![0i64; r.count]).collect();
        for (k, r) in rounds.iter().enumerate() {
            let dst = r.dst % n;
            if dst == 0 {
                continue; // self-sends are rejected by validation
            }
            let site = 100 + k as u32;
            let sb = &mut sbufs[k];
            let db = &mut dbufs[k];
            let params = CommParams::new()
                .sender(RankExpr::lit(0))
                .receiver(RankExpr::lit(dst as i64))
                .sendwhen(RankExpr::rank().eq(RankExpr::lit(0)))
                .receivewhen(RankExpr::rank().eq(RankExpr::lit(dst as i64)))
                .target(if r.shmem {
                    Target::Shmem
                } else {
                    Target::Mpi2Side
                })
                .max_comm_iter(r.iters as i64);
            session
                .region(&params, |reg| {
                    for i in 0..r.iters {
                        for (j, v) in sb.iter_mut().enumerate() {
                            *v = (k * 1000 + i * 10 + j) as i64;
                        }
                        reg.p2p()
                            .site(site)
                            .sbuf(Prim::new("src", &sb[..]))
                            .rbuf(PrimMut::new("dbuf", &mut db[..]))
                            .run()
                            .unwrap();
                        if me == dst {
                            delivered += (db.len() * 8) as u64;
                            for v in db.iter() {
                                mix(*v as u64, &mut check);
                            }
                        }
                    }
                })
                .unwrap();
        }
        session.flush();
        (delivered, check, ctx.now().as_nanos())
    });
    res.per_rank
        .into_iter()
        .zip(res.final_times)
        .map(|((d, c, _), t)| (d, c, t.as_nanos()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// An overlay of all-`Keep` decisions reproduces bit-identical results
    /// (payloads AND virtual times) vs no overlay, across engines.
    #[test]
    fn keep_overlay_is_bit_identical(
        nranks in 2usize..=5,
        rounds in proptest::collection::vec(round_strategy(), 1..5),
    ) {
        let ncpu = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
        let reference = run_script(nranks, &rounds, ExecPolicy::threads(), None);
        let keep = overlay_for(&rounds, false);
        for workers in [0usize, 1, ncpu] {
            let exec = if workers == 0 { ExecPolicy::threads() } else { ExecPolicy::bounded(workers) };
            let got = run_script(nranks, &rounds, exec, Some(keep.clone()));
            prop_assert_eq!(
                &reference, &got,
                "all-keep overlay diverged (workers={}) on {:?}", workers, rounds
            );
        }
    }

    /// Coalescing overlays preserve per-rank delivered-byte totals and
    /// payload content; the coalesced run itself is engine-invariant.
    #[test]
    fn coalescing_preserves_payloads(
        nranks in 2usize..=5,
        rounds in proptest::collection::vec(round_strategy(), 1..5),
    ) {
        let baseline = run_script(nranks, &rounds, ExecPolicy::threads(), None);
        let ov = overlay_for(&rounds, true);
        let tuned = run_script(nranks, &rounds, ExecPolicy::threads(), Some(ov.clone()));
        for (r, (b, t)) in baseline.iter().zip(&tuned).enumerate() {
            prop_assert_eq!(b.0, t.0, "rank {} delivered bytes changed on {:?}", r, rounds);
            prop_assert_eq!(b.1, t.1, "rank {} payload content changed on {:?}", r, rounds);
        }
        let ncpu = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
        for workers in [1usize, ncpu] {
            let got = run_script(nranks, &rounds, ExecPolicy::bounded(workers), Some(ov.clone()));
            prop_assert_eq!(
                &tuned, &got,
                "coalesced run diverged under bounded({}) on {:?}", workers, rounds
            );
        }
    }
}
