//! Golden-file tests for the commdiff exporter: a deterministic synthetic
//! baseline/candidate profile pair (matched, added, removed, and
//! unattributed sites all present) produces byte-stable diff JSON and text
//! reports. The input profiles are golden-checked too, so a profile-schema
//! drift shows up here before it silently re-blesses the diff.
//!
//! Regenerate after an intentional output change with
//! `BLESS=1 cargo test -p integration --test commdiff_golden`.

use std::path::PathBuf;

use commscope::{
    analyze, diff_is_zero, diff_profiles, profile_json, render_diff_text, validate_diff,
    validate_profile, Json,
};
use netsim::{EventKind, RankMetrics, Time, TraceEvent};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/diff_golden")
}

fn check_golden(name: &str, text: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, text).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read golden {name}: {e} (run with BLESS=1 to create)"));
    assert_eq!(
        text, want,
        "{name}: output drifted from golden (run with BLESS=1 after intentional changes)"
    );
}

fn quiet(rank: usize, site: Option<u32>, start: u64, end: u64) -> TraceEvent {
    TraceEvent {
        rank,
        time: Time(end),
        start: Time(start),
        site,
        kind: EventKind::Quiet {
            outstanding: 1,
            horizon: Time(end.saturating_sub(5)),
        },
    }
}

fn metrics(sends: &[(u32, u64, usize)]) -> Vec<RankMetrics> {
    let mut m = RankMetrics::default();
    for &(site, n, bytes) in sends {
        for _ in 0..n {
            m.on_send(bytes, Some(site));
        }
    }
    // One send outside any directive site: lands on the diff's
    // unattributed pseudo-site via the traffic remainder.
    m.on_send(8, None);
    vec![m]
}

/// Baseline: wait on sites 1 and 2 plus an unattributed tail.
fn baseline() -> Json {
    let evs = vec![
        quiet(0, Some(1), 10, 50),
        quiet(0, Some(2), 60, 90),
        quiet(0, None, 95, 100),
    ];
    let a = analyze(&evs, 1, &[Time(100)]);
    profile_json(
        "diff-golden-base",
        &[("case".into(), 1)],
        &a,
        &metrics(&[(1, 3, 64), (2, 1, 128)]),
    )
}

/// Candidate: site 1 got faster, site 2 disappeared, site 3 appeared.
fn candidate() -> Json {
    let evs = vec![
        quiet(0, Some(1), 10, 40),
        quiet(0, Some(3), 50, 70),
        quiet(0, None, 75, 95),
    ];
    let a = analyze(&evs, 1, &[Time(95)]);
    profile_json(
        "diff-golden-cand",
        &[("case".into(), 2)],
        &a,
        &metrics(&[(1, 2, 64), (3, 2, 32)]),
    )
}

#[test]
fn diff_outputs_match_goldens() {
    let base = baseline();
    let cand = candidate();
    for (name, doc) in [("base", &base), ("cand", &cand)] {
        let problems = validate_profile(doc);
        assert!(problems.is_empty(), "{name} profile invalid: {problems:?}");
    }
    check_golden("base.profile.json", &base.render());
    check_golden("cand.profile.json", &cand.render());

    let diff = diff_profiles(&base, &cand).expect("diff fixtures");
    let problems = validate_diff(&diff);
    assert!(problems.is_empty(), "diff invalid: {problems:?}");
    assert!(!diff_is_zero(&diff));

    // The fixture pair exercises every join status.
    let status_of = |site: i64| -> String {
        diff.get("sites")
            .and_then(Json::as_arr)
            .and_then(|rows| {
                rows.iter()
                    .find(|r| r.get("site").and_then(Json::as_i64) == Some(site))
            })
            .and_then(|r| r.get("status"))
            .and_then(Json::as_str)
            .unwrap_or("missing")
            .to_string()
    };
    assert_eq!(status_of(1), "matched");
    assert_eq!(status_of(2), "removed");
    assert_eq!(status_of(3), "added");
    assert_eq!(status_of(commscope::UNATTRIBUTED_SITE), "matched");

    check_golden("diff.json", &diff.render());
    check_golden("diff.txt", &render_diff_text(&diff));
}

#[test]
fn self_diff_of_fixture_is_zero() {
    let base = baseline();
    let d = diff_profiles(&base, &base).expect("self-diff");
    assert!(validate_diff(&d).is_empty());
    assert!(diff_is_zero(&d));
}
