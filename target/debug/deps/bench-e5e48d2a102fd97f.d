/root/repo/target/debug/deps/bench-e5e48d2a102fd97f.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-e5e48d2a102fd97f.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
