/root/repo/target/debug/deps/wl_lsms_equivalence-6a5cc42a2a908ac7.d: crates/integration/../../tests/wl_lsms_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libwl_lsms_equivalence-6a5cc42a2a908ac7.rmeta: crates/integration/../../tests/wl_lsms_equivalence.rs Cargo.toml

crates/integration/../../tests/wl_lsms_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
