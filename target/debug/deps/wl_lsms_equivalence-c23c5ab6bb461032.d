/root/repo/target/debug/deps/wl_lsms_equivalence-c23c5ab6bb461032.d: crates/integration/../../tests/wl_lsms_equivalence.rs

/root/repo/target/debug/deps/wl_lsms_equivalence-c23c5ab6bb461032: crates/integration/../../tests/wl_lsms_equivalence.rs

crates/integration/../../tests/wl_lsms_equivalence.rs:
