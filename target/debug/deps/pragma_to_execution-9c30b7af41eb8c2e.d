/root/repo/target/debug/deps/pragma_to_execution-9c30b7af41eb8c2e.d: crates/integration/../../tests/pragma_to_execution.rs

/root/repo/target/debug/deps/pragma_to_execution-9c30b7af41eb8c2e: crates/integration/../../tests/pragma_to_execution.rs

crates/integration/../../tests/pragma_to_execution.rs:
