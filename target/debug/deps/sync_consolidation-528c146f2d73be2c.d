/root/repo/target/debug/deps/sync_consolidation-528c146f2d73be2c.d: crates/integration/../../tests/sync_consolidation.rs

/root/repo/target/debug/deps/sync_consolidation-528c146f2d73be2c: crates/integration/../../tests/sync_consolidation.rs

crates/integration/../../tests/sync_consolidation.rs:
