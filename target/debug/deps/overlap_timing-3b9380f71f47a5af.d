/root/repo/target/debug/deps/overlap_timing-3b9380f71f47a5af.d: crates/integration/../../tests/overlap_timing.rs Cargo.toml

/root/repo/target/debug/deps/liboverlap_timing-3b9380f71f47a5af.rmeta: crates/integration/../../tests/overlap_timing.rs Cargo.toml

crates/integration/../../tests/overlap_timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
