/root/repo/target/debug/deps/ring_all_targets-d54939247dcfd5a2.d: crates/integration/../../tests/ring_all_targets.rs Cargo.toml

/root/repo/target/debug/deps/libring_all_targets-d54939247dcfd5a2.rmeta: crates/integration/../../tests/ring_all_targets.rs Cargo.toml

crates/integration/../../tests/ring_all_targets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
