/root/repo/target/debug/deps/wl_lsms-98952ea1a2206d41.d: crates/wl-lsms/src/lib.rs crates/wl-lsms/src/atom.rs crates/wl-lsms/src/atom_comm.rs crates/wl-lsms/src/core_states.rs crates/wl-lsms/src/experiments.rs crates/wl-lsms/src/matrix.rs crates/wl-lsms/src/spin.rs crates/wl-lsms/src/topology.rs crates/wl-lsms/src/wang_landau.rs

/root/repo/target/debug/deps/libwl_lsms-98952ea1a2206d41.rlib: crates/wl-lsms/src/lib.rs crates/wl-lsms/src/atom.rs crates/wl-lsms/src/atom_comm.rs crates/wl-lsms/src/core_states.rs crates/wl-lsms/src/experiments.rs crates/wl-lsms/src/matrix.rs crates/wl-lsms/src/spin.rs crates/wl-lsms/src/topology.rs crates/wl-lsms/src/wang_landau.rs

/root/repo/target/debug/deps/libwl_lsms-98952ea1a2206d41.rmeta: crates/wl-lsms/src/lib.rs crates/wl-lsms/src/atom.rs crates/wl-lsms/src/atom_comm.rs crates/wl-lsms/src/core_states.rs crates/wl-lsms/src/experiments.rs crates/wl-lsms/src/matrix.rs crates/wl-lsms/src/spin.rs crates/wl-lsms/src/topology.rs crates/wl-lsms/src/wang_landau.rs

crates/wl-lsms/src/lib.rs:
crates/wl-lsms/src/atom.rs:
crates/wl-lsms/src/atom_comm.rs:
crates/wl-lsms/src/core_states.rs:
crates/wl-lsms/src/experiments.rs:
crates/wl-lsms/src/matrix.rs:
crates/wl-lsms/src/spin.rs:
crates/wl-lsms/src/topology.rs:
crates/wl-lsms/src/wang_landau.rs:
