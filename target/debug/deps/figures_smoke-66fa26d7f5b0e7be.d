/root/repo/target/debug/deps/figures_smoke-66fa26d7f5b0e7be.d: crates/integration/../../tests/figures_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libfigures_smoke-66fa26d7f5b0e7be.rmeta: crates/integration/../../tests/figures_smoke.rs Cargo.toml

crates/integration/../../tests/figures_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
