/root/repo/target/debug/deps/shmemsim-a1a4842fd9d6eeac.d: crates/shmemsim/src/lib.rs

/root/repo/target/debug/deps/libshmemsim-a1a4842fd9d6eeac.rlib: crates/shmemsim/src/lib.rs

/root/repo/target/debug/deps/libshmemsim-a1a4842fd9d6eeac.rmeta: crates/shmemsim/src/lib.rs

crates/shmemsim/src/lib.rs:
