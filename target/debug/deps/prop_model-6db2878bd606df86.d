/root/repo/target/debug/deps/prop_model-6db2878bd606df86.d: crates/integration/../../tests/prop_model.rs Cargo.toml

/root/repo/target/debug/deps/libprop_model-6db2878bd606df86.rmeta: crates/integration/../../tests/prop_model.rs Cargo.toml

crates/integration/../../tests/prop_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
