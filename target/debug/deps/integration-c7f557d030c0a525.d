/root/repo/target/debug/deps/integration-c7f557d030c0a525.d: crates/integration/src/lib.rs

/root/repo/target/debug/deps/libintegration-c7f557d030c0a525.rlib: crates/integration/src/lib.rs

/root/repo/target/debug/deps/libintegration-c7f557d030c0a525.rmeta: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
