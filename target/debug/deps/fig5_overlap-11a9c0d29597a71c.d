/root/repo/target/debug/deps/fig5_overlap-11a9c0d29597a71c.d: crates/bench/benches/fig5_overlap.rs

/root/repo/target/debug/deps/libfig5_overlap-11a9c0d29597a71c.rmeta: crates/bench/benches/fig5_overlap.rs

crates/bench/benches/fig5_overlap.rs:
