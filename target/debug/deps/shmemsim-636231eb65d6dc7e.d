/root/repo/target/debug/deps/shmemsim-636231eb65d6dc7e.d: crates/shmemsim/src/lib.rs

/root/repo/target/debug/deps/shmemsim-636231eb65d6dc7e: crates/shmemsim/src/lib.rs

crates/shmemsim/src/lib.rs:
