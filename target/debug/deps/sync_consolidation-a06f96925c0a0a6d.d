/root/repo/target/debug/deps/sync_consolidation-a06f96925c0a0a6d.d: crates/integration/../../tests/sync_consolidation.rs

/root/repo/target/debug/deps/sync_consolidation-a06f96925c0a0a6d: crates/integration/../../tests/sync_consolidation.rs

crates/integration/../../tests/sync_consolidation.rs:
