/root/repo/target/debug/deps/prop_matching-072bad05d53e4641.d: crates/integration/../../tests/prop_matching.rs Cargo.toml

/root/repo/target/debug/deps/libprop_matching-072bad05d53e4641.rmeta: crates/integration/../../tests/prop_matching.rs Cargo.toml

crates/integration/../../tests/prop_matching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
