/root/repo/target/debug/deps/commint-a9998c7689e57645.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/buffer.rs crates/core/src/clause.rs crates/core/src/coll.rs crates/core/src/diag.rs crates/core/src/dir.rs crates/core/src/expr.rs crates/core/src/lower.rs crates/core/src/macros.rs crates/core/src/patterns.rs crates/core/src/scope.rs crates/core/src/traceview.rs

/root/repo/target/debug/deps/libcommint-a9998c7689e57645.rlib: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/buffer.rs crates/core/src/clause.rs crates/core/src/coll.rs crates/core/src/diag.rs crates/core/src/dir.rs crates/core/src/expr.rs crates/core/src/lower.rs crates/core/src/macros.rs crates/core/src/patterns.rs crates/core/src/scope.rs crates/core/src/traceview.rs

/root/repo/target/debug/deps/libcommint-a9998c7689e57645.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/buffer.rs crates/core/src/clause.rs crates/core/src/coll.rs crates/core/src/diag.rs crates/core/src/dir.rs crates/core/src/expr.rs crates/core/src/lower.rs crates/core/src/macros.rs crates/core/src/patterns.rs crates/core/src/scope.rs crates/core/src/traceview.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/buffer.rs:
crates/core/src/clause.rs:
crates/core/src/coll.rs:
crates/core/src/diag.rs:
crates/core/src/dir.rs:
crates/core/src/expr.rs:
crates/core/src/lower.rs:
crates/core/src/macros.rs:
crates/core/src/patterns.rs:
crates/core/src/scope.rs:
crates/core/src/traceview.rs:
