/root/repo/target/debug/deps/commlint-1cf93e64426b28cb.d: crates/commlint/src/bin/commlint.rs

/root/repo/target/debug/deps/commlint-1cf93e64426b28cb: crates/commlint/src/bin/commlint.rs

crates/commlint/src/bin/commlint.rs:
