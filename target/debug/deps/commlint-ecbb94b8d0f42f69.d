/root/repo/target/debug/deps/commlint-ecbb94b8d0f42f69.d: crates/commlint/src/bin/commlint.rs Cargo.toml

/root/repo/target/debug/deps/libcommlint-ecbb94b8d0f42f69.rmeta: crates/commlint/src/bin/commlint.rs Cargo.toml

crates/commlint/src/bin/commlint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
