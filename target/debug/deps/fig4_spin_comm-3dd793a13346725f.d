/root/repo/target/debug/deps/fig4_spin_comm-3dd793a13346725f.d: crates/bench/benches/fig4_spin_comm.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_spin_comm-3dd793a13346725f.rmeta: crates/bench/benches/fig4_spin_comm.rs Cargo.toml

crates/bench/benches/fig4_spin_comm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
