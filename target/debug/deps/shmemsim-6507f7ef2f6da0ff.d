/root/repo/target/debug/deps/shmemsim-6507f7ef2f6da0ff.d: crates/shmemsim/src/lib.rs

/root/repo/target/debug/deps/libshmemsim-6507f7ef2f6da0ff.rmeta: crates/shmemsim/src/lib.rs

crates/shmemsim/src/lib.rs:
