/root/repo/target/debug/deps/commlint_golden-c7b945e22833b41d.d: crates/integration/../../tests/commlint_golden.rs

/root/repo/target/debug/deps/commlint_golden-c7b945e22833b41d: crates/integration/../../tests/commlint_golden.rs

crates/integration/../../tests/commlint_golden.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/integration
