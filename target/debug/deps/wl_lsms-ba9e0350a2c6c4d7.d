/root/repo/target/debug/deps/wl_lsms-ba9e0350a2c6c4d7.d: crates/wl-lsms/src/lib.rs crates/wl-lsms/src/atom.rs crates/wl-lsms/src/atom_comm.rs crates/wl-lsms/src/core_states.rs crates/wl-lsms/src/experiments.rs crates/wl-lsms/src/matrix.rs crates/wl-lsms/src/spin.rs crates/wl-lsms/src/topology.rs crates/wl-lsms/src/wang_landau.rs Cargo.toml

/root/repo/target/debug/deps/libwl_lsms-ba9e0350a2c6c4d7.rmeta: crates/wl-lsms/src/lib.rs crates/wl-lsms/src/atom.rs crates/wl-lsms/src/atom_comm.rs crates/wl-lsms/src/core_states.rs crates/wl-lsms/src/experiments.rs crates/wl-lsms/src/matrix.rs crates/wl-lsms/src/spin.rs crates/wl-lsms/src/topology.rs crates/wl-lsms/src/wang_landau.rs Cargo.toml

crates/wl-lsms/src/lib.rs:
crates/wl-lsms/src/atom.rs:
crates/wl-lsms/src/atom_comm.rs:
crates/wl-lsms/src/core_states.rs:
crates/wl-lsms/src/experiments.rs:
crates/wl-lsms/src/matrix.rs:
crates/wl-lsms/src/spin.rs:
crates/wl-lsms/src/topology.rs:
crates/wl-lsms/src/wang_landau.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
