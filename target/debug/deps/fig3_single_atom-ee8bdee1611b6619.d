/root/repo/target/debug/deps/fig3_single_atom-ee8bdee1611b6619.d: crates/bench/benches/fig3_single_atom.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_single_atom-ee8bdee1611b6619.rmeta: crates/bench/benches/fig3_single_atom.rs Cargo.toml

crates/bench/benches/fig3_single_atom.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
