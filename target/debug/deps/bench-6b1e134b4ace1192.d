/root/repo/target/debug/deps/bench-6b1e134b4ace1192.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bench-6b1e134b4ace1192: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
