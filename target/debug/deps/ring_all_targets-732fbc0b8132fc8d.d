/root/repo/target/debug/deps/ring_all_targets-732fbc0b8132fc8d.d: crates/integration/../../tests/ring_all_targets.rs

/root/repo/target/debug/deps/ring_all_targets-732fbc0b8132fc8d: crates/integration/../../tests/ring_all_targets.rs

crates/integration/../../tests/ring_all_targets.rs:
