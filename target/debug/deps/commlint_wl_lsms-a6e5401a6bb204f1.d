/root/repo/target/debug/deps/commlint_wl_lsms-a6e5401a6bb204f1.d: crates/integration/../../tests/commlint_wl_lsms.rs

/root/repo/target/debug/deps/commlint_wl_lsms-a6e5401a6bb204f1: crates/integration/../../tests/commlint_wl_lsms.rs

crates/integration/../../tests/commlint_wl_lsms.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/integration
