/root/repo/target/debug/deps/wl_lsms_equivalence-b078335e4db25648.d: crates/integration/../../tests/wl_lsms_equivalence.rs

/root/repo/target/debug/deps/wl_lsms_equivalence-b078335e4db25648: crates/integration/../../tests/wl_lsms_equivalence.rs

crates/integration/../../tests/wl_lsms_equivalence.rs:
