/root/repo/target/debug/deps/commint-4501b0cc3f8717b9.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/buffer.rs crates/core/src/clause.rs crates/core/src/coll.rs crates/core/src/diag.rs crates/core/src/dir.rs crates/core/src/expr.rs crates/core/src/lower.rs crates/core/src/macros.rs crates/core/src/patterns.rs crates/core/src/scope.rs crates/core/src/traceview.rs Cargo.toml

/root/repo/target/debug/deps/libcommint-4501b0cc3f8717b9.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/buffer.rs crates/core/src/clause.rs crates/core/src/coll.rs crates/core/src/diag.rs crates/core/src/dir.rs crates/core/src/expr.rs crates/core/src/lower.rs crates/core/src/macros.rs crates/core/src/patterns.rs crates/core/src/scope.rs crates/core/src/traceview.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/buffer.rs:
crates/core/src/clause.rs:
crates/core/src/coll.rs:
crates/core/src/diag.rs:
crates/core/src/dir.rs:
crates/core/src/expr.rs:
crates/core/src/lower.rs:
crates/core/src/macros.rs:
crates/core/src/patterns.rs:
crates/core/src/scope.rs:
crates/core/src/traceview.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
