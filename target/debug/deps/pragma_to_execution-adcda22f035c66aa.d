/root/repo/target/debug/deps/pragma_to_execution-adcda22f035c66aa.d: crates/integration/../../tests/pragma_to_execution.rs Cargo.toml

/root/repo/target/debug/deps/libpragma_to_execution-adcda22f035c66aa.rmeta: crates/integration/../../tests/pragma_to_execution.rs Cargo.toml

crates/integration/../../tests/pragma_to_execution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
