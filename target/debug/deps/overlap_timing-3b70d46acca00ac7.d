/root/repo/target/debug/deps/overlap_timing-3b70d46acca00ac7.d: crates/integration/../../tests/overlap_timing.rs

/root/repo/target/debug/deps/overlap_timing-3b70d46acca00ac7: crates/integration/../../tests/overlap_timing.rs

crates/integration/../../tests/overlap_timing.rs:
