/root/repo/target/debug/deps/pragma_front-25ac3f9e8998f718.d: crates/pragma-front/src/lib.rs crates/pragma-front/src/lex.rs crates/pragma-front/src/parse.rs

/root/repo/target/debug/deps/pragma_front-25ac3f9e8998f718: crates/pragma-front/src/lib.rs crates/pragma-front/src/lex.rs crates/pragma-front/src/parse.rs

crates/pragma-front/src/lib.rs:
crates/pragma-front/src/lex.rs:
crates/pragma-front/src/parse.rs:
