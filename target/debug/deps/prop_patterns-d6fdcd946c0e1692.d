/root/repo/target/debug/deps/prop_patterns-d6fdcd946c0e1692.d: crates/integration/../../tests/prop_patterns.rs

/root/repo/target/debug/deps/prop_patterns-d6fdcd946c0e1692: crates/integration/../../tests/prop_patterns.rs

crates/integration/../../tests/prop_patterns.rs:
