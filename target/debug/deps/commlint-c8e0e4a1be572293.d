/root/repo/target/debug/deps/commlint-c8e0e4a1be572293.d: crates/commlint/src/lib.rs crates/commlint/src/json.rs Cargo.toml

/root/repo/target/debug/deps/libcommlint-c8e0e4a1be572293.rmeta: crates/commlint/src/lib.rs crates/commlint/src/json.rs Cargo.toml

crates/commlint/src/lib.rs:
crates/commlint/src/json.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
