/root/repo/target/debug/deps/prop_patterns-6541de9726668213.d: crates/integration/../../tests/prop_patterns.rs

/root/repo/target/debug/deps/prop_patterns-6541de9726668213: crates/integration/../../tests/prop_patterns.rs

crates/integration/../../tests/prop_patterns.rs:
