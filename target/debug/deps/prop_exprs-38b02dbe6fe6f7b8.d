/root/repo/target/debug/deps/prop_exprs-38b02dbe6fe6f7b8.d: crates/integration/../../tests/prop_exprs.rs

/root/repo/target/debug/deps/prop_exprs-38b02dbe6fe6f7b8: crates/integration/../../tests/prop_exprs.rs

crates/integration/../../tests/prop_exprs.rs:
