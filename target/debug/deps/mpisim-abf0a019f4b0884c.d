/root/repo/target/debug/deps/mpisim-abf0a019f4b0884c.d: crates/mpisim/src/lib.rs crates/mpisim/src/coll.rs crates/mpisim/src/comm.rs crates/mpisim/src/dtype.rs crates/mpisim/src/pack.rs crates/mpisim/src/pod.rs crates/mpisim/src/win.rs

/root/repo/target/debug/deps/libmpisim-abf0a019f4b0884c.rmeta: crates/mpisim/src/lib.rs crates/mpisim/src/coll.rs crates/mpisim/src/comm.rs crates/mpisim/src/dtype.rs crates/mpisim/src/pack.rs crates/mpisim/src/pod.rs crates/mpisim/src/win.rs

crates/mpisim/src/lib.rs:
crates/mpisim/src/coll.rs:
crates/mpisim/src/comm.rs:
crates/mpisim/src/dtype.rs:
crates/mpisim/src/pack.rs:
crates/mpisim/src/pod.rs:
crates/mpisim/src/win.rs:
