/root/repo/target/debug/deps/fig4-b434b43f9f33d216.d: crates/bench/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-b434b43f9f33d216.rmeta: crates/bench/src/bin/fig4.rs Cargo.toml

crates/bench/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
