/root/repo/target/debug/deps/mpisim-3e63bcb1ac4b64b0.d: crates/mpisim/src/lib.rs crates/mpisim/src/coll.rs crates/mpisim/src/comm.rs crates/mpisim/src/dtype.rs crates/mpisim/src/pack.rs crates/mpisim/src/pod.rs crates/mpisim/src/win.rs

/root/repo/target/debug/deps/libmpisim-3e63bcb1ac4b64b0.rlib: crates/mpisim/src/lib.rs crates/mpisim/src/coll.rs crates/mpisim/src/comm.rs crates/mpisim/src/dtype.rs crates/mpisim/src/pack.rs crates/mpisim/src/pod.rs crates/mpisim/src/win.rs

/root/repo/target/debug/deps/libmpisim-3e63bcb1ac4b64b0.rmeta: crates/mpisim/src/lib.rs crates/mpisim/src/coll.rs crates/mpisim/src/comm.rs crates/mpisim/src/dtype.rs crates/mpisim/src/pack.rs crates/mpisim/src/pod.rs crates/mpisim/src/win.rs

crates/mpisim/src/lib.rs:
crates/mpisim/src/coll.rs:
crates/mpisim/src/comm.rs:
crates/mpisim/src/dtype.rs:
crates/mpisim/src/pack.rs:
crates/mpisim/src/pod.rs:
crates/mpisim/src/win.rs:
