/root/repo/target/debug/deps/fig5-af40f83e6f9b6485.d: crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-af40f83e6f9b6485.rmeta: crates/bench/src/bin/fig5.rs Cargo.toml

crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
