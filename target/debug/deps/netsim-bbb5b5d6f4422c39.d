/root/repo/target/debug/deps/netsim-bbb5b5d6f4422c39.d: crates/netsim/src/lib.rs crates/netsim/src/fabric.rs crates/netsim/src/model.rs crates/netsim/src/msg.rs crates/netsim/src/runtime.rs crates/netsim/src/time.rs crates/netsim/src/trace.rs

/root/repo/target/debug/deps/libnetsim-bbb5b5d6f4422c39.rlib: crates/netsim/src/lib.rs crates/netsim/src/fabric.rs crates/netsim/src/model.rs crates/netsim/src/msg.rs crates/netsim/src/runtime.rs crates/netsim/src/time.rs crates/netsim/src/trace.rs

/root/repo/target/debug/deps/libnetsim-bbb5b5d6f4422c39.rmeta: crates/netsim/src/lib.rs crates/netsim/src/fabric.rs crates/netsim/src/model.rs crates/netsim/src/msg.rs crates/netsim/src/runtime.rs crates/netsim/src/time.rs crates/netsim/src/trace.rs

crates/netsim/src/lib.rs:
crates/netsim/src/fabric.rs:
crates/netsim/src/model.rs:
crates/netsim/src/msg.rs:
crates/netsim/src/runtime.rs:
crates/netsim/src/time.rs:
crates/netsim/src/trace.rs:
