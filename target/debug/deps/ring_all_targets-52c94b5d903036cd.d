/root/repo/target/debug/deps/ring_all_targets-52c94b5d903036cd.d: crates/integration/../../tests/ring_all_targets.rs

/root/repo/target/debug/deps/ring_all_targets-52c94b5d903036cd: crates/integration/../../tests/ring_all_targets.rs

crates/integration/../../tests/ring_all_targets.rs:
