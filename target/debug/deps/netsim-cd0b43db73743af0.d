/root/repo/target/debug/deps/netsim-cd0b43db73743af0.d: crates/netsim/src/lib.rs crates/netsim/src/fabric.rs crates/netsim/src/model.rs crates/netsim/src/msg.rs crates/netsim/src/runtime.rs crates/netsim/src/time.rs crates/netsim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libnetsim-cd0b43db73743af0.rmeta: crates/netsim/src/lib.rs crates/netsim/src/fabric.rs crates/netsim/src/model.rs crates/netsim/src/msg.rs crates/netsim/src/runtime.rs crates/netsim/src/time.rs crates/netsim/src/trace.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/fabric.rs:
crates/netsim/src/model.rs:
crates/netsim/src/msg.rs:
crates/netsim/src/runtime.rs:
crates/netsim/src/time.rs:
crates/netsim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
