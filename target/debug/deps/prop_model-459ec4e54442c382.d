/root/repo/target/debug/deps/prop_model-459ec4e54442c382.d: crates/integration/../../tests/prop_model.rs

/root/repo/target/debug/deps/prop_model-459ec4e54442c382: crates/integration/../../tests/prop_model.rs

crates/integration/../../tests/prop_model.rs:
