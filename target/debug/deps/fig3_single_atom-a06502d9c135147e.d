/root/repo/target/debug/deps/fig3_single_atom-a06502d9c135147e.d: crates/bench/benches/fig3_single_atom.rs

/root/repo/target/debug/deps/libfig3_single_atom-a06502d9c135147e.rmeta: crates/bench/benches/fig3_single_atom.rs

crates/bench/benches/fig3_single_atom.rs:
