/root/repo/target/debug/deps/prop_matching-74952ef57d773b70.d: crates/integration/../../tests/prop_matching.rs

/root/repo/target/debug/deps/prop_matching-74952ef57d773b70: crates/integration/../../tests/prop_matching.rs

crates/integration/../../tests/prop_matching.rs:
