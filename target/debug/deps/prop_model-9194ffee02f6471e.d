/root/repo/target/debug/deps/prop_model-9194ffee02f6471e.d: crates/integration/../../tests/prop_model.rs

/root/repo/target/debug/deps/prop_model-9194ffee02f6471e: crates/integration/../../tests/prop_model.rs

crates/integration/../../tests/prop_model.rs:
