/root/repo/target/debug/deps/figures_smoke-441e7e76f21c0f87.d: crates/integration/../../tests/figures_smoke.rs

/root/repo/target/debug/deps/figures_smoke-441e7e76f21c0f87: crates/integration/../../tests/figures_smoke.rs

crates/integration/../../tests/figures_smoke.rs:
