/root/repo/target/debug/deps/figpoint-242ea03b24027036.d: crates/bench/src/bin/figpoint.rs

/root/repo/target/debug/deps/libfigpoint-242ea03b24027036.rmeta: crates/bench/src/bin/figpoint.rs

crates/bench/src/bin/figpoint.rs:
