/root/repo/target/debug/deps/netsim-e2f7ebc88e9271b1.d: crates/netsim/src/lib.rs crates/netsim/src/fabric.rs crates/netsim/src/model.rs crates/netsim/src/msg.rs crates/netsim/src/runtime.rs crates/netsim/src/time.rs crates/netsim/src/trace.rs

/root/repo/target/debug/deps/netsim-e2f7ebc88e9271b1: crates/netsim/src/lib.rs crates/netsim/src/fabric.rs crates/netsim/src/model.rs crates/netsim/src/msg.rs crates/netsim/src/runtime.rs crates/netsim/src/time.rs crates/netsim/src/trace.rs

crates/netsim/src/lib.rs:
crates/netsim/src/fabric.rs:
crates/netsim/src/model.rs:
crates/netsim/src/msg.rs:
crates/netsim/src/runtime.rs:
crates/netsim/src/time.rs:
crates/netsim/src/trace.rs:
