/root/repo/target/debug/deps/pragma_front-e4b8a4d5a1cf87b9.d: crates/pragma-front/src/lib.rs crates/pragma-front/src/lex.rs crates/pragma-front/src/parse.rs

/root/repo/target/debug/deps/libpragma_front-e4b8a4d5a1cf87b9.rmeta: crates/pragma-front/src/lib.rs crates/pragma-front/src/lex.rs crates/pragma-front/src/parse.rs

crates/pragma-front/src/lib.rs:
crates/pragma-front/src/lex.rs:
crates/pragma-front/src/parse.rs:
