/root/repo/target/debug/deps/pragma_to_execution-44d8f4dbe19df5a6.d: crates/integration/../../tests/pragma_to_execution.rs

/root/repo/target/debug/deps/pragma_to_execution-44d8f4dbe19df5a6: crates/integration/../../tests/pragma_to_execution.rs

crates/integration/../../tests/pragma_to_execution.rs:
