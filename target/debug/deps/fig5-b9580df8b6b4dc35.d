/root/repo/target/debug/deps/fig5-b9580df8b6b4dc35.d: crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-b9580df8b6b4dc35.rmeta: crates/bench/src/bin/fig5.rs Cargo.toml

crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
