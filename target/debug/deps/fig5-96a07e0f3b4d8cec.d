/root/repo/target/debug/deps/fig5-96a07e0f3b4d8cec.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-96a07e0f3b4d8cec: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
