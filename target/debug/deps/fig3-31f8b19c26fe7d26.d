/root/repo/target/debug/deps/fig3-31f8b19c26fe7d26.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-31f8b19c26fe7d26: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
