/root/repo/target/debug/deps/prop_exprs-9e8735268b04d4c9.d: crates/integration/../../tests/prop_exprs.rs

/root/repo/target/debug/deps/prop_exprs-9e8735268b04d4c9: crates/integration/../../tests/prop_exprs.rs

crates/integration/../../tests/prop_exprs.rs:
