/root/repo/target/debug/deps/bench-2a95472df1a5ccfe.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-2a95472df1a5ccfe.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
