/root/repo/target/debug/deps/fig3-eb2b4c004d4ebbd3.d: crates/bench/src/bin/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-eb2b4c004d4ebbd3.rmeta: crates/bench/src/bin/fig3.rs Cargo.toml

crates/bench/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
