/root/repo/target/debug/deps/integration-8a912674e6b6abcf.d: crates/integration/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libintegration-8a912674e6b6abcf.rmeta: crates/integration/src/lib.rs Cargo.toml

crates/integration/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
