/root/repo/target/debug/deps/pragma_front-cc08e838504b9008.d: crates/pragma-front/src/lib.rs crates/pragma-front/src/lex.rs crates/pragma-front/src/parse.rs Cargo.toml

/root/repo/target/debug/deps/libpragma_front-cc08e838504b9008.rmeta: crates/pragma-front/src/lib.rs crates/pragma-front/src/lex.rs crates/pragma-front/src/parse.rs Cargo.toml

crates/pragma-front/src/lib.rs:
crates/pragma-front/src/lex.rs:
crates/pragma-front/src/parse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
