/root/repo/target/debug/deps/fig3-b5208e6ebd25c7b4.d: crates/bench/src/bin/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-b5208e6ebd25c7b4.rmeta: crates/bench/src/bin/fig3.rs Cargo.toml

crates/bench/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
