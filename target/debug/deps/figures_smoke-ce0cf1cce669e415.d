/root/repo/target/debug/deps/figures_smoke-ce0cf1cce669e415.d: crates/integration/../../tests/figures_smoke.rs

/root/repo/target/debug/deps/figures_smoke-ce0cf1cce669e415: crates/integration/../../tests/figures_smoke.rs

crates/integration/../../tests/figures_smoke.rs:
