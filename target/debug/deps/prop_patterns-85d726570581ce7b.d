/root/repo/target/debug/deps/prop_patterns-85d726570581ce7b.d: crates/integration/../../tests/prop_patterns.rs

/root/repo/target/debug/deps/prop_patterns-85d726570581ce7b: crates/integration/../../tests/prop_patterns.rs

crates/integration/../../tests/prop_patterns.rs:
