/root/repo/target/debug/deps/prop_matching-819d1cfebd010c82.d: crates/integration/../../tests/prop_matching.rs

/root/repo/target/debug/deps/prop_matching-819d1cfebd010c82: crates/integration/../../tests/prop_matching.rs

crates/integration/../../tests/prop_matching.rs:
