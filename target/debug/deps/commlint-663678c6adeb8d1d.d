/root/repo/target/debug/deps/commlint-663678c6adeb8d1d.d: crates/commlint/src/bin/commlint.rs

/root/repo/target/debug/deps/commlint-663678c6adeb8d1d: crates/commlint/src/bin/commlint.rs

crates/commlint/src/bin/commlint.rs:
