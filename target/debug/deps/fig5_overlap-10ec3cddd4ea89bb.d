/root/repo/target/debug/deps/fig5_overlap-10ec3cddd4ea89bb.d: crates/bench/benches/fig5_overlap.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_overlap-10ec3cddd4ea89bb.rmeta: crates/bench/benches/fig5_overlap.rs Cargo.toml

crates/bench/benches/fig5_overlap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
