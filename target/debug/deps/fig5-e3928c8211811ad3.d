/root/repo/target/debug/deps/fig5-e3928c8211811ad3.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/libfig5-e3928c8211811ad3.rmeta: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
