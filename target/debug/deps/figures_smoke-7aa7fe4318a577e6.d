/root/repo/target/debug/deps/figures_smoke-7aa7fe4318a577e6.d: crates/integration/../../tests/figures_smoke.rs

/root/repo/target/debug/deps/figures_smoke-7aa7fe4318a577e6: crates/integration/../../tests/figures_smoke.rs

crates/integration/../../tests/figures_smoke.rs:
