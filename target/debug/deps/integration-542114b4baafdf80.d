/root/repo/target/debug/deps/integration-542114b4baafdf80.d: crates/integration/src/lib.rs

/root/repo/target/debug/deps/libintegration-542114b4baafdf80.rlib: crates/integration/src/lib.rs

/root/repo/target/debug/deps/libintegration-542114b4baafdf80.rmeta: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
