/root/repo/target/debug/deps/prop_exprs-bc111384b8382a15.d: crates/integration/../../tests/prop_exprs.rs Cargo.toml

/root/repo/target/debug/deps/libprop_exprs-bc111384b8382a15.rmeta: crates/integration/../../tests/prop_exprs.rs Cargo.toml

crates/integration/../../tests/prop_exprs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
