/root/repo/target/debug/deps/fig5-339bd54390e80cb4.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-339bd54390e80cb4: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
