/root/repo/target/debug/deps/fig3-ef105c56a8bd06fd.d: crates/bench/src/bin/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-ef105c56a8bd06fd.rmeta: crates/bench/src/bin/fig3.rs Cargo.toml

crates/bench/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
