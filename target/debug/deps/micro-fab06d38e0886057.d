/root/repo/target/debug/deps/micro-fab06d38e0886057.d: crates/bench/benches/micro.rs

/root/repo/target/debug/deps/libmicro-fab06d38e0886057.rmeta: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
