/root/repo/target/debug/deps/overlap_timing-2f8cf47dfe0df95b.d: crates/integration/../../tests/overlap_timing.rs

/root/repo/target/debug/deps/overlap_timing-2f8cf47dfe0df95b: crates/integration/../../tests/overlap_timing.rs

crates/integration/../../tests/overlap_timing.rs:
