/root/repo/target/debug/deps/pragmacc-a36b9d2905e2300f.d: crates/pragma-front/src/bin/pragmacc.rs Cargo.toml

/root/repo/target/debug/deps/libpragmacc-a36b9d2905e2300f.rmeta: crates/pragma-front/src/bin/pragmacc.rs Cargo.toml

crates/pragma-front/src/bin/pragmacc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
