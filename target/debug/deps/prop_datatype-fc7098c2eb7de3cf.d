/root/repo/target/debug/deps/prop_datatype-fc7098c2eb7de3cf.d: crates/integration/../../tests/prop_datatype.rs

/root/repo/target/debug/deps/prop_datatype-fc7098c2eb7de3cf: crates/integration/../../tests/prop_datatype.rs

crates/integration/../../tests/prop_datatype.rs:
