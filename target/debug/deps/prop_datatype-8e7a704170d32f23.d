/root/repo/target/debug/deps/prop_datatype-8e7a704170d32f23.d: crates/integration/../../tests/prop_datatype.rs Cargo.toml

/root/repo/target/debug/deps/libprop_datatype-8e7a704170d32f23.rmeta: crates/integration/../../tests/prop_datatype.rs Cargo.toml

crates/integration/../../tests/prop_datatype.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
