/root/repo/target/debug/deps/integration-1b3f6c0ef7164da5.d: crates/integration/src/lib.rs

/root/repo/target/debug/deps/integration-1b3f6c0ef7164da5: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
