/root/repo/target/debug/deps/shmemsim-6a371da2a9df9402.d: crates/shmemsim/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libshmemsim-6a371da2a9df9402.rmeta: crates/shmemsim/src/lib.rs Cargo.toml

crates/shmemsim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
