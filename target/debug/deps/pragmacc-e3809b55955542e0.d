/root/repo/target/debug/deps/pragmacc-e3809b55955542e0.d: crates/pragma-front/src/bin/pragmacc.rs

/root/repo/target/debug/deps/pragmacc-e3809b55955542e0: crates/pragma-front/src/bin/pragmacc.rs

crates/pragma-front/src/bin/pragmacc.rs:
