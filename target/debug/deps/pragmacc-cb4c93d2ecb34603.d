/root/repo/target/debug/deps/pragmacc-cb4c93d2ecb34603.d: crates/pragma-front/src/bin/pragmacc.rs Cargo.toml

/root/repo/target/debug/deps/libpragmacc-cb4c93d2ecb34603.rmeta: crates/pragma-front/src/bin/pragmacc.rs Cargo.toml

crates/pragma-front/src/bin/pragmacc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
