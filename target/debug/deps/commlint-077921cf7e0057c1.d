/root/repo/target/debug/deps/commlint-077921cf7e0057c1.d: crates/commlint/src/lib.rs crates/commlint/src/json.rs Cargo.toml

/root/repo/target/debug/deps/libcommlint-077921cf7e0057c1.rmeta: crates/commlint/src/lib.rs crates/commlint/src/json.rs Cargo.toml

crates/commlint/src/lib.rs:
crates/commlint/src/json.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
