/root/repo/target/debug/deps/integration-c6375c235efba03e.d: crates/integration/src/lib.rs

/root/repo/target/debug/deps/libintegration-c6375c235efba03e.rlib: crates/integration/src/lib.rs

/root/repo/target/debug/deps/libintegration-c6375c235efba03e.rmeta: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
