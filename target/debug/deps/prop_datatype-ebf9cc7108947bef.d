/root/repo/target/debug/deps/prop_datatype-ebf9cc7108947bef.d: crates/integration/../../tests/prop_datatype.rs Cargo.toml

/root/repo/target/debug/deps/libprop_datatype-ebf9cc7108947bef.rmeta: crates/integration/../../tests/prop_datatype.rs Cargo.toml

crates/integration/../../tests/prop_datatype.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
