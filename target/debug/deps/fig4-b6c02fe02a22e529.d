/root/repo/target/debug/deps/fig4-b6c02fe02a22e529.d: crates/bench/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-b6c02fe02a22e529.rmeta: crates/bench/src/bin/fig4.rs Cargo.toml

crates/bench/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
