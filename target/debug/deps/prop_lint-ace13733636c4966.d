/root/repo/target/debug/deps/prop_lint-ace13733636c4966.d: crates/integration/../../tests/prop_lint.rs Cargo.toml

/root/repo/target/debug/deps/libprop_lint-ace13733636c4966.rmeta: crates/integration/../../tests/prop_lint.rs Cargo.toml

crates/integration/../../tests/prop_lint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
