/root/repo/target/debug/deps/sync_consolidation-f8ea064f61d531f3.d: crates/integration/../../tests/sync_consolidation.rs

/root/repo/target/debug/deps/sync_consolidation-f8ea064f61d531f3: crates/integration/../../tests/sync_consolidation.rs

crates/integration/../../tests/sync_consolidation.rs:
