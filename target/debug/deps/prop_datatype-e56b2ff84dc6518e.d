/root/repo/target/debug/deps/prop_datatype-e56b2ff84dc6518e.d: crates/integration/../../tests/prop_datatype.rs

/root/repo/target/debug/deps/prop_datatype-e56b2ff84dc6518e: crates/integration/../../tests/prop_datatype.rs

crates/integration/../../tests/prop_datatype.rs:
