/root/repo/target/debug/deps/pragma_front-cb770422288f6593.d: crates/pragma-front/src/lib.rs crates/pragma-front/src/lex.rs crates/pragma-front/src/parse.rs Cargo.toml

/root/repo/target/debug/deps/libpragma_front-cb770422288f6593.rmeta: crates/pragma-front/src/lib.rs crates/pragma-front/src/lex.rs crates/pragma-front/src/parse.rs Cargo.toml

crates/pragma-front/src/lib.rs:
crates/pragma-front/src/lex.rs:
crates/pragma-front/src/parse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
