/root/repo/target/debug/deps/sync_consolidation-9d5a16881cf0733f.d: crates/integration/../../tests/sync_consolidation.rs Cargo.toml

/root/repo/target/debug/deps/libsync_consolidation-9d5a16881cf0733f.rmeta: crates/integration/../../tests/sync_consolidation.rs Cargo.toml

crates/integration/../../tests/sync_consolidation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
