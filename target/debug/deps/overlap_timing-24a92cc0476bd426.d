/root/repo/target/debug/deps/overlap_timing-24a92cc0476bd426.d: crates/integration/../../tests/overlap_timing.rs

/root/repo/target/debug/deps/overlap_timing-24a92cc0476bd426: crates/integration/../../tests/overlap_timing.rs

crates/integration/../../tests/overlap_timing.rs:
