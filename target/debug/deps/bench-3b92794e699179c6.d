/root/repo/target/debug/deps/bench-3b92794e699179c6.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-3b92794e699179c6.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
