/root/repo/target/debug/deps/commlint-04381716492db1cb.d: crates/commlint/src/lib.rs crates/commlint/src/json.rs

/root/repo/target/debug/deps/libcommlint-04381716492db1cb.rlib: crates/commlint/src/lib.rs crates/commlint/src/json.rs

/root/repo/target/debug/deps/libcommlint-04381716492db1cb.rmeta: crates/commlint/src/lib.rs crates/commlint/src/json.rs

crates/commlint/src/lib.rs:
crates/commlint/src/json.rs:
