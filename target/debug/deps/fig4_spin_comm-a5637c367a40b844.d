/root/repo/target/debug/deps/fig4_spin_comm-a5637c367a40b844.d: crates/bench/benches/fig4_spin_comm.rs

/root/repo/target/debug/deps/libfig4_spin_comm-a5637c367a40b844.rmeta: crates/bench/benches/fig4_spin_comm.rs

crates/bench/benches/fig4_spin_comm.rs:
