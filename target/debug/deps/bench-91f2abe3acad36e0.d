/root/repo/target/debug/deps/bench-91f2abe3acad36e0.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-91f2abe3acad36e0.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
