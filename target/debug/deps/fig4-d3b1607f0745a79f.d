/root/repo/target/debug/deps/fig4-d3b1607f0745a79f.d: crates/bench/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-d3b1607f0745a79f.rmeta: crates/bench/src/bin/fig4.rs Cargo.toml

crates/bench/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
