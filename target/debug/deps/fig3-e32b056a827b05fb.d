/root/repo/target/debug/deps/fig3-e32b056a827b05fb.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/libfig3-e32b056a827b05fb.rmeta: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
