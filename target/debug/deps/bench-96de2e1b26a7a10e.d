/root/repo/target/debug/deps/bench-96de2e1b26a7a10e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-96de2e1b26a7a10e.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-96de2e1b26a7a10e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
