/root/repo/target/debug/deps/fig4-89c8d0d063a7048b.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/libfig4-89c8d0d063a7048b.rmeta: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
