/root/repo/target/debug/deps/fig5-fc6493dd5ef1c3f8.d: crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-fc6493dd5ef1c3f8.rmeta: crates/bench/src/bin/fig5.rs Cargo.toml

crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
