/root/repo/target/debug/deps/pragmacc-f55933677a45508d.d: crates/pragma-front/src/bin/pragmacc.rs

/root/repo/target/debug/deps/pragmacc-f55933677a45508d: crates/pragma-front/src/bin/pragmacc.rs

crates/pragma-front/src/bin/pragmacc.rs:
