/root/repo/target/debug/deps/ablation-ae08664cb24ee4cb.d: crates/bench/benches/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-ae08664cb24ee4cb.rmeta: crates/bench/benches/ablation.rs Cargo.toml

crates/bench/benches/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
