/root/repo/target/debug/deps/prop_model-0c54d24d18f70002.d: crates/integration/../../tests/prop_model.rs

/root/repo/target/debug/deps/prop_model-0c54d24d18f70002: crates/integration/../../tests/prop_model.rs

crates/integration/../../tests/prop_model.rs:
