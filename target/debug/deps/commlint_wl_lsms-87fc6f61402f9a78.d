/root/repo/target/debug/deps/commlint_wl_lsms-87fc6f61402f9a78.d: crates/integration/../../tests/commlint_wl_lsms.rs Cargo.toml

/root/repo/target/debug/deps/libcommlint_wl_lsms-87fc6f61402f9a78.rmeta: crates/integration/../../tests/commlint_wl_lsms.rs Cargo.toml

crates/integration/../../tests/commlint_wl_lsms.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/integration
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
