/root/repo/target/debug/deps/integration-bdbe97d93a3c3ceb.d: crates/integration/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libintegration-bdbe97d93a3c3ceb.rmeta: crates/integration/src/lib.rs Cargo.toml

crates/integration/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
