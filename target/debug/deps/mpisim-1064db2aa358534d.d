/root/repo/target/debug/deps/mpisim-1064db2aa358534d.d: crates/mpisim/src/lib.rs crates/mpisim/src/coll.rs crates/mpisim/src/comm.rs crates/mpisim/src/dtype.rs crates/mpisim/src/pack.rs crates/mpisim/src/pod.rs crates/mpisim/src/win.rs Cargo.toml

/root/repo/target/debug/deps/libmpisim-1064db2aa358534d.rmeta: crates/mpisim/src/lib.rs crates/mpisim/src/coll.rs crates/mpisim/src/comm.rs crates/mpisim/src/dtype.rs crates/mpisim/src/pack.rs crates/mpisim/src/pod.rs crates/mpisim/src/win.rs Cargo.toml

crates/mpisim/src/lib.rs:
crates/mpisim/src/coll.rs:
crates/mpisim/src/comm.rs:
crates/mpisim/src/dtype.rs:
crates/mpisim/src/pack.rs:
crates/mpisim/src/pod.rs:
crates/mpisim/src/win.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
