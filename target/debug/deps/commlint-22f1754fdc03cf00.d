/root/repo/target/debug/deps/commlint-22f1754fdc03cf00.d: crates/commlint/src/lib.rs crates/commlint/src/json.rs

/root/repo/target/debug/deps/commlint-22f1754fdc03cf00: crates/commlint/src/lib.rs crates/commlint/src/json.rs

crates/commlint/src/lib.rs:
crates/commlint/src/json.rs:
