/root/repo/target/debug/deps/prop_matching-bf4a1f823ecb3f93.d: crates/integration/../../tests/prop_matching.rs Cargo.toml

/root/repo/target/debug/deps/libprop_matching-bf4a1f823ecb3f93.rmeta: crates/integration/../../tests/prop_matching.rs Cargo.toml

crates/integration/../../tests/prop_matching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
