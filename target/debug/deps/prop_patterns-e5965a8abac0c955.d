/root/repo/target/debug/deps/prop_patterns-e5965a8abac0c955.d: crates/integration/../../tests/prop_patterns.rs Cargo.toml

/root/repo/target/debug/deps/libprop_patterns-e5965a8abac0c955.rmeta: crates/integration/../../tests/prop_patterns.rs Cargo.toml

crates/integration/../../tests/prop_patterns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
