/root/repo/target/debug/deps/prop_model-554ef07710b0fe02.d: crates/integration/../../tests/prop_model.rs Cargo.toml

/root/repo/target/debug/deps/libprop_model-554ef07710b0fe02.rmeta: crates/integration/../../tests/prop_model.rs Cargo.toml

crates/integration/../../tests/prop_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
