/root/repo/target/debug/deps/integration-06f9a0509295c272.d: crates/integration/src/lib.rs

/root/repo/target/debug/deps/integration-06f9a0509295c272: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
