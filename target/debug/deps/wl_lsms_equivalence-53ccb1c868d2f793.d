/root/repo/target/debug/deps/wl_lsms_equivalence-53ccb1c868d2f793.d: crates/integration/../../tests/wl_lsms_equivalence.rs

/root/repo/target/debug/deps/wl_lsms_equivalence-53ccb1c868d2f793: crates/integration/../../tests/wl_lsms_equivalence.rs

crates/integration/../../tests/wl_lsms_equivalence.rs:
