/root/repo/target/debug/deps/integration-4881b058ccf58302.d: crates/integration/src/lib.rs

/root/repo/target/debug/deps/integration-4881b058ccf58302: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
