/root/repo/target/debug/deps/ring_all_targets-044a72c2295ffbda.d: crates/integration/../../tests/ring_all_targets.rs

/root/repo/target/debug/deps/ring_all_targets-044a72c2295ffbda: crates/integration/../../tests/ring_all_targets.rs

crates/integration/../../tests/ring_all_targets.rs:
