/root/repo/target/debug/deps/prop_lint-e32443776b65cfa0.d: crates/integration/../../tests/prop_lint.rs

/root/repo/target/debug/deps/prop_lint-e32443776b65cfa0: crates/integration/../../tests/prop_lint.rs

crates/integration/../../tests/prop_lint.rs:
