/root/repo/target/debug/deps/integration-62c2fdb36a5a30fd.d: crates/integration/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libintegration-62c2fdb36a5a30fd.rmeta: crates/integration/src/lib.rs Cargo.toml

crates/integration/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
