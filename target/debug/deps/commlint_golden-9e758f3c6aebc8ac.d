/root/repo/target/debug/deps/commlint_golden-9e758f3c6aebc8ac.d: crates/integration/../../tests/commlint_golden.rs Cargo.toml

/root/repo/target/debug/deps/libcommlint_golden-9e758f3c6aebc8ac.rmeta: crates/integration/../../tests/commlint_golden.rs Cargo.toml

crates/integration/../../tests/commlint_golden.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/integration
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
