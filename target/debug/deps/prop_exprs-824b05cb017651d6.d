/root/repo/target/debug/deps/prop_exprs-824b05cb017651d6.d: crates/integration/../../tests/prop_exprs.rs Cargo.toml

/root/repo/target/debug/deps/libprop_exprs-824b05cb017651d6.rmeta: crates/integration/../../tests/prop_exprs.rs Cargo.toml

crates/integration/../../tests/prop_exprs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
