/root/repo/target/debug/deps/mpisim-b2a1aee0300df79e.d: crates/mpisim/src/lib.rs crates/mpisim/src/coll.rs crates/mpisim/src/comm.rs crates/mpisim/src/dtype.rs crates/mpisim/src/pack.rs crates/mpisim/src/pod.rs crates/mpisim/src/win.rs

/root/repo/target/debug/deps/mpisim-b2a1aee0300df79e: crates/mpisim/src/lib.rs crates/mpisim/src/coll.rs crates/mpisim/src/comm.rs crates/mpisim/src/dtype.rs crates/mpisim/src/pack.rs crates/mpisim/src/pod.rs crates/mpisim/src/win.rs

crates/mpisim/src/lib.rs:
crates/mpisim/src/coll.rs:
crates/mpisim/src/comm.rs:
crates/mpisim/src/dtype.rs:
crates/mpisim/src/pack.rs:
crates/mpisim/src/pod.rs:
crates/mpisim/src/win.rs:
