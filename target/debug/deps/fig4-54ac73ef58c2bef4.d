/root/repo/target/debug/deps/fig4-54ac73ef58c2bef4.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-54ac73ef58c2bef4: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
