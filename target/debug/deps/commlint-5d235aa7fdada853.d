/root/repo/target/debug/deps/commlint-5d235aa7fdada853.d: crates/commlint/src/bin/commlint.rs Cargo.toml

/root/repo/target/debug/deps/libcommlint-5d235aa7fdada853.rmeta: crates/commlint/src/bin/commlint.rs Cargo.toml

crates/commlint/src/bin/commlint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
