/root/repo/target/debug/deps/ablation-2998adadb7477100.d: crates/bench/benches/ablation.rs

/root/repo/target/debug/deps/libablation-2998adadb7477100.rmeta: crates/bench/benches/ablation.rs

crates/bench/benches/ablation.rs:
