/root/repo/target/debug/deps/prop_datatype-94cfc02399177fb7.d: crates/integration/../../tests/prop_datatype.rs

/root/repo/target/debug/deps/prop_datatype-94cfc02399177fb7: crates/integration/../../tests/prop_datatype.rs

crates/integration/../../tests/prop_datatype.rs:
