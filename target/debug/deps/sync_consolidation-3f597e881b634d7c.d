/root/repo/target/debug/deps/sync_consolidation-3f597e881b634d7c.d: crates/integration/../../tests/sync_consolidation.rs Cargo.toml

/root/repo/target/debug/deps/libsync_consolidation-3f597e881b634d7c.rmeta: crates/integration/../../tests/sync_consolidation.rs Cargo.toml

crates/integration/../../tests/sync_consolidation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
