/root/repo/target/debug/deps/wl_lsms_equivalence-88b647d702858f42.d: crates/integration/../../tests/wl_lsms_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libwl_lsms_equivalence-88b647d702858f42.rmeta: crates/integration/../../tests/wl_lsms_equivalence.rs Cargo.toml

crates/integration/../../tests/wl_lsms_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
