/root/repo/target/debug/deps/overlap_timing-ecbca6a07ded1b02.d: crates/integration/../../tests/overlap_timing.rs Cargo.toml

/root/repo/target/debug/deps/liboverlap_timing-ecbca6a07ded1b02.rmeta: crates/integration/../../tests/overlap_timing.rs Cargo.toml

crates/integration/../../tests/overlap_timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
