/root/repo/target/debug/deps/bench-a4f39786551f1e34.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-a4f39786551f1e34.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
