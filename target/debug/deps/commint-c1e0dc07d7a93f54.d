/root/repo/target/debug/deps/commint-c1e0dc07d7a93f54.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/buffer.rs crates/core/src/clause.rs crates/core/src/coll.rs crates/core/src/diag.rs crates/core/src/dir.rs crates/core/src/expr.rs crates/core/src/lower.rs crates/core/src/macros.rs crates/core/src/patterns.rs crates/core/src/scope.rs crates/core/src/traceview.rs

/root/repo/target/debug/deps/libcommint-c1e0dc07d7a93f54.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/buffer.rs crates/core/src/clause.rs crates/core/src/coll.rs crates/core/src/diag.rs crates/core/src/dir.rs crates/core/src/expr.rs crates/core/src/lower.rs crates/core/src/macros.rs crates/core/src/patterns.rs crates/core/src/scope.rs crates/core/src/traceview.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/buffer.rs:
crates/core/src/clause.rs:
crates/core/src/coll.rs:
crates/core/src/diag.rs:
crates/core/src/dir.rs:
crates/core/src/expr.rs:
crates/core/src/lower.rs:
crates/core/src/macros.rs:
crates/core/src/patterns.rs:
crates/core/src/scope.rs:
crates/core/src/traceview.rs:
