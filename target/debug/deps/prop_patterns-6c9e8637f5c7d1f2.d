/root/repo/target/debug/deps/prop_patterns-6c9e8637f5c7d1f2.d: crates/integration/../../tests/prop_patterns.rs Cargo.toml

/root/repo/target/debug/deps/libprop_patterns-6c9e8637f5c7d1f2.rmeta: crates/integration/../../tests/prop_patterns.rs Cargo.toml

crates/integration/../../tests/prop_patterns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
