/root/repo/target/debug/deps/fig3-c5769744dfce7729.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-c5769744dfce7729: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
