/root/repo/target/debug/deps/shmemsim-54e49a092d7240cf.d: crates/shmemsim/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libshmemsim-54e49a092d7240cf.rmeta: crates/shmemsim/src/lib.rs Cargo.toml

crates/shmemsim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
