/root/repo/target/debug/deps/integration-151afae4a8e401a0.d: crates/integration/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libintegration-151afae4a8e401a0.rmeta: crates/integration/src/lib.rs Cargo.toml

crates/integration/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
