/root/repo/target/debug/deps/micro-eded7dafcc887a95.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-eded7dafcc887a95.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
