/root/repo/target/debug/deps/fig5-921eeaa636bfbd59.d: crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-921eeaa636bfbd59.rmeta: crates/bench/src/bin/fig5.rs Cargo.toml

crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
