/root/repo/target/debug/deps/pragma_front-3b734109862c96a6.d: crates/pragma-front/src/lib.rs crates/pragma-front/src/lex.rs crates/pragma-front/src/parse.rs

/root/repo/target/debug/deps/libpragma_front-3b734109862c96a6.rlib: crates/pragma-front/src/lib.rs crates/pragma-front/src/lex.rs crates/pragma-front/src/parse.rs

/root/repo/target/debug/deps/libpragma_front-3b734109862c96a6.rmeta: crates/pragma-front/src/lib.rs crates/pragma-front/src/lex.rs crates/pragma-front/src/parse.rs

crates/pragma-front/src/lib.rs:
crates/pragma-front/src/lex.rs:
crates/pragma-front/src/parse.rs:
