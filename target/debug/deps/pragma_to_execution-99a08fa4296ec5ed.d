/root/repo/target/debug/deps/pragma_to_execution-99a08fa4296ec5ed.d: crates/integration/../../tests/pragma_to_execution.rs

/root/repo/target/debug/deps/pragma_to_execution-99a08fa4296ec5ed: crates/integration/../../tests/pragma_to_execution.rs

crates/integration/../../tests/pragma_to_execution.rs:
