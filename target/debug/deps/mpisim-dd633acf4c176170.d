/root/repo/target/debug/deps/mpisim-dd633acf4c176170.d: crates/mpisim/src/lib.rs crates/mpisim/src/coll.rs crates/mpisim/src/comm.rs crates/mpisim/src/dtype.rs crates/mpisim/src/pack.rs crates/mpisim/src/pod.rs crates/mpisim/src/win.rs Cargo.toml

/root/repo/target/debug/deps/libmpisim-dd633acf4c176170.rmeta: crates/mpisim/src/lib.rs crates/mpisim/src/coll.rs crates/mpisim/src/comm.rs crates/mpisim/src/dtype.rs crates/mpisim/src/pack.rs crates/mpisim/src/pod.rs crates/mpisim/src/win.rs Cargo.toml

crates/mpisim/src/lib.rs:
crates/mpisim/src/coll.rs:
crates/mpisim/src/comm.rs:
crates/mpisim/src/dtype.rs:
crates/mpisim/src/pack.rs:
crates/mpisim/src/pod.rs:
crates/mpisim/src/win.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
