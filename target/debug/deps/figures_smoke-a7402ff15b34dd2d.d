/root/repo/target/debug/deps/figures_smoke-a7402ff15b34dd2d.d: crates/integration/../../tests/figures_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libfigures_smoke-a7402ff15b34dd2d.rmeta: crates/integration/../../tests/figures_smoke.rs Cargo.toml

crates/integration/../../tests/figures_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
