/root/repo/target/debug/deps/prop_exprs-67a41847563112e7.d: crates/integration/../../tests/prop_exprs.rs

/root/repo/target/debug/deps/prop_exprs-67a41847563112e7: crates/integration/../../tests/prop_exprs.rs

crates/integration/../../tests/prop_exprs.rs:
