/root/repo/target/debug/deps/prop_matching-b1205e3768cd888e.d: crates/integration/../../tests/prop_matching.rs

/root/repo/target/debug/deps/prop_matching-b1205e3768cd888e: crates/integration/../../tests/prop_matching.rs

crates/integration/../../tests/prop_matching.rs:
