/root/repo/target/debug/deps/bench-af82446017209342.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-af82446017209342.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
