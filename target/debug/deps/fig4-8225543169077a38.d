/root/repo/target/debug/deps/fig4-8225543169077a38.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-8225543169077a38: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
