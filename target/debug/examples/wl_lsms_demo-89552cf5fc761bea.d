/root/repo/target/debug/examples/wl_lsms_demo-89552cf5fc761bea.d: crates/bench/../../examples/wl_lsms_demo.rs Cargo.toml

/root/repo/target/debug/examples/libwl_lsms_demo-89552cf5fc761bea.rmeta: crates/bench/../../examples/wl_lsms_demo.rs Cargo.toml

crates/bench/../../examples/wl_lsms_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
