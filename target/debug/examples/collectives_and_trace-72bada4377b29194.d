/root/repo/target/debug/examples/collectives_and_trace-72bada4377b29194.d: crates/bench/../../examples/collectives_and_trace.rs Cargo.toml

/root/repo/target/debug/examples/libcollectives_and_trace-72bada4377b29194.rmeta: crates/bench/../../examples/collectives_and_trace.rs Cargo.toml

crates/bench/../../examples/collectives_and_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
