/root/repo/target/debug/examples/halo_exchange-25a309a380b75405.d: crates/bench/../../examples/halo_exchange.rs Cargo.toml

/root/repo/target/debug/examples/libhalo_exchange-25a309a380b75405.rmeta: crates/bench/../../examples/halo_exchange.rs Cargo.toml

crates/bench/../../examples/halo_exchange.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
