/root/repo/target/debug/examples/wl_lsms_demo-29bbb673c1a78234.d: crates/bench/../../examples/wl_lsms_demo.rs Cargo.toml

/root/repo/target/debug/examples/libwl_lsms_demo-29bbb673c1a78234.rmeta: crates/bench/../../examples/wl_lsms_demo.rs Cargo.toml

crates/bench/../../examples/wl_lsms_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
