/root/repo/target/debug/examples/retarget_portability-17e2002365e263a3.d: crates/bench/../../examples/retarget_portability.rs Cargo.toml

/root/repo/target/debug/examples/libretarget_portability-17e2002365e263a3.rmeta: crates/bench/../../examples/retarget_portability.rs Cargo.toml

crates/bench/../../examples/retarget_portability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
