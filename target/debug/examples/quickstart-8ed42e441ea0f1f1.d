/root/repo/target/debug/examples/quickstart-8ed42e441ea0f1f1.d: crates/bench/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-8ed42e441ea0f1f1.rmeta: crates/bench/../../examples/quickstart.rs Cargo.toml

crates/bench/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
