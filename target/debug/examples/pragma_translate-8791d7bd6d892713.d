/root/repo/target/debug/examples/pragma_translate-8791d7bd6d892713.d: crates/bench/../../examples/pragma_translate.rs

/root/repo/target/debug/examples/pragma_translate-8791d7bd6d892713: crates/bench/../../examples/pragma_translate.rs

crates/bench/../../examples/pragma_translate.rs:
