/root/repo/target/debug/examples/quickstart-a9cf7edb3d18893e.d: crates/bench/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-a9cf7edb3d18893e.rmeta: crates/bench/../../examples/quickstart.rs Cargo.toml

crates/bench/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
