/root/repo/target/debug/examples/pragma_translate-acd039f858af741b.d: crates/bench/../../examples/pragma_translate.rs Cargo.toml

/root/repo/target/debug/examples/libpragma_translate-acd039f858af741b.rmeta: crates/bench/../../examples/pragma_translate.rs Cargo.toml

crates/bench/../../examples/pragma_translate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
