/root/repo/target/debug/examples/retarget_portability-1a15f6214efb0562.d: crates/bench/../../examples/retarget_portability.rs

/root/repo/target/debug/examples/retarget_portability-1a15f6214efb0562: crates/bench/../../examples/retarget_portability.rs

crates/bench/../../examples/retarget_portability.rs:
