/root/repo/target/debug/examples/wl_lsms_demo-57dc7b47a2d0f391.d: crates/bench/../../examples/wl_lsms_demo.rs

/root/repo/target/debug/examples/wl_lsms_demo-57dc7b47a2d0f391: crates/bench/../../examples/wl_lsms_demo.rs

crates/bench/../../examples/wl_lsms_demo.rs:
