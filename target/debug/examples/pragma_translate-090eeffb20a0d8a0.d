/root/repo/target/debug/examples/pragma_translate-090eeffb20a0d8a0.d: crates/bench/../../examples/pragma_translate.rs Cargo.toml

/root/repo/target/debug/examples/libpragma_translate-090eeffb20a0d8a0.rmeta: crates/bench/../../examples/pragma_translate.rs Cargo.toml

crates/bench/../../examples/pragma_translate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
