/root/repo/target/debug/examples/halo_exchange-f165c73185001aaa.d: crates/bench/../../examples/halo_exchange.rs

/root/repo/target/debug/examples/halo_exchange-f165c73185001aaa: crates/bench/../../examples/halo_exchange.rs

crates/bench/../../examples/halo_exchange.rs:
