/root/repo/target/debug/examples/collectives_and_trace-fa5d8cb3d5367ad3.d: crates/bench/../../examples/collectives_and_trace.rs

/root/repo/target/debug/examples/collectives_and_trace-fa5d8cb3d5367ad3: crates/bench/../../examples/collectives_and_trace.rs

crates/bench/../../examples/collectives_and_trace.rs:
