/root/repo/target/debug/examples/quickstart-cf57490d442e94a9.d: crates/bench/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-cf57490d442e94a9: crates/bench/../../examples/quickstart.rs

crates/bench/../../examples/quickstart.rs:
