/root/repo/target/debug/examples/halo_exchange-87f3db9b5e80f7d4.d: crates/bench/../../examples/halo_exchange.rs Cargo.toml

/root/repo/target/debug/examples/libhalo_exchange-87f3db9b5e80f7d4.rmeta: crates/bench/../../examples/halo_exchange.rs Cargo.toml

crates/bench/../../examples/halo_exchange.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
