/root/repo/target/release/examples/collectives_and_trace-cf67ffa2741843e6.d: crates/bench/../../examples/collectives_and_trace.rs

/root/repo/target/release/examples/collectives_and_trace-cf67ffa2741843e6: crates/bench/../../examples/collectives_and_trace.rs

crates/bench/../../examples/collectives_and_trace.rs:
