/root/repo/target/release/examples/halo_exchange-f3fbbab84a46a148.d: crates/bench/../../examples/halo_exchange.rs

/root/repo/target/release/examples/halo_exchange-f3fbbab84a46a148: crates/bench/../../examples/halo_exchange.rs

crates/bench/../../examples/halo_exchange.rs:
