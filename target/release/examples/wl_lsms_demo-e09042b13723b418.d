/root/repo/target/release/examples/wl_lsms_demo-e09042b13723b418.d: crates/bench/../../examples/wl_lsms_demo.rs

/root/repo/target/release/examples/wl_lsms_demo-e09042b13723b418: crates/bench/../../examples/wl_lsms_demo.rs

crates/bench/../../examples/wl_lsms_demo.rs:
