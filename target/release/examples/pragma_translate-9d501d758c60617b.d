/root/repo/target/release/examples/pragma_translate-9d501d758c60617b.d: crates/bench/../../examples/pragma_translate.rs

/root/repo/target/release/examples/pragma_translate-9d501d758c60617b: crates/bench/../../examples/pragma_translate.rs

crates/bench/../../examples/pragma_translate.rs:
