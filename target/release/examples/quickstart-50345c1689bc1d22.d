/root/repo/target/release/examples/quickstart-50345c1689bc1d22.d: crates/bench/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-50345c1689bc1d22: crates/bench/../../examples/quickstart.rs

crates/bench/../../examples/quickstart.rs:
