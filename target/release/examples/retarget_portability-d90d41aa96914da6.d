/root/repo/target/release/examples/retarget_portability-d90d41aa96914da6.d: crates/bench/../../examples/retarget_portability.rs

/root/repo/target/release/examples/retarget_portability-d90d41aa96914da6: crates/bench/../../examples/retarget_portability.rs

crates/bench/../../examples/retarget_portability.rs:
