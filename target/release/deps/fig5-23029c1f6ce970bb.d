/root/repo/target/release/deps/fig5-23029c1f6ce970bb.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-23029c1f6ce970bb: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
