/root/repo/target/release/deps/pragma_front-ff1e1a713326f47c.d: crates/pragma-front/src/lib.rs crates/pragma-front/src/lex.rs crates/pragma-front/src/parse.rs

/root/repo/target/release/deps/pragma_front-ff1e1a713326f47c: crates/pragma-front/src/lib.rs crates/pragma-front/src/lex.rs crates/pragma-front/src/parse.rs

crates/pragma-front/src/lib.rs:
crates/pragma-front/src/lex.rs:
crates/pragma-front/src/parse.rs:
