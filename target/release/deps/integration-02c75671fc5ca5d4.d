/root/repo/target/release/deps/integration-02c75671fc5ca5d4.d: crates/integration/src/lib.rs

/root/repo/target/release/deps/integration-02c75671fc5ca5d4: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
