/root/repo/target/release/deps/netsim-d194a4bf12ffa5c6.d: crates/netsim/src/lib.rs crates/netsim/src/fabric.rs crates/netsim/src/model.rs crates/netsim/src/msg.rs crates/netsim/src/runtime.rs crates/netsim/src/time.rs crates/netsim/src/trace.rs

/root/repo/target/release/deps/libnetsim-d194a4bf12ffa5c6.rlib: crates/netsim/src/lib.rs crates/netsim/src/fabric.rs crates/netsim/src/model.rs crates/netsim/src/msg.rs crates/netsim/src/runtime.rs crates/netsim/src/time.rs crates/netsim/src/trace.rs

/root/repo/target/release/deps/libnetsim-d194a4bf12ffa5c6.rmeta: crates/netsim/src/lib.rs crates/netsim/src/fabric.rs crates/netsim/src/model.rs crates/netsim/src/msg.rs crates/netsim/src/runtime.rs crates/netsim/src/time.rs crates/netsim/src/trace.rs

crates/netsim/src/lib.rs:
crates/netsim/src/fabric.rs:
crates/netsim/src/model.rs:
crates/netsim/src/msg.rs:
crates/netsim/src/runtime.rs:
crates/netsim/src/time.rs:
crates/netsim/src/trace.rs:
