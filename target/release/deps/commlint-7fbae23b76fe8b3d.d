/root/repo/target/release/deps/commlint-7fbae23b76fe8b3d.d: crates/commlint/src/bin/commlint.rs

/root/repo/target/release/deps/commlint-7fbae23b76fe8b3d: crates/commlint/src/bin/commlint.rs

crates/commlint/src/bin/commlint.rs:
