/root/repo/target/release/deps/wl_lsms-3a3e2b5f7a1beb9e.d: crates/wl-lsms/src/lib.rs crates/wl-lsms/src/atom.rs crates/wl-lsms/src/atom_comm.rs crates/wl-lsms/src/core_states.rs crates/wl-lsms/src/experiments.rs crates/wl-lsms/src/matrix.rs crates/wl-lsms/src/spin.rs crates/wl-lsms/src/topology.rs crates/wl-lsms/src/wang_landau.rs

/root/repo/target/release/deps/wl_lsms-3a3e2b5f7a1beb9e: crates/wl-lsms/src/lib.rs crates/wl-lsms/src/atom.rs crates/wl-lsms/src/atom_comm.rs crates/wl-lsms/src/core_states.rs crates/wl-lsms/src/experiments.rs crates/wl-lsms/src/matrix.rs crates/wl-lsms/src/spin.rs crates/wl-lsms/src/topology.rs crates/wl-lsms/src/wang_landau.rs

crates/wl-lsms/src/lib.rs:
crates/wl-lsms/src/atom.rs:
crates/wl-lsms/src/atom_comm.rs:
crates/wl-lsms/src/core_states.rs:
crates/wl-lsms/src/experiments.rs:
crates/wl-lsms/src/matrix.rs:
crates/wl-lsms/src/spin.rs:
crates/wl-lsms/src/topology.rs:
crates/wl-lsms/src/wang_landau.rs:
