/root/repo/target/release/deps/integration-19e83017960cde08.d: crates/integration/src/lib.rs

/root/repo/target/release/deps/libintegration-19e83017960cde08.rlib: crates/integration/src/lib.rs

/root/repo/target/release/deps/libintegration-19e83017960cde08.rmeta: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
