/root/repo/target/release/deps/sync_consolidation-2394d9a0cd6c778e.d: crates/integration/../../tests/sync_consolidation.rs

/root/repo/target/release/deps/sync_consolidation-2394d9a0cd6c778e: crates/integration/../../tests/sync_consolidation.rs

crates/integration/../../tests/sync_consolidation.rs:
