/root/repo/target/release/deps/netsim-a9520a25c617704b.d: crates/netsim/src/lib.rs crates/netsim/src/fabric.rs crates/netsim/src/model.rs crates/netsim/src/msg.rs crates/netsim/src/runtime.rs crates/netsim/src/time.rs crates/netsim/src/trace.rs

/root/repo/target/release/deps/netsim-a9520a25c617704b: crates/netsim/src/lib.rs crates/netsim/src/fabric.rs crates/netsim/src/model.rs crates/netsim/src/msg.rs crates/netsim/src/runtime.rs crates/netsim/src/time.rs crates/netsim/src/trace.rs

crates/netsim/src/lib.rs:
crates/netsim/src/fabric.rs:
crates/netsim/src/model.rs:
crates/netsim/src/msg.rs:
crates/netsim/src/runtime.rs:
crates/netsim/src/time.rs:
crates/netsim/src/trace.rs:
