/root/repo/target/release/deps/integration-eff312f34565aafb.d: crates/integration/src/lib.rs

/root/repo/target/release/deps/libintegration-eff312f34565aafb.rlib: crates/integration/src/lib.rs

/root/repo/target/release/deps/libintegration-eff312f34565aafb.rmeta: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
