/root/repo/target/release/deps/prop_matching-0c2badd1a87e8453.d: crates/integration/../../tests/prop_matching.rs

/root/repo/target/release/deps/prop_matching-0c2badd1a87e8453: crates/integration/../../tests/prop_matching.rs

crates/integration/../../tests/prop_matching.rs:
