/root/repo/target/release/deps/bench-0ba0fd1812c707c4.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/bench-0ba0fd1812c707c4: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
