/root/repo/target/release/deps/mpisim-ffffc67f903bdc9e.d: crates/mpisim/src/lib.rs crates/mpisim/src/coll.rs crates/mpisim/src/comm.rs crates/mpisim/src/dtype.rs crates/mpisim/src/pack.rs crates/mpisim/src/pod.rs crates/mpisim/src/win.rs

/root/repo/target/release/deps/libmpisim-ffffc67f903bdc9e.rlib: crates/mpisim/src/lib.rs crates/mpisim/src/coll.rs crates/mpisim/src/comm.rs crates/mpisim/src/dtype.rs crates/mpisim/src/pack.rs crates/mpisim/src/pod.rs crates/mpisim/src/win.rs

/root/repo/target/release/deps/libmpisim-ffffc67f903bdc9e.rmeta: crates/mpisim/src/lib.rs crates/mpisim/src/coll.rs crates/mpisim/src/comm.rs crates/mpisim/src/dtype.rs crates/mpisim/src/pack.rs crates/mpisim/src/pod.rs crates/mpisim/src/win.rs

crates/mpisim/src/lib.rs:
crates/mpisim/src/coll.rs:
crates/mpisim/src/comm.rs:
crates/mpisim/src/dtype.rs:
crates/mpisim/src/pack.rs:
crates/mpisim/src/pod.rs:
crates/mpisim/src/win.rs:
