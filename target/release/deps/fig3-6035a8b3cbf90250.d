/root/repo/target/release/deps/fig3-6035a8b3cbf90250.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-6035a8b3cbf90250: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
