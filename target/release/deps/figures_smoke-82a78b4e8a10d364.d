/root/repo/target/release/deps/figures_smoke-82a78b4e8a10d364.d: crates/integration/../../tests/figures_smoke.rs

/root/repo/target/release/deps/figures_smoke-82a78b4e8a10d364: crates/integration/../../tests/figures_smoke.rs

crates/integration/../../tests/figures_smoke.rs:
