/root/repo/target/release/deps/fig4-87e59f4fdd7c49dd.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-87e59f4fdd7c49dd: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
