/root/repo/target/release/deps/fig4-844aa1947e49a3b0.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-844aa1947e49a3b0: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
