/root/repo/target/release/deps/fig3-691f1319c42ac327.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-691f1319c42ac327: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
