/root/repo/target/release/deps/bench-a296a4574cd5eb70.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-a296a4574cd5eb70.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-a296a4574cd5eb70.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
