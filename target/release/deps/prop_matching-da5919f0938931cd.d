/root/repo/target/release/deps/prop_matching-da5919f0938931cd.d: crates/integration/../../tests/prop_matching.rs

/root/repo/target/release/deps/prop_matching-da5919f0938931cd: crates/integration/../../tests/prop_matching.rs

crates/integration/../../tests/prop_matching.rs:
