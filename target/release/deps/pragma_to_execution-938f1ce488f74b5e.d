/root/repo/target/release/deps/pragma_to_execution-938f1ce488f74b5e.d: crates/integration/../../tests/pragma_to_execution.rs

/root/repo/target/release/deps/pragma_to_execution-938f1ce488f74b5e: crates/integration/../../tests/pragma_to_execution.rs

crates/integration/../../tests/pragma_to_execution.rs:
