/root/repo/target/release/deps/commlint-7e7a047f687c936c.d: crates/commlint/src/lib.rs crates/commlint/src/json.rs

/root/repo/target/release/deps/libcommlint-7e7a047f687c936c.rlib: crates/commlint/src/lib.rs crates/commlint/src/json.rs

/root/repo/target/release/deps/libcommlint-7e7a047f687c936c.rmeta: crates/commlint/src/lib.rs crates/commlint/src/json.rs

crates/commlint/src/lib.rs:
crates/commlint/src/json.rs:
