/root/repo/target/release/deps/prop_model-6931969f765f1377.d: crates/integration/../../tests/prop_model.rs

/root/repo/target/release/deps/prop_model-6931969f765f1377: crates/integration/../../tests/prop_model.rs

crates/integration/../../tests/prop_model.rs:
