/root/repo/target/release/deps/prop_patterns-ae2ff52d2561a020.d: crates/integration/../../tests/prop_patterns.rs

/root/repo/target/release/deps/prop_patterns-ae2ff52d2561a020: crates/integration/../../tests/prop_patterns.rs

crates/integration/../../tests/prop_patterns.rs:
