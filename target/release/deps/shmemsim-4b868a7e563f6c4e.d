/root/repo/target/release/deps/shmemsim-4b868a7e563f6c4e.d: crates/shmemsim/src/lib.rs

/root/repo/target/release/deps/libshmemsim-4b868a7e563f6c4e.rlib: crates/shmemsim/src/lib.rs

/root/repo/target/release/deps/libshmemsim-4b868a7e563f6c4e.rmeta: crates/shmemsim/src/lib.rs

crates/shmemsim/src/lib.rs:
