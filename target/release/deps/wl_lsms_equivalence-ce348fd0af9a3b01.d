/root/repo/target/release/deps/wl_lsms_equivalence-ce348fd0af9a3b01.d: crates/integration/../../tests/wl_lsms_equivalence.rs

/root/repo/target/release/deps/wl_lsms_equivalence-ce348fd0af9a3b01: crates/integration/../../tests/wl_lsms_equivalence.rs

crates/integration/../../tests/wl_lsms_equivalence.rs:
