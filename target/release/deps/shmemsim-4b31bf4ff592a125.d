/root/repo/target/release/deps/shmemsim-4b31bf4ff592a125.d: crates/shmemsim/src/lib.rs

/root/repo/target/release/deps/shmemsim-4b31bf4ff592a125: crates/shmemsim/src/lib.rs

crates/shmemsim/src/lib.rs:
