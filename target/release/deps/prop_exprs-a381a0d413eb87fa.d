/root/repo/target/release/deps/prop_exprs-a381a0d413eb87fa.d: crates/integration/../../tests/prop_exprs.rs

/root/repo/target/release/deps/prop_exprs-a381a0d413eb87fa: crates/integration/../../tests/prop_exprs.rs

crates/integration/../../tests/prop_exprs.rs:
