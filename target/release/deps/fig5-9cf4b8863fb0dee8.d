/root/repo/target/release/deps/fig5-9cf4b8863fb0dee8.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-9cf4b8863fb0dee8: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
