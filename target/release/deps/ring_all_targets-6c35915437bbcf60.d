/root/repo/target/release/deps/ring_all_targets-6c35915437bbcf60.d: crates/integration/../../tests/ring_all_targets.rs

/root/repo/target/release/deps/ring_all_targets-6c35915437bbcf60: crates/integration/../../tests/ring_all_targets.rs

crates/integration/../../tests/ring_all_targets.rs:
