/root/repo/target/release/deps/integration-491b65bd9baa7019.d: crates/integration/src/lib.rs

/root/repo/target/release/deps/libintegration-491b65bd9baa7019.rlib: crates/integration/src/lib.rs

/root/repo/target/release/deps/libintegration-491b65bd9baa7019.rmeta: crates/integration/src/lib.rs

crates/integration/src/lib.rs:
