/root/repo/target/release/deps/golden_probe-2639f58adb7258b8.d: crates/integration/../../tests/golden_probe.rs

/root/repo/target/release/deps/golden_probe-2639f58adb7258b8: crates/integration/../../tests/golden_probe.rs

crates/integration/../../tests/golden_probe.rs:
