/root/repo/target/release/deps/pragmacc-77dcc46eedffa31f.d: crates/pragma-front/src/bin/pragmacc.rs

/root/repo/target/release/deps/pragmacc-77dcc46eedffa31f: crates/pragma-front/src/bin/pragmacc.rs

crates/pragma-front/src/bin/pragmacc.rs:
