/root/repo/target/release/deps/mpisim-da0e9c19b56f3adf.d: crates/mpisim/src/lib.rs crates/mpisim/src/coll.rs crates/mpisim/src/comm.rs crates/mpisim/src/dtype.rs crates/mpisim/src/pack.rs crates/mpisim/src/pod.rs crates/mpisim/src/win.rs

/root/repo/target/release/deps/mpisim-da0e9c19b56f3adf: crates/mpisim/src/lib.rs crates/mpisim/src/coll.rs crates/mpisim/src/comm.rs crates/mpisim/src/dtype.rs crates/mpisim/src/pack.rs crates/mpisim/src/pod.rs crates/mpisim/src/win.rs

crates/mpisim/src/lib.rs:
crates/mpisim/src/coll.rs:
crates/mpisim/src/comm.rs:
crates/mpisim/src/dtype.rs:
crates/mpisim/src/pack.rs:
crates/mpisim/src/pod.rs:
crates/mpisim/src/win.rs:
