/root/repo/target/release/deps/pragmacc-121f7d90a10798c6.d: crates/pragma-front/src/bin/pragmacc.rs

/root/repo/target/release/deps/pragmacc-121f7d90a10798c6: crates/pragma-front/src/bin/pragmacc.rs

crates/pragma-front/src/bin/pragmacc.rs:
