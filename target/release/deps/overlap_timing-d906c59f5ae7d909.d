/root/repo/target/release/deps/overlap_timing-d906c59f5ae7d909.d: crates/integration/../../tests/overlap_timing.rs

/root/repo/target/release/deps/overlap_timing-d906c59f5ae7d909: crates/integration/../../tests/overlap_timing.rs

crates/integration/../../tests/overlap_timing.rs:
