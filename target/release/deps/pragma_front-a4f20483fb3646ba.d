/root/repo/target/release/deps/pragma_front-a4f20483fb3646ba.d: crates/pragma-front/src/lib.rs crates/pragma-front/src/lex.rs crates/pragma-front/src/parse.rs

/root/repo/target/release/deps/libpragma_front-a4f20483fb3646ba.rlib: crates/pragma-front/src/lib.rs crates/pragma-front/src/lex.rs crates/pragma-front/src/parse.rs

/root/repo/target/release/deps/libpragma_front-a4f20483fb3646ba.rmeta: crates/pragma-front/src/lib.rs crates/pragma-front/src/lex.rs crates/pragma-front/src/parse.rs

crates/pragma-front/src/lib.rs:
crates/pragma-front/src/lex.rs:
crates/pragma-front/src/parse.rs:
