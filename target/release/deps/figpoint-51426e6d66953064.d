/root/repo/target/release/deps/figpoint-51426e6d66953064.d: crates/bench/src/bin/figpoint.rs

/root/repo/target/release/deps/figpoint-51426e6d66953064: crates/bench/src/bin/figpoint.rs

crates/bench/src/bin/figpoint.rs:
