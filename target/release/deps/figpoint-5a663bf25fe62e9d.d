/root/repo/target/release/deps/figpoint-5a663bf25fe62e9d.d: crates/bench/src/bin/figpoint.rs

/root/repo/target/release/deps/figpoint-5a663bf25fe62e9d: crates/bench/src/bin/figpoint.rs

crates/bench/src/bin/figpoint.rs:
