/root/repo/target/release/deps/prop_datatype-6994d6ed3bf7e2e7.d: crates/integration/../../tests/prop_datatype.rs

/root/repo/target/release/deps/prop_datatype-6994d6ed3bf7e2e7: crates/integration/../../tests/prop_datatype.rs

crates/integration/../../tests/prop_datatype.rs:
